//! Integration: determinism and seed-robustness of the whole suite.
//!
//! Reproducibility is a design requirement: every headline number must be a
//! pure function of the seed, and the *qualitative* findings must survive a
//! seed change (they are properties of the calibrated distributions, not of
//! one lucky world).

use ipv6view::core::classify::ClassCounts;
use ipv6view::crawlsim::{crawl_epoch, CrawlConfig};
use ipv6view::worldgen::{World, WorldConfig};

fn headline(seed: u64) -> (usize, usize, usize, usize) {
    let world = World::generate(&WorldConfig::small().with_seed(seed));
    let report = crawl_epoch(&world, world.latest_epoch(), &CrawlConfig::default());
    let c = ClassCounts::from_report(&report);
    (c.nxdomain, c.v4_only, c.partial, c.full)
}

#[test]
fn identical_seeds_identical_numbers() {
    assert_eq!(headline(42), headline(42));
}

#[test]
fn different_seeds_different_worlds_same_findings() {
    let a = headline(1);
    let b = headline(2);
    assert_ne!(a, b, "different seeds must differ in detail");
    for (nx, v4, partial, full) in [a, b] {
        let connected = 2_000 - nx; // other failures are small
                                    // Qualitative findings hold for any seed:
        assert!(v4 > partial, "IPv4-only is the biggest class");
        assert!(partial > full, "most AAAA sites are only partial");
        assert!(
            full * 100 / connected.max(1) >= 8,
            "a non-trivial full population exists"
        );
    }
}

#[test]
fn traffic_is_deterministic_per_seed() {
    use ipv6view::trafficgen::{synthesize_all, TrafficConfig};
    let world = World::generate(&WorldConfig::small());
    let cfg = TrafficConfig {
        num_days: 10,
        ..TrafficConfig::fast()
    };
    let a = synthesize_all(&world, &cfg);
    let b = synthesize_all(&world, &cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.flows.len(), y.flows.len());
        assert_eq!(x.flows.first(), y.flows.first());
        assert_eq!(x.flows.last(), y.flows.last());
    }
}
