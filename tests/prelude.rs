//! Integration: the facade's `prelude` drives the experiment engine — the
//! embedding path the library-first redesign exists for: one import, a
//! typed config, scenarios as values, structured reports.

use ipv6view::prelude::{find, registry, RunConfig, Scenario, Session};

#[test]
fn prelude_runs_a_scenario_end_to_end() {
    let mut session = Session::new(RunConfig::default().sites(200).seed(7).days(2));
    let scenario: &dyn Scenario = find("fig6").expect("fig6 is registered");
    assert_eq!(scenario.name(), "fig6");
    assert!(!scenario.describe().is_empty());
    let report = scenario.run(&mut session);
    assert_eq!(report.scenario, "fig6");
    let text = report.render();
    assert!(text.contains("readiness of top-N sites"), "{text}");
    // The structured form carries the same content as JSON.
    assert!(report.to_json().contains("\"scenario\": \"fig6\""));
}

#[test]
fn registry_spans_all_four_vantage_points() {
    let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
    for expect in ["table1", "fig5", "fig11", "transition", "as-fractions"] {
        assert!(names.contains(&expect), "missing {expect}");
    }
    // The facade also re-exports the transition crate itself (the one
    // workspace member the facade previously omitted).
    let _ = ipv6view::transition::AccessTech::Ipv6OnlyNat64;
}
