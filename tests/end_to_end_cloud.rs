//! Integration: the cloud pipeline — crawl → BGP/AS2Org attribution →
//! per-org readiness → multi-cloud tenants → Wilcoxon matrix → service
//! identification — spanning crawlsim, bgpsim, cloudmodel, netstats and
//! ipv6view-core.

use cloudmodel::catalog::ServiceCatalog;
use ipv6view::core::cloud::{
    default_groups, hosted_fqdns, multicloud_tenant_count, org_readiness, pairwise_comparison,
    service_adoption,
};
use ipv6view::crawlsim::{crawl_epoch, CrawlConfig};
use ipv6view::worldgen::{World, WorldConfig};

#[test]
fn cloud_pipeline_matches_paper_shape() {
    let world = World::generate(&WorldConfig::small());
    let report = crawl_epoch(&world, world.latest_epoch(), &CrawlConfig::default());
    let fqdns = hosted_fqdns(&report, &world.rib, &world.registry);
    assert!(fqdns.len() > 3_000, "{} fqdns", fqdns.len());

    // Per-org classification is internally consistent and Table-3-shaped.
    let orgs = org_readiness(&fqdns);
    for o in &orgs {
        assert_eq!(o.total, o.v4_only + o.v6_full + o.v6_only);
    }
    let get = |name: &str| orgs.iter().find(|o| o.org == name);
    let cf = get("Cloudflare, Inc.").expect("cloudflare present");
    let digo = get("DigitalOcean, LLC").expect("digitalocean present");
    assert!(cf.pct(cf.v6_full) > 60.0);
    assert!(digo.pct(digo.v6_full) < 30.0);
    assert!(cf.pct(cf.v6_full) > digo.pct(digo.v6_full) + 30.0);

    // Multi-cloud tenants exist and the pairwise matrix is computable.
    let groups = default_groups();
    let tenants = multicloud_tenant_count(&fqdns, &world.psl, &groups);
    assert!(tenants > 30, "{tenants} tenants");
    let matrix = pairwise_comparison(&fqdns, &world.psl, &groups, 2);
    assert!(!matrix.cells.is_empty());
    // Effects are bounded and p-values valid.
    for c in &matrix.cells {
        assert!((-1.0..=1.0).contains(&c.effect));
        assert!(c.p_raw > 0.0 && c.p_raw <= 1.0);
    }

    // Service identification works through the CNAME chains the crawler saw.
    let services = service_adoption(&fqdns, &ServiceCatalog::paper());
    assert!(services.len() >= 8);
    let cloudfront = services
        .iter()
        .find(|s| s.service == "Amazon CloudFront CDN")
        .expect("cloudfront identified");
    assert!(cloudfront.total > 20);
}

#[test]
fn attribution_is_stable_across_crawl_configs() {
    // The hosting attribution depends on DNS + BGP, not on crawler knobs:
    // link clicking changes *coverage* (fewer FQDNs) but never flips an
    // individual FQDN's org or readiness.
    let world = World::generate(&WorldConfig::small());
    let e = world.latest_epoch();
    let full = hosted_fqdns(
        &crawl_epoch(&world, e, &CrawlConfig::default()),
        &world.rib,
        &world.registry,
    );
    let main_only = hosted_fqdns(
        &crawl_epoch(
            &world,
            e,
            &CrawlConfig {
                click_links: false,
                ..CrawlConfig::default()
            },
        ),
        &world.rib,
        &world.registry,
    );
    assert!(main_only.len() < full.len());
    let full_map: std::collections::HashMap<_, _> = full
        .iter()
        .map(|f| {
            (
                f.fqdn.clone(),
                (f.v4_org.clone(), f.v6_org.clone(), f.has_aaaa),
            )
        })
        .collect();
    let mut checked = 0;
    for f in &main_only {
        if let Some((v4, v6, aaaa)) = full_map.get(&f.fqdn) {
            assert_eq!(&f.v4_org, v4, "{}", f.fqdn);
            assert_eq!(&f.v6_org, v6, "{}", f.fqdn);
            assert_eq!(&f.has_aaaa, aaaa, "{}", f.fqdn);
            checked += 1;
        }
    }
    assert!(checked > 1_000);
}
