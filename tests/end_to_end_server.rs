//! Integration: the full server-side pipeline — world generation → crawl →
//! graded classification → influence metrics → what-if — spanning worldgen,
//! crawlsim, dnssim, bgpsim and ipv6view-core.

use ipv6view::core::classify::{classify_site, ClassCounts, SiteClass};
use ipv6view::core::influence::InfluenceReport;
use ipv6view::core::readiness::ReadinessBuckets;
use ipv6view::core::whatif::WhatIfCurve;
use ipv6view::crawlsim::{crawl_epoch, CrawlConfig};
use ipv6view::worldgen::{World, WorldConfig};

fn world() -> World {
    World::generate(&WorldConfig::small())
}

#[test]
fn classification_counts_add_up_across_epochs() {
    let w = world();
    for epoch in 0..w.web.epochs.len() {
        let report = crawl_epoch(&w, epoch, &CrawlConfig::default());
        let c = ClassCounts::from_report(&report);
        assert_eq!(c.total, w.web.sites.len());
        assert_eq!(c.connected + c.nxdomain + c.other_failure, c.total);
        assert_eq!(
            c.v4_only + c.partial + c.full + c.unknown_primary,
            c.connected
        );
    }
}

#[test]
fn whatif_is_consistent_with_classification() {
    let w = world();
    let report = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
    let c = ClassCounts::from_report(&report);
    let inf = InfluenceReport::compute(&report, &w.psl);
    // Every partial site appears in the influence analysis.
    assert_eq!(inf.sites.len(), c.partial);
    let curve = WhatIfCurve::compute(&inf);
    assert_eq!(curve.total_partial, c.partial);
    // Enabling everything converts every partial site.
    assert_eq!(*curve.became_full.last().unwrap(), c.partial);
}

#[test]
fn popularity_monotonicity_weakly_holds() {
    // Fig 6: IPv6-full share should broadly decline from head to tail.
    let w = world();
    let report = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
    let b = ReadinessBuckets::compute(&report, &[200, 2_000]);
    assert!(b.buckets[0].pct_full >= b.buckets[1].pct_full);
}

#[test]
fn epoch_drift_directions_match_paper() {
    let w = world();
    let first = ClassCounts::from_report(&crawl_epoch(&w, 0, &CrawlConfig::default()));
    let last =
        ClassCounts::from_report(&crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default()));
    assert!(last.nxdomain >= first.nxdomain, "NXDOMAIN grows");
    assert!(last.v4_only <= first.v4_only, "IPv4-only shrinks");
    assert!(
        last.full >= first.full,
        "IPv6-full grows ({} -> {})",
        first.full,
        last.full
    );
}

#[test]
fn crawler_and_dns_agree_on_aaaa() {
    // The crawler's `main_has_aaaa` must equal direct DNS resolution.
    let w = world();
    let e = w.latest_epoch();
    let report = crawl_epoch(&w, e, &CrawlConfig::default());
    let resolver = ipv6view::dnssim::Resolver::new(w.zone(e));
    let mut checked = 0;
    for s in report.sites.iter().filter_map(|s| s.outcome.as_ref().ok()) {
        let direct = resolver.has_family(&s.final_fqdn, ipv6view::iputil::Family::V6);
        assert_eq!(direct, s.main_has_aaaa, "{}", s.final_fqdn);
        checked += 1;
    }
    assert!(checked > 1_000);
}

#[test]
fn main_page_ablation_inflates_full_share() {
    let w = world();
    let e = w.latest_epoch();
    let full_crawl = ClassCounts::from_report(&crawl_epoch(&w, e, &CrawlConfig::default()));
    let main_only = ClassCounts::from_report(&crawl_epoch(
        &w,
        e,
        &CrawlConfig {
            click_links: false,
            ..CrawlConfig::default()
        },
    ));
    // Fewer resources seen → some partial sites look full (paper: 12.5 → 14.1).
    assert!(
        main_only.full >= full_crawl.full,
        "main-page-only {} vs full {}",
        main_only.full,
        full_crawl.full
    );
    assert!(main_only.partial <= full_crawl.partial);
}

#[test]
fn binary_baseline_always_overstates_graded_full() {
    let w = world();
    let report = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
    let c = ClassCounts::from_report(&report);
    assert!(c.binary_adoption_pct() > c.pct_of_connected(c.full));
    // Per-site: graded Full implies binary-ready (never the reverse).
    for s in &report.sites {
        if classify_site(s) == SiteClass::Full {
            assert_eq!(ipv6view::core::classify::classify_binary(s), Some(true));
        }
    }
}
