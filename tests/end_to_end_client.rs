//! Integration: the client-side pipeline — traffic synthesis → flow monitor
//! → anonymizing export → Table 1 analysis → AS/domain attribution → MSTL —
//! spanning trafficgen, flowmon, iputil, bgpsim, dnssim and ipv6view-core.

use ipv6view::core::client::{analyze_residence, as_fractions, common_ases, domain_fractions};
use ipv6view::flowmon::{AnonymizingExporter, Scope};
use ipv6view::iputil::anon::{Anonymizer, AnonymizerConfig};
use ipv6view::trafficgen::{synthesize_all, TrafficConfig};
use ipv6view::worldgen::{World, WorldConfig};

#[test]
fn full_client_pipeline() {
    let world = World::generate(&WorldConfig::small());
    let datasets = synthesize_all(&world, &TrafficConfig::fast());
    assert_eq!(datasets.len(), 5);

    // Table 1 per-residence shape.
    let analyses: Vec<_> = datasets.iter().map(analyze_residence).collect();
    let frac = |k: char| {
        analyses
            .iter()
            .find(|a| a.key == k)
            .unwrap()
            .external
            .v6_byte_fraction
    };
    // The paper's ordering: A and B IPv6-majority, C far below both.
    assert!(frac('A') > 0.5);
    assert!(frac('B') > 0.5);
    assert!(frac('C') < 0.3);
    assert!(frac('C') < frac('A') && frac('C') < frac('B'));

    // AS attribution finds the catalog's common ASes.
    let fr = as_fractions(&datasets, &world.rib, &world.registry, 0.0001);
    let common = common_ases(&fr, 3);
    assert!(common.len() >= 20);

    // Domain attribution via reverse DNS sees the known IPv4-only laggards.
    let domains = domain_fractions(&datasets, &world.client_zone, &world.psl, 1_000, 3);
    assert!(domains.iter().any(|(d, _)| d.as_str() == "zoom.us"));
}

#[test]
fn anonymized_export_preserves_every_analysis_input() {
    let world = World::generate(&WorldConfig::small());
    let datasets = synthesize_all(
        &world,
        &TrafficConfig {
            num_days: 20,
            ..TrafficConfig::fast()
        },
    );
    let ds = &datasets[0];
    let exporter = AnonymizingExporter::new(Anonymizer::new(
        *b"integration-key!",
        AnonymizerConfig::paper(),
    ));
    let logs = exporter.export(&ds.flows);
    let anon_flows: Vec<_> = logs.into_iter().flat_map(|l| l.records).collect();
    assert_eq!(anon_flows.len(), ds.flows.len());

    // Byte totals, family fractions and scopes are invariant.
    let stats = |flows: &[ipv6view::flowmon::FlowRecord]| {
        let total: u64 = flows.iter().map(|f| f.total_bytes()).sum();
        let v6: u64 = flows
            .iter()
            .filter(|f| f.family() == ipv6view::iputil::Family::V6)
            .map(|f| f.total_bytes())
            .sum();
        let internal = flows.iter().filter(|f| f.scope == Scope::Internal).count();
        (total, v6, internal)
    };
    // Sort-insensitive comparison (export reorders by day).
    let (t1, v1, i1) = stats(&ds.flows);
    let (t2, v2, i2) = stats(&anon_flows);
    assert_eq!(t1, t2);
    assert_eq!(v1, v2);
    assert_eq!(i1, i2);

    // AS attribution still works on anonymized records: the paper keeps the
    // upper 24/64 bits exactly so BGP prefixes still match.
    let mut attributed = 0;
    for f in anon_flows.iter().filter(|f| f.scope == Scope::External) {
        if world.rib.origin_of(f.key.dst).is_some() {
            attributed += 1;
        }
    }
    let ext_count = anon_flows
        .iter()
        .filter(|f| f.scope == Scope::External)
        .count();
    assert!(
        attributed as f64 > 0.95 * ext_count as f64,
        "{attributed}/{ext_count} anonymized flows still attribute to an AS"
    );
}

#[test]
fn seasonal_pipeline_decomposes_dense_traffic() {
    let world = World::generate(&WorldConfig::small());
    let datasets = synthesize_all(
        &world,
        &TrafficConfig {
            num_days: 21,
            scale: 1.0 / 50.0,
            ..TrafficConfig::default()
        },
    );
    let series = ipv6view::core::client::hourly_fraction_series(
        &datasets[0],
        Scope::External,
        ipv6view::core::client::Metric::Bytes,
        0..21,
    );
    assert_eq!(series.len(), 21 * 24);
    let fit = ipv6view::core::seasonal::decompose_hourly(&series).expect("decomposes");
    // Exact additivity across crates.
    for (recon, orig) in fit.reconstructed().iter().zip(&series) {
        assert!((recon - orig).abs() < 1e-9);
    }
}
