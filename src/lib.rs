//! # ipv6view
//!
//! Facade crate for the non-binary IPv6 adoption measurement suite, a full
//! reproduction of *"Towards a Non-Binary View of IPv6 Adoption"* (IMC 2025).
//!
//! This crate re-exports every workspace member so downstream users can depend
//! on a single crate. The fastest way in is the [`prelude`] and the
//! experiment engine: build a [`prelude::Session`] from a typed
//! [`prelude::RunConfig`], then run any [`prelude::Scenario`] from the
//! static registry — every paper table and figure is a scenario, and each
//! returns a structured, serializable [`prelude::Report`]:
//!
//! ```
//! use ipv6view::prelude::{registry, RunConfig, Scenario, Session};
//!
//! // Scenarios are first-class values: enumerate, pick, run.
//! let fig6 = registry()
//!     .iter()
//!     .find(|s| s.name() == "fig6")
//!     .expect("registered");
//!
//! // A tiny world for the doc test; `RunConfig::default().full()` is the
//! // paper's 100k-site scale.
//! let mut session = Session::new(RunConfig::default().sites(200).seed(7).days(2));
//! let report = fig6.run(&mut session);
//! assert_eq!(report.scenario, "fig6");
//! assert!(report.render().contains("readiness of top-N sites"));
//! ```
//!
//! ## Fault injection
//!
//! The deterministic fault plane threads failure timelines through DNS,
//! gateways, paths and the RIB. A [`prelude::FaultPlan`] attached to the
//! [`prelude::RunConfig`] rides into every synthesis pass of the session,
//! so *any* scenario can be re-run under stress (an empty plan is
//! byte-identical to no plan, and output is invariant to thread fan-out
//! at any plan):
//!
//! ```
//! use ipv6view::prelude::{find, DnsFailure, FaultPlan, PoolTarget, RunConfig, Session, Window};
//!
//! let plan = FaultPlan::new(0xfa11)
//!     .dns_burst(DnsFailure::ServFail, 0.5, Window::days(0, 1))
//!     .gateway_outage(PoolTarget::Both, Window::new(0, 1, 8, 16));
//! let mut stressed = Session::new(
//!     RunConfig::default().sites(200).seed(7).days(2).faults(plan),
//! );
//! // The cohort now degrades under the timeline; the registry's
//! // `faults-sweep` / `adoption-under-stress` scenarios study the effects.
//! let report = find("transition").expect("registered").run(&mut stressed);
//! assert_eq!(report.scenario, "transition");
//! ```
//!
//! ## Observing a run
//!
//! The deterministic telemetry plane (`obs`) instruments the whole
//! pipeline — stage spans, counters for DNS/LPM/gateway/drop events, and
//! [`netstats::LogHistogram`]-backed flow-shape distributions. It is off by
//! default (one relaxed atomic load per instrumentation point) and never
//! perturbs results: scenario output is byte-identical with the plane
//! enabled, and everything in the snapshot except wall-clock nanoseconds is
//! invariant to `threads` / `day_threads`. Enable it per session with
//! [`prelude::RunConfig::metrics`] and read the merged snapshot back:
//!
//! ```
//! use ipv6view::prelude::{find, RunConfig, Session};
//!
//! let mut session = Session::new(
//!     RunConfig::default().sites(200).seed(7).days(2).metrics(true),
//! );
//! find("table1").expect("registered").run(&mut session);
//! let metrics = session.metrics();
//! assert!(metrics.counter("synth.flows_emitted").unwrap_or(0) > 0);
//! assert!(metrics.histogram("synth.flow_bytes").is_some());
//! assert!(metrics.spans.iter().any(|s| s.path.contains("synthesize")));
//! ipv6view::obs::set_enabled(false); // doc tests share the global plane
//! ```
//!
//! The same snapshot backs `repro <scenario> --metrics` (stage table on
//! stdout) and `--metrics-json` (raw [`prelude::MetricsReport`] JSON);
//! `REPRO_LOG=off|error|warn|info|debug|trace` filters the suite's stderr
//! diagnostics, which route through the `obs` leveled log macros.
//!
//! ## The compiled LPM engine
//!
//! Per-AS attribution at routing-table scale runs on a compiled LPM path:
//! world generation freezes the RIB's radix tries into flattened multibit
//! tables ([`iputil::multibit`], Poptrie-style popcount-bitmap strides),
//! and batched lookups walk them with interleaved software-prefetch lanes.
//! This is on by default and purely a performance substitution — every
//! scenario's report is byte-identical with it disabled
//! ([`prelude::RunConfig::compiled_lpm`]`(false)` thaws back to the radix
//! trie, which remains the mutable authority under RIB churn). See the
//! `iputil` crate docs for the architecture and churn/fallback semantics.
//!
//! ## Spilling flow streams to disk
//!
//! Million-subscriber runs cannot hold their flow records. The `flowstore`
//! crate spills any [`prelude::FlowSink`] stream into sorted, immutable,
//! columnar **day-parts** (delta/dictionary/RLE-compressed, one file per
//! stream-day with a digest-bearing footer) and replays them back in
//! canonical order, reproducing the stream byte for byte:
//!
//! ```
//! use ipv6view::flowmon::{CollectSink, FlowKey, FlowRecord, FlowSink, Scope, DAY};
//! use ipv6view::flowstore::{PartSet, SpillSink};
//!
//! # fn main() -> Result<(), ipv6view::flowstore::Error> {
//! # use std::net::{Ipv4Addr, Ipv6Addr};
//! let rec = |day: u64, i: u64| FlowRecord {
//!     key: FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1).into(), 5_000 + i as u16,
//!                       Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 7).into(), 53),
//!     start: day * DAY + i,
//!     end: day * DAY + i + 3,
//!     bytes_orig: i, bytes_reply: 2 * i,
//!     packets_orig: 1, packets_reply: 1,
//!     scope: Scope::External,
//! };
//! let records: Vec<FlowRecord> =
//!     (0..2).flat_map(|d| (0..100).map(move |i| rec(d, i))).collect();
//!
//! let dir = std::env::temp_dir().join("ipv6view-facade-spill");
//! let mut spill = SpillSink::new(&dir, 0)?;   // one part sealed per day
//! spill.accept_batch(&records);
//! let parts = spill.finish()?;
//!
//! let mut replay = CollectSink::new();
//! PartSet::from_metas(parts).replay_into(&mut replay)?;
//! assert_eq!(replay.records, records);        // byte-identical round trip
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! The experiment engine wires this in end to end:
//! [`prelude::RunConfig::spill`] (the CLI's `--spill DIR`) routes the
//! streaming passes of `million-subs`, `as-fractions` and `repro export`
//! through day-parts — peak RSS becomes one in-flight day-part per worker —
//! and every replay is digest-verified against the live stream, with
//! reports byte-identical to in-memory runs.
//!
//! ## Determinism contract
//!
//! Everything above rests on one invariant: **scenario output is
//! byte-identical for a given `(sites, seed, days)` regardless of thread
//! layout, fault plan, metrics plane, or LPM engine.** Concretely:
//!
//! * all randomness flows from the session seed through `SmallRng` streams
//!   keyed by logical coordinates (site rank, residence, day, stream tag) —
//!   never from entropy, time, or thread id;
//! * nothing ordered is ever derived from hash-map iteration order: ordered
//!   state lives in `Vec`/`BTreeMap`/[`iputil::sym::SymVec`], and any
//!   `HashMap` detour is sorted (or provably commutative) before it can
//!   reach a report;
//! * wall-clock time is confined to the telemetry spans and the bench
//!   ledgers, which are excluded from digest comparisons.
//!
//! The digest tests enforce this dynamically; the `tidy` crate enforces it
//! statically. `cargo run -p tidy` (and the tier-1 test
//! `crates/tidy/tests/workspace.rs`, and a CI step) lints every source file
//! for contract violations — hash-order iteration, ambient RNG
//! (`thread_rng`/`from_entropy`), unexcused `Instant::now`, undocumented
//! `unsafe`, raw `eprintln!` diagnostics, unchecked `std::env::var` reads,
//! and `.unwrap()` growth against a committed per-crate ratchet baseline.
//! A site whose order/timing provably cannot leak is waived in place with
//! a justified directive:
//!
//! ```text
//! for v in map.values() { // tidy:allow(nondeterministic-iteration): commutative sum
//! ```
//!
//! The reason is mandatory and a directive that no longer suppresses
//! anything is itself an error, so waivers cannot outlive the code they
//! excuse. See the `tidy` crate docs for the full lint catalogue.
//!
//! Lower-level entry points remain available through the re-exported
//! crates:
//!
//! ```
//! use ipv6view::worldgen::{World, WorldConfig};
//! let world = World::generate(&WorldConfig::small());
//! assert!(!world.web.sites.is_empty());
//! ```
//!
//! See the workspace `README.md` for an architecture overview, `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the experiment index.

#![forbid(unsafe_code)]

pub use bgpsim;
pub use cloudmodel;
pub use crawlsim;
pub use dnssim;
/// The experiment engine: `Session`/`Scenario`/`Report` plus the registry
/// behind the `repro` binary.
pub use experiments;
/// The deterministic fault-injection plane: failure timelines through DNS,
/// gateways, paths and the RIB.
pub use faults;
pub use flowmon;
/// The spillable columnar flow store: sorted immutable day-parts, digest-
/// verified replay, and the `--spill` path behind million-subscriber runs.
pub use flowstore;
pub use happyeyeballs;
/// IP primitives: prefixes, the radix-trie LPM authority and its compiled
/// flattened-multibit twin, symbol interning, prefix-preserving
/// anonymization.
pub use iputil;
pub use ipv6view_core as core;
pub use mstl;
pub use netsim;
pub use netstats;
/// The deterministic telemetry plane: spans, counters, histograms and
/// leveled logging, off by default and layout-invariant when on.
pub use obs;
pub use trafficgen;
/// Transition technologies: NAT64/DNS64, 464XLAT, DS-Lite and the shared
/// provider CGN gateway.
pub use transition;
pub use webmodel;
pub use worldgen;

/// The one-import surface for experiment-driven use: the engine types, the
/// scenario registry, and the world/traffic configuration they run over.
pub mod prelude {
    pub use experiments::{
        export_all, find, registry, Comparison, Dataset, Element, Report, RunConfig, Scenario,
        Session,
    };
    pub use faults::{DnsFailure, FaultKind, FaultPlan, PoolTarget, Window};
    pub use flowmon::sink::{Fanout, FlowSink, Tee};
    pub use flowmon::{DropCause, DropCounters};
    pub use flowstore::{DigestSink, PartSet, SpillSink};
    pub use obs::MetricsReport;
    pub use trafficgen::TrafficConfig;
    pub use worldgen::{World, WorldConfig};
}
