//! # ipv6view
//!
//! Facade crate for the non-binary IPv6 adoption measurement suite, a full
//! reproduction of *"Towards a Non-Binary View of IPv6 Adoption"* (IMC 2025).
//!
//! This crate re-exports every workspace member so downstream users can depend
//! on a single crate:
//!
//! ```
//! use ipv6view::worldgen::{World, WorldConfig};
//! let world = World::generate(&WorldConfig::small());
//! assert!(!world.web.sites.is_empty());
//! ```
//!
//! See the workspace `README.md` for an architecture overview, `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the experiment index.

pub use bgpsim;
pub use cloudmodel;
pub use crawlsim;
pub use dnssim;
pub use flowmon;
pub use happyeyeballs;
pub use iputil;
pub use ipv6view_core as core;
pub use mstl;
pub use netsim;
pub use netstats;
pub use trafficgen;
pub use webmodel;
pub use worldgen;
