//! Vendored minimal stand-in for `serde_json`.
//!
//! Provides the pieces the workspace uses with no crates.io access:
//! [`to_string`] / [`to_string_pretty`] over the vendored `serde`
//! serialization model, and [`from_str`] parsing into a self-describing
//! [`Value`] (the only deserialization target in the workspace).

#![forbid(unsafe_code)]

use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted by key).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Index into an object by key or an array by stringified index.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            Value::Array(a) => key.parse::<usize>().ok().and_then(|i| a.get(i)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Serialization: a writer targeting compact or pretty output.
// ---------------------------------------------------------------------------

/// Where serialized bytes go: an in-memory `String` ([`to_string`]) or an
/// [`std::io::Write`] stream ([`to_writer`]). The serializer emits through
/// this trait only, so both destinations produce byte-identical JSON.
trait Emit {
    fn emit(&mut self, s: &str);
    fn emit_char(&mut self, c: char);
}

impl Emit for String {
    fn emit(&mut self, s: &str) {
        self.push_str(s);
    }
    fn emit_char(&mut self, c: char) {
        self.push(c);
    }
}

/// Streams tokens straight into an `io::Write`, latching the first I/O
/// error (the `Emit` methods are infallible; the error surfaces once at the
/// end of serialization). Callers hand in a `BufWriter` when token-sized
/// writes would otherwise hit the OS.
struct IoEmit<W: std::io::Write> {
    w: W,
    err: Option<std::io::Error>,
}

impl<W: std::io::Write> Emit for IoEmit<W> {
    fn emit(&mut self, s: &str) {
        if self.err.is_none() {
            if let Err(e) = self.w.write_all(s.as_bytes()) {
                self.err = Some(e);
            }
        }
    }
    fn emit_char(&mut self, c: char) {
        self.emit(c.encode_utf8(&mut [0u8; 4]));
    }
}

struct Writer<E: Emit> {
    out: E,
    pretty: bool,
    depth: usize,
}

impl<E: Emit> Writer<E> {
    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.emit_char('\n');
            for _ in 0..self.depth {
                self.out.emit("  ");
            }
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.emit_char('"');
        for c in s.chars() {
            match c {
                '"' => self.out.emit("\\\""),
                '\\' => self.out.emit("\\\\"),
                '\n' => self.out.emit("\\n"),
                '\r' => self.out.emit("\\r"),
                '\t' => self.out.emit("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.emit(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.emit_char(c),
            }
        }
        self.out.emit_char('"');
    }

    fn push_f64(&mut self, v: f64) {
        if !v.is_finite() {
            // Real serde_json refuses non-finite floats; emitting null keeps
            // exported datasets parseable instead of aborting an export run.
            self.out.emit("null");
        } else if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats recognizably float-typed, like serde_json.
            self.out.emit(&format!("{v:.1}"));
        } else {
            self.out.emit(&format!("{v}"));
        }
    }
}

struct Ser<'a, E: Emit> {
    w: &'a mut Writer<E>,
}

struct SerCompound<'a, E: Emit> {
    w: &'a mut Writer<E>,
    first: bool,
    closer: char,
}

impl<E: Emit> SerCompound<'_, E> {
    fn before_item(&mut self) {
        if !self.first {
            self.w.out.emit_char(',');
        }
        self.first = false;
        self.w.newline_indent();
    }

    fn finish(self) {
        self.w.depth -= 1;
        if !self.first {
            self.w.newline_indent();
        }
        self.w.out.emit_char(self.closer);
    }
}

impl<'a, E: Emit> Serializer for Ser<'a, E> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SerCompound<'a, E>;
    type SerializeMap = SerCompound<'a, E>;
    type SerializeStruct = SerCompound<'a, E>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.w.out.emit(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.w.out.emit(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.w.out.emit(&v.to_string());
        Ok(())
    }

    fn serialize_i128(self, v: i128) -> Result<(), Error> {
        self.w.out.emit(&v.to_string());
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<(), Error> {
        self.w.out.emit(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        self.w.push_f64(v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.w.push_escaped(v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.w.out.emit("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.w.out.emit("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.w.push_escaped(variant);
        Ok(())
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.w.out.emit_char('{');
        self.w.depth += 1;
        self.w.newline_indent();
        self.w.push_escaped(variant);
        self.w.out.emit_char(':');
        if self.w.pretty {
            self.w.out.emit_char(' ');
        }
        value.serialize(Ser { w: self.w })?;
        self.w.depth -= 1;
        self.w.newline_indent();
        self.w.out.emit_char('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SerCompound<'a, E>, Error> {
        self.w.out.emit_char('[');
        self.w.depth += 1;
        Ok(SerCompound {
            w: self.w,
            first: true,
            closer: ']',
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<SerCompound<'a, E>, Error> {
        self.w.out.emit_char('{');
        self.w.depth += 1;
        Ok(SerCompound {
            w: self.w,
            first: true,
            closer: '}',
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<SerCompound<'a, E>, Error> {
        self.w.out.emit_char('{');
        self.w.depth += 1;
        Ok(SerCompound {
            w: self.w,
            first: true,
            closer: '}',
        })
    }
}

impl<E: Emit> SerializeSeq for SerCompound<'_, E> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.before_item();
        value.serialize(Ser { w: self.w })
    }

    fn end(self) -> Result<(), Error> {
        self.finish();
        Ok(())
    }
}

/// Serialize a map key: JSON object keys must be strings, so only types that
/// serialize as strings or integers are accepted.
struct KeySer<'a, E: Emit> {
    w: &'a mut Writer<E>,
}

struct NoCompound;

impl SerializeSeq for NoCompound {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, _v: &T) -> Result<(), Error> {
        Err(Error("map key must be a string".into()))
    }
    fn end(self) -> Result<(), Error> {
        Err(Error("map key must be a string".into()))
    }
}

impl SerializeMap for NoCompound {
    type Ok = ();
    type Error = Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        _k: &K,
        _v: &V,
    ) -> Result<(), Error> {
        Err(Error("map key must be a string".into()))
    }
    fn end(self) -> Result<(), Error> {
        Err(Error("map key must be a string".into()))
    }
}

impl SerializeStruct for NoCompound {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        _v: &T,
    ) -> Result<(), Error> {
        Err(Error("map key must be a string".into()))
    }
    fn end(self) -> Result<(), Error> {
        Err(Error("map key must be a string".into()))
    }
}

impl<'a, E: Emit> Serializer for KeySer<'a, E> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = NoCompound;
    type SerializeMap = NoCompound;
    type SerializeStruct = NoCompound;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.w.push_escaped(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.w.push_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.w.push_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<(), Error> {
        self.w.push_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<(), Error> {
        self.w.push_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_f64(self, _v: f64) -> Result<(), Error> {
        Err(Error("float map keys are not valid JSON".into()))
    }
    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.w.push_escaped(v);
        Ok(())
    }
    fn serialize_unit(self) -> Result<(), Error> {
        Err(Error("unit map keys are not valid JSON".into()))
    }
    fn serialize_none(self) -> Result<(), Error> {
        Err(Error("null map keys are not valid JSON".into()))
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.w.push_escaped(variant);
        Ok(())
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), Error> {
        Err(Error("compound map keys are not valid JSON".into()))
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<NoCompound, Error> {
        Err(Error("array map keys are not valid JSON".into()))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<NoCompound, Error> {
        Err(Error("object map keys are not valid JSON".into()))
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<NoCompound, Error> {
        Err(Error("object map keys are not valid JSON".into()))
    }
}

impl<E: Emit> SerializeMap for SerCompound<'_, E> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        self.before_item();
        key.serialize(KeySer { w: self.w })?;
        self.w.out.emit_char(':');
        if self.w.pretty {
            self.w.out.emit_char(' ');
        }
        value.serialize(Ser { w: self.w })
    }

    fn end(self) -> Result<(), Error> {
        self.finish();
        Ok(())
    }
}

impl<E: Emit> SerializeStruct for SerCompound<'_, E> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.before_item();
        self.w.push_escaped(key);
        self.w.out.emit_char(':');
        if self.w.pretty {
            self.w.out.emit_char(' ');
        }
        value.serialize(Ser { w: self.w })
    }

    fn end(self) -> Result<(), Error> {
        self.finish();
        Ok(())
    }
}

fn serialize_with(value: &(impl Serialize + ?Sized), pretty: bool) -> Result<String, Error> {
    let mut w = Writer {
        out: String::new(),
        pretty,
        depth: 0,
    };
    value.serialize(Ser { w: &mut w })?;
    Ok(w.out)
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    serialize_with(value, false)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    serialize_with(value, true)
}

fn writer_with<W: std::io::Write, T: Serialize + ?Sized>(
    writer: W,
    value: &T,
    pretty: bool,
) -> Result<(), Error> {
    let mut w = Writer {
        out: IoEmit {
            w: writer,
            err: None,
        },
        pretty,
        depth: 0,
    };
    value.serialize(Ser { w: &mut w })?;
    match w.out.err {
        None => Ok(()),
        Some(e) => Err(Error(format!("I/O error: {e}"))),
    }
}

/// Serialize compact JSON straight into an [`std::io::Write`] — the whole
/// document never exists in memory. Byte-identical to [`to_string`].
/// Wrap slow writers in a `BufWriter`: the serializer emits token-sized
/// writes.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    writer: W,
    value: &T,
) -> Result<(), Error> {
    writer_with(writer, value, false)
}

/// Serialize pretty-printed JSON straight into an [`std::io::Write`].
/// Byte-identical to [`to_string_pretty`].
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    writer: W,
    value: &T,
) -> Result<(), Error> {
    writer_with(writer, value, true)
}

// ---------------------------------------------------------------------------
// Parsing into Value.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are replaced; exported datasets
                            // never contain astral-plane escape pairs.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
///
/// Unlike real `serde_json`, this is not generic: [`Value`] is the only
/// deserialization target the workspace uses.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let v = from_str(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(a[3].as_bool(), Some(true));
        assert!(a[4].is_null());
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_i64(), Some(-3));
    }

    #[test]
    fn pretty_output_reparses() {
        let data = vec![("k".to_string(), 1u64), ("m".to_string(), 2)];
        let map: std::collections::BTreeMap<_, _> = data.into_iter().collect();
        let text = to_string_pretty(&map).unwrap();
        assert!(text.contains("\"k\": 1"));
        let v = from_str(&text).unwrap();
        assert_eq!(v.get("m").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn compact_output() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(to_string(&xs).unwrap(), "[1,2,3]");
        let s = "quote\" and \\ slash";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str(&json).unwrap().as_str(), Some(s));
    }

    #[test]
    fn floats_stay_float_typed() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn writer_output_is_byte_identical_to_string_output() {
        let map: std::collections::BTreeMap<String, Vec<f64>> = [
            ("series\n".to_string(), vec![1.0, 0.25, f64::NAN]),
            ("empty".to_string(), vec![]),
        ]
        .into_iter()
        .collect();
        let mut compact = Vec::new();
        to_writer(&mut compact, &map).unwrap();
        assert_eq!(compact, to_string(&map).unwrap().into_bytes());
        let mut pretty = Vec::new();
        to_writer_pretty(std::io::BufWriter::new(&mut pretty), &map).unwrap();
        assert_eq!(pretty, to_string_pretty(&map).unwrap().into_bytes());
    }

    #[test]
    fn writer_surfaces_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = to_writer(Broken, &vec![1u32, 2]).unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
    }
}
