//! Vendored minimal stand-in for `criterion`.
//!
//! Implements the subset the workspace benches use — [`Criterion`],
//! [`Bencher::iter`], [`black_box`], `criterion_group!`/`criterion_main!` —
//! with real wall-clock measurement: per sample it auto-scales the iteration
//! count to a target duration, then reports the median, minimum and maximum
//! per-iteration time. Output is one line per benchmark plus a JSON-ish
//! summary line (`BENCH{...}`) that scripts can scrape.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver configuration + registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock duration of one sample (iterations auto-scale).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target_sample_time = d;
        self
    }

    /// Run one benchmark (skipped unless its name matches the CLI filter,
    /// mirroring `cargo bench -- <substring>` behavior of real criterion).
    ///
    /// `cargo bench -- --test` runs each benchmark body exactly once
    /// without timing — real criterion's smoke-test mode, used by CI to
    /// prove the benches execute without paying for measurement.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let filters: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
        if !filters.is_empty() && !filters.iter().any(|pat| name.contains(pat.as_str())) {
            return self;
        }
        if args.iter().any(|a| a == "--test") {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{name}: smoke test ok (1 iteration, unmeasured)");
            return self;
        }
        // Calibration pass: run once to estimate per-iteration cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample = (self.target_sample_time.as_nanos() / per_iter.as_nanos())
            .clamp(1, u32::MAX as u128) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples_ns[samples_ns.len() / 2];
        let lo = samples_ns[0];
        let hi = samples_ns[samples_ns.len() - 1];
        println!(
            "{name:<45} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        println!(
            "BENCH{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"min_ns\":{lo:.1},\
             \"max_ns\":{hi:.1},\"samples\":{},\"iters_per_sample\":{iters_per_sample}}}",
            samples_ns.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to fill the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}
