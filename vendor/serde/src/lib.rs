//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of serde's serialization data model that the workspace uses:
//! the [`Serialize`] / [`Serializer`] traits with struct, seq, map and
//! unit-variant support, `derive(Serialize)` / `derive(Deserialize)` for
//! plain named-field structs and unit enums (via the sibling vendored
//! `serde_derive`), and a minimal [`Deserialize`] surface (strings only —
//! enough for the manual `dnssim::Name` impl; the JSON side deserializes
//! into `serde_json::Value` without going through this trait).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialization machinery: compound serializers and the error bound.
pub mod ser {
    use super::Serialize;

    /// Errors produced by a serializer.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Build an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Sequence serializer (arrays / `Vec`).
    pub trait SerializeSeq {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serialize one element.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Map serializer (string-keyed objects).
    pub trait SerializeMap {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serialize one key/value entry.
        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error>;
        /// Finish the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Struct serializer (named fields).
    pub trait SerializeStruct {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serialize one named field.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Compound serializer for sequences.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: ser::SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a 128-bit signed integer.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    /// Serialize a 128-bit unsigned integer.
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit value (`()` / `None`-like).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant (rendered as its name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant (rendered as `{variant: value}`).
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Serialize a `char` (as a one-character string).
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        let mut buf = [0u8; 4];
        self.serialize_str(v.encode_utf8(&mut buf))
    }
}

/// Types serializable into any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*}
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*}
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u128(*self)
    }
}

impl Serialize for i128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i128(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(v) => serializer.serialize_newtype_variant("Result", 0, "Ok", v),
            Err(e) => serializer.serialize_newtype_variant("Result", 1, "Err", e),
        }
    }
}

fn serialize_iter<S: Serializer, T: Serialize, I: ExactSizeIterator<Item = T>>(
    serializer: S,
    iter: I,
) -> Result<S::Ok, S::Error> {
    use ser::SerializeSeq;
    let mut seq = serializer.serialize_seq(Some(iter.len()))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeSeq;
                let mut seq = serializer.serialize_seq(Some(0 $(+ { let _ = stringify!($name); 1 })+))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*}
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for std::net::IpAddr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

/// Deserialization machinery (minimal: string values only).
pub mod de {
    /// Errors produced by a deserializer.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Build an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A data format that can deserialize values.
///
/// Deliberately tiny: the workspace only deserializes strings through this
/// trait (`dnssim::Name`); structured JSON input goes through
/// `serde_json::Value` directly.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
    /// Deserialize a string value.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

/// Types deserializable from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        deserializer.deserialize_string()
    }
}
