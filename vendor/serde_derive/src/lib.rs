//! Vendored minimal `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two shapes the workspace uses — plain named-field structs and unit-variant
//! enums — with no dependency on `syn`/`quote` (the build environment has no
//! crates.io access). Generics and `#[serde(...)]` attributes are not
//! supported and produce a compile error, so misuse fails loudly rather than
//! silently misbehaving.
//!
//! Derived `Deserialize` impls are compile-time stubs that error at runtime:
//! the workspace never deserializes derived types (structured input goes
//! through `serde_json::Value`), but the trait bound must exist for the
//! derives to compile.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parse a struct/enum definition out of the derive input token stream.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "vendored serde_derive does not support tuple struct `{name}`"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "vendored serde_derive does not support unit struct `{name}`"
                ))
            }
            Some(_) => continue,
            None => return Err(format!("no body found for `{name}`")),
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body.stream())?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body.stream())?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Consume the type up to a top-level comma (angle brackets nest).
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        if let Some(TokenTree::Group(_)) = iter.peek() {
            return Err(format!(
                "vendored serde_derive supports unit enum variants only; `{name}` has data"
            ));
        }
        variants.push(name);
        for tok in iter.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

/// Derive `serde::Serialize` for named-field structs and unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut body = format!(
                "let mut __s = ::serde::Serializer::serialize_struct(__serializer, \
                 {name:?}, {}usize)?;\n",
                fields.len()
            );
            for f in &fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __s, {f:?}, &self.{f})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(__s)\n");
            wrap_serialize_impl(&name, &body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Serializer::serialize_unit_variant(\
                     __serializer, {name:?}, {i}u32, {v:?}),\n"
                ));
            }
            wrap_serialize_impl(&name, &format!("match *self {{ {arms} }}"))
        }
    };
    code.parse().unwrap()
}

fn wrap_serialize_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derive `serde::Deserialize` (compile-time stub; see module docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(_deserializer: __D)\n\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                     \"vendored serde: derived Deserialize is a stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
