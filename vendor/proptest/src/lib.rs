//! Vendored minimal stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, `any::<T>()` for primitives and
//! byte arrays, numeric ranges as strategies, strategy tuples, `Just`,
//! `prop_oneof!`, `proptest::collection::{vec, btree_set}`, the `proptest!`
//! macro with optional `#![proptest_config(...)]`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the generated values left implicit in the assert message) and a fixed
//! per-test-name deterministic RNG rather than a persisted failure file.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving the strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (e.g. the test function name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Seed from a 64-bit value (expanded through SplitMix64).
    pub fn from_seed(mut seed: u64) -> TestRng {
        let mut next = || {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retries, panics after 1000 misses).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// Strategy generating exactly the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite floats only — the workspace's numeric properties assume finite
    /// inputs and constrain ranges explicitly where it matters.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() - 0.5) * 2e9
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*}
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*}
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// String patterns as strategies: a `&str` is interpreted as a small regex
/// subset — literal characters, character classes (`[a-z0-9_]`, with ranges),
/// and repetition (`{n}`, `{m,n}`, `*`, `+` capped at 8) — matching how the
/// workspace's tests use proptest's regex strategies.
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let atom: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid class range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Optional repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repetition bound"),
                        n.trim().parse().expect("repetition bound"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom[rng.below(atom.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Uniform choice between same-typed strategies (see [`prop_oneof!`]).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].gen_value(rng)
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(20).max(64) {
                set.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeSet` strategy (best-effort size when the domain is small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

// Re-exported so `prelude::*` users can name it.
pub use collection::SizeRange;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Run property tests: `proptest! { #[test] fn f(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::Strategy::gen_value(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Assert within a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 0u8..=3, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..30, any::<bool>()).prop_map(|(a, b)| (a as u32, b))) {
            let (a, _b) = pair;
            prop_assert!(a < 30);
        }

        #[test]
        fn collections_have_requested_sizes(
            v in crate::collection::vec(0u64..1000, 3..10),
            s in crate::collection::btree_set(0u16..1000, 1..8),
        ) {
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn oneof_picks_from_all(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_override_runs(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("foo");
        let mut b = TestRng::from_name("foo");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
