//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this self-contained implementation of the small slice of the `rand 0.8`
//! API the suite actually uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`] and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same generator
//! real `rand 0.8` uses on 64-bit platforms — so statistical quality matches
//! what the simulation calibration tests were written against. Determinism
//! is total: no OS entropy, no system time.

#![forbid(unsafe_code)]

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole value range (the `Standard`
/// distribution of real `rand`), via `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types uniformly samplable within bounds (enables `Rng::gen_range`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128)
                    .wrapping_sub(lo as i128)
                    .wrapping_add(inclusive as i128) as u128;
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return u128::sample(rng) as $t;
                }
                lo.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
    )*}
}
impl_uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32, _inclusive: bool) -> f32 {
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with `Rng::gen_range`. The single blanket impl per range
/// shape is what lets integer-literal inference work (`gen_range(3..=7)`),
/// exactly as in real `rand`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> SmallRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(8u8..=24);
            assert!((8..=24).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.gen::<[u8; 16]>();
        use super::RngCore;
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
