//! Quickstart: the 60-second tour of the suite, library-first — build a
//! [`Session`] from a typed [`RunConfig`], look at the non-binary IPv6
//! classification, then run a registered [`Scenario`] the way the `repro`
//! binary does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ipv6view::core::classify::ClassCounts;
use ipv6view::prelude::{find, registry, RunConfig, Session};

fn main() {
    // 1. A session: 2,000 ranked websites, third-party ecosystem, cloud
    //    hosting, DNS — everything derived from one seed, with crawls and
    //    traffic runs cached so every scenario pays for them once.
    //    (`RunConfig::default().full()` is the paper's 100k-site scale.)
    let mut session = Session::new(RunConfig::default().sites(2_000).days(30));
    println!(
        "world: {} sites, {} third-party domains, {} DNS names",
        session.world.web.sites.len(),
        session.world.web.third_parties.len(),
        session
            .world
            .zone(session.world.latest_epoch())
            .name_count()
    );

    // 2. Crawl it the way the paper crawls the Tranco list: full page loads
    //    plus five same-site link clicks, Happy Eyeballs for the connection.
    let report = session.latest_crawl();

    // 3. The non-binary view: graded classes, not "has AAAA".
    let counts = ClassCounts::from_report(report);
    println!("\n{} sites crawled ({})", counts.total, report.epoch_label);
    println!(
        "  loading failures : {}",
        counts.nxdomain + counts.other_failure
    );
    println!(
        "  IPv4-only        : {:5}  ({:.1}% of connected)",
        counts.v4_only,
        counts.pct_of_connected(counts.v4_only)
    );
    println!(
        "  IPv6-partial     : {:5}  ({:.1}%)",
        counts.partial,
        counts.pct_of_connected(counts.partial)
    );
    println!(
        "  IPv6-full        : {:5}  ({:.1}%)",
        counts.full,
        counts.pct_of_connected(counts.full)
    );
    println!(
        "\nThe binary metric would call {:.1}% of sites 'IPv6-ready'.",
        counts.binary_adoption_pct()
    );
    println!(
        "The graded view shows only {:.1}% actually work end-to-end on IPv6.",
        counts.pct_of_connected(counts.full)
    );

    // 4. Scenarios are first-class values: every paper table and figure is
    //    one. Run Fig 6 (the popularity gradient) from the registry — the
    //    crawl above is reused from the session cache, and the result is a
    //    structured, serializable report.
    println!(
        "\n{} scenarios registered; running `fig6`:",
        registry().len()
    );
    let fig6 = find("fig6").expect("registered");
    let report = fig6.run(&mut session);
    print!("{}", report.render());
    println!("(the same report serializes: repro fig6 --json)");
}
