//! Quickstart: generate a small synthetic Internet, crawl it, and print the
//! non-binary IPv6 classification — the 60-second tour of the suite.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ipv6view::core::classify::ClassCounts;
use ipv6view::core::readiness::ReadinessBuckets;
use ipv6view::crawlsim::{crawl_epoch, CrawlConfig};
use ipv6view::worldgen::{World, WorldConfig};

fn main() {
    // 1. A world: 2,000 ranked websites, third-party ecosystem, cloud
    //    hosting, DNS — everything derived from one seed.
    let world = World::generate(&WorldConfig::small());
    println!(
        "world: {} sites, {} third-party domains, {} DNS names",
        world.web.sites.len(),
        world.web.third_parties.len(),
        world.zone(world.latest_epoch()).name_count()
    );

    // 2. Crawl it the way the paper crawls the Tranco list: full page loads
    //    plus five same-site link clicks, Happy Eyeballs for the connection.
    let report = crawl_epoch(&world, world.latest_epoch(), &CrawlConfig::default());

    // 3. The non-binary view: graded classes, not "has AAAA".
    let counts = ClassCounts::from_report(&report);
    println!("\n{} sites crawled ({})", counts.total, report.epoch_label);
    println!(
        "  loading failures : {}",
        counts.nxdomain + counts.other_failure
    );
    println!(
        "  IPv4-only        : {:5}  ({:.1}% of connected)",
        counts.v4_only,
        counts.pct_of_connected(counts.v4_only)
    );
    println!(
        "  IPv6-partial     : {:5}  ({:.1}%)",
        counts.partial,
        counts.pct_of_connected(counts.partial)
    );
    println!(
        "  IPv6-full        : {:5}  ({:.1}%)",
        counts.full,
        counts.pct_of_connected(counts.full)
    );
    println!(
        "\nThe binary metric would call {:.1}% of sites 'IPv6-ready'.",
        counts.binary_adoption_pct()
    );
    println!(
        "The graded view shows only {:.1}% actually work end-to-end on IPv6.",
        counts.pct_of_connected(counts.full)
    );

    // 4. Popularity gradient (Fig 6 in the paper).
    let buckets = ReadinessBuckets::compute(&report, &[100, 1_000, 2_000]);
    println!("\nIPv6-full by popularity:");
    for b in &buckets.buckets {
        println!("  top {:>5}: {:.1}%", b.top_n, b.pct_full);
    }
}
