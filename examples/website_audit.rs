//! Website audit: the server-side pipeline for a single site — what an
//! operator would run to answer "is my site *actually* IPv6-ready, and if
//! not, which dependencies are holding it back?"
//!
//! ```sh
//! cargo run --release --example website_audit
//! ```

use ipv6view::core::classify::{classify_site, SiteClass};
use ipv6view::crawlsim::{crawl_epoch, CrawlConfig};
use ipv6view::prelude::{World, WorldConfig};
use std::collections::BTreeMap;

fn main() {
    let world = World::generate(&WorldConfig::small());
    let report = crawl_epoch(&world, world.latest_epoch(), &CrawlConfig::default());

    // Find an IPv6-partial site to audit (the paper's most interesting
    // class: started IPv6, dragged back by dependencies).
    let crawl = report
        .sites
        .iter()
        .find(|s| classify_site(s) == SiteClass::Partial)
        .expect("a partial site exists");
    let ok = crawl.outcome.as_ref().expect("partial implies loaded");

    println!("audit: {} (rank {})", crawl.domain, crawl.rank);
    println!("  main page: {}", ok.final_fqdn);
    println!(
        "  main page AAAA: {}   browser used: {}",
        ok.main_has_aaaa, ok.main_used
    );
    println!("  classification: {:?}\n", classify_site(crawl));

    // Per-dependency breakdown, grouped by eTLD+1.
    let mut by_domain: BTreeMap<String, (usize, usize, bool)> = BTreeMap::new();
    for r in &ok.resources {
        if !r.has_a && !r.has_aaaa {
            continue; // failed to load: excluded, like the paper
        }
        let etld1 = world
            .psl
            .etld_plus_one(&r.fqdn)
            .unwrap_or_else(|| r.fqdn.clone());
        let e = by_domain
            .entry(etld1.to_string())
            .or_insert((0, 0, r.first_party));
        e.0 += 1;
        if !r.has_aaaa {
            e.1 += 1;
        }
    }
    println!(
        "{:<34} {:>5} {:>8}  party",
        "dependency (eTLD+1)", "res", "v4-only"
    );
    for (domain, (total, v4only, first_party)) in &by_domain {
        let marker = if *v4only > 0 {
            "<-- blocks IPv6-full"
        } else {
            ""
        };
        println!(
            "{domain:<34} {total:>5} {v4only:>8}  {:<6} {marker}",
            if *first_party { "first" } else { "third" },
        );
    }

    let blockers: Vec<&String> = by_domain
        .iter()
        .filter(|(_, (_, v4, _))| *v4 > 0)
        .map(|(d, _)| d)
        .collect();
    println!(
        "\nverdict: {} of {} dependencies block IPv6-full status.",
        blockers.len(),
        by_domain.len()
    );
    println!(
        "fix list: {}",
        blockers
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
