//! Cloud report: the §5 pipeline — attribute every crawled FQDN to a cloud
//! org via BGP + AS2Org, identify services by CNAME chain, and print the
//! readiness/policy report a cloud provider's IPv6 team would want.
//!
//! ```sh
//! cargo run --release --example cloud_report
//! ```

use cloudmodel::catalog::ServiceCatalog;
use ipv6view::core::cloud::{
    default_groups, ease_adoption_correlation, hosted_fqdns, multicloud_tenant_count,
    org_readiness, pairwise_comparison, service_adoption,
};
use ipv6view::crawlsim::{crawl_epoch, CrawlConfig};
use ipv6view::prelude::{World, WorldConfig};

fn main() {
    let world = World::generate(&WorldConfig::small());
    let report = crawl_epoch(&world, world.latest_epoch(), &CrawlConfig::default());
    let fqdns = hosted_fqdns(&report, &world.rib, &world.registry);
    println!("{} unique FQDNs attributed to hosting orgs\n", fqdns.len());

    println!("-- per-organization readiness (Fig 11 / Table 3) --");
    for o in org_readiness(&fqdns).iter().take(10) {
        println!(
            "{:<42} {:>5} domains  v4-only {:>5.1}%  v6-full {:>5.1}%  v6-only {:>5.1}%",
            o.org,
            o.total,
            o.pct(o.v4_only),
            o.pct(o.v6_full),
            o.pct(o.v6_only)
        );
    }

    println!("\n-- service adoption via CNAME identification (Table 2) --");
    let services = service_adoption(&fqdns, &ServiceCatalog::paper());
    for s in &services {
        println!(
            "{:<12} {:<30} {:<22} {:>4}/{:<4} = {:>5.1}%",
            s.provider,
            s.service,
            s.policy.label(),
            s.ready,
            s.total,
            100.0 * s.adoption()
        );
    }
    if let Some(rho) = ease_adoption_correlation(&services) {
        println!("\nease-of-enabling ↔ adoption Spearman ρ = {rho:.2}");
        println!("(the paper's takeaway: default-on beats opt-in beats code-change)");
    }

    println!("\n-- multi-cloud tenants (Fig 12) --");
    let groups = default_groups();
    let tenants = multicloud_tenant_count(&fqdns, &world.psl, &groups);
    println!("{tenants} tenants span two or more clouds");
    let matrix = pairwise_comparison(&fqdns, &world.psl, &groups, 2);
    println!(
        "cloud ranking by pairwise wins: {}",
        matrix.groups.join(" > ")
    );
    for c in matrix.cells.iter().filter(|c| c.significant).take(8) {
        println!(
            "  {:<14} vs {:<14}  effect {:+.2} over {} shared tenants",
            c.a, c.b, c.effect, c.n
        );
    }
}
