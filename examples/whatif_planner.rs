//! What-if planner: the Fig 10 simulation as a planning tool — if you could
//! convince IPv4-only third-party domains to enable IPv6, which ones first,
//! and how far does each step move the web?
//!
//! Uses the library-first API: a [`Session`] owns the world and caches the
//! crawl, so the influence analysis here and any registered scenario run
//! afterwards share one crawl pass.
//!
//! ```sh
//! cargo run --release --example whatif_planner
//! ```

use ipv6view::core::influence::InfluenceReport;
use ipv6view::core::whatif::WhatIfCurve;
use ipv6view::prelude::{RunConfig, Session};

fn main() {
    let mut session = Session::new(RunConfig::default().sites(2_000).days(30));
    let psl = session.world.psl.clone();
    let influence = InfluenceReport::compute(session.latest_crawl(), &psl);
    let curve = WhatIfCurve::compute(&influence);

    println!(
        "{} IPv6-partial sites depend on {} IPv4-only domains\n",
        influence.sites.len(),
        influence.domains.len()
    );

    println!("priority list (descending span):");
    let mut cumulative_prev = 0usize;
    for (k, d) in influence.domains.iter().take(12).enumerate() {
        let cum = curve.became_full[k];
        println!(
            "  {:>2}. {:<30} span {:>5}  → +{:<4} sites become IPv6-full (cum {:.1}%)",
            k + 1,
            d.domain.to_string(),
            d.span,
            cum - cumulative_prev,
            100.0 * curve.fraction_after(k + 1)
        );
        cumulative_prev = cum;
    }

    println!("\nmilestones:");
    for target in [0.25, 0.5, 0.75, 1.0] {
        let k = (1..=curve.became_full.len())
            .find(|&k| curve.fraction_after(k) >= target)
            .unwrap_or(curve.became_full.len());
        println!(
            "  {:>4.0}% of partial sites fixed after {:>5} domains ({:.1}% of all IPv4-only domains)",
            100.0 * target,
            k,
            100.0 * k as f64 / influence.domains.len() as f64
        );
    }
    println!(
        "\n(the paper's point: a few hundred high-span domains give the first 25%,\n\
     but universal readiness needs the entire long tail)"
    );
}
