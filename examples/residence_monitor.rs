//! Residence monitor: the client-side pipeline end to end — synthesize a
//! residence's traffic, run it through the conntrack-style flow monitor,
//! anonymize with prefix-preserving CryptoPAN, and report the per-day IPv6
//! fractions the paper's Table 1 and Fig 1 are built from.
//!
//! ```sh
//! cargo run --release --example residence_monitor
//! ```

use ipv6view::core::client::analyze_residence;
use ipv6view::flowmon::{AnonymizingExporter, Scope};
use ipv6view::iputil::anon::{Anonymizer, AnonymizerConfig};
use ipv6view::prelude::{TrafficConfig, World, WorldConfig};
use ipv6view::trafficgen::{paper_residences, synthesize_residence};

fn main() {
    let world = World::generate(&WorldConfig::small());
    let profile = paper_residences().remove(0); // Residence A
    println!(
        "residence {}: {} residents, target IPv6 byte share {:.0}%",
        profile.key,
        profile.residents,
        100.0 * profile.target_ext_v6_bytes
    );

    let cfg = TrafficConfig {
        num_days: 60,
        scale: 1.0 / 500.0,
        ..TrafficConfig::default()
    };
    let ds = synthesize_residence(&world, profile, &cfg, 0);
    println!(
        "{} sampled flow records over {} days",
        ds.flows.len(),
        ds.num_days
    );

    // The privacy pipeline from the paper's appendix A: scramble the low 8
    // bits of IPv4 and the low /64 of IPv6, prefix-preserving, then rotate
    // into daily logs.
    let exporter = AnonymizingExporter::new(Anonymizer::new(
        *b"residence-a-key!",
        AnonymizerConfig::paper(),
    ));
    let logs = exporter.export(&ds.flows);
    println!("rotated into {} daily logs (anonymized)", logs.len());
    let sample = &logs[0].records[0];
    println!(
        "  e.g. day {}: {} -> {} ({} bytes) — low bits scrambled, prefix intact",
        logs[0].day,
        sample.key.src,
        sample.key.dst,
        sample.total_bytes()
    );

    // The analysis still works on anonymized data because CryptoPAN
    // preserves prefixes (AS attribution needs only the upper bits).
    let analysis = analyze_residence(&ds);
    println!(
        "\nexternal: {:.1} GB, IPv6 {:.1}% of bytes / {:.1}% of flows",
        analysis.external.total_gb,
        100.0 * analysis.external.v6_byte_fraction,
        100.0 * analysis.external.v6_flow_fraction
    );
    println!(
        "internal: {:.2} GB, IPv6 {:.1}% of bytes",
        analysis.internal.total_gb,
        100.0 * analysis.internal.v6_byte_fraction
    );
    println!(
        "daily IPv6 byte fraction: mean {:.3}, sd {:.3} (the paper's >15% variance)",
        analysis.external.daily_byte_mean, analysis.external.daily_byte_sd
    );

    // Show a week of the daily series.
    println!("\nfirst 14 days (external bytes):");
    for d in analysis.daily.iter().take(14) {
        if let Some(f) = d.ext_bytes {
            let bar = "#".repeat((f * 40.0) as usize);
            println!("  day {:>2}: {f:.3} {bar}", d.day);
        }
    }
    let _ = Scope::External; // silence unused import on some feature sets
}
