//! Per-figure regeneration benchmarks: each benchmark runs the pipeline
//! that produces one of the paper's tables/figures, at a reduced (1k-site /
//! 30-day) scale so a full `cargo bench` stays tractable. Together with the
//! `repro` binary (which prints the actual rows), this is the reproducibility
//! harness: `repro` gives the numbers, these benches give the cost.

use crawlsim::{crawl_epoch, CrawlConfig, CrawlReport};
use criterion::{criterion_group, criterion_main, Criterion};
use ipv6view_bench::bench_world;
use ipv6view_core::classify::ClassCounts;
use ipv6view_core::client::{analyze_residence, as_fractions};
use ipv6view_core::cloud::{
    default_groups, hosted_fqdns, org_readiness, pairwise_comparison, service_adoption,
};
use ipv6view_core::influence::{InfluenceReport, TypeHeatmap};
use ipv6view_core::readiness::ReadinessBuckets;
use ipv6view_core::whatif::WhatIfCurve;
use trafficgen::{synthesize_all, TrafficConfig};
use worldgen::World;

fn crawl(world: &World) -> CrawlReport {
    crawl_epoch(world, world.latest_epoch(), &CrawlConfig::default())
}

fn bench_world_generation(c: &mut Criterion) {
    c.bench_function("worldgen_1k_sites_3_epochs", |b| b.iter(bench_world));
}

fn bench_fig5_classification(c: &mut Criterion) {
    let world = bench_world();
    c.bench_function("fig5_crawl_and_classify_1k", |b| {
        b.iter(|| {
            let report = crawl(&world);
            ClassCounts::from_report(&report)
        })
    });
}

fn bench_fig6_readiness(c: &mut Criterion) {
    let world = bench_world();
    let report = crawl(&world);
    c.bench_function("fig6_rank_buckets", |b| {
        b.iter(|| ReadinessBuckets::compute(&report, &[100, 500, 1_000]))
    });
}

fn bench_fig7_8_influence(c: &mut Criterion) {
    let world = bench_world();
    let report = crawl(&world);
    c.bench_function("fig7_fig8_influence_analysis", |b| {
        b.iter(|| InfluenceReport::compute(&report, &world.psl))
    });
}

fn bench_fig10_whatif(c: &mut Criterion) {
    let world = bench_world();
    let report = crawl(&world);
    let inf = InfluenceReport::compute(&report, &world.psl);
    c.bench_function("fig10_whatif_curve", |b| {
        b.iter(|| WhatIfCurve::compute(&inf))
    });
}

fn bench_fig18_heatmap(c: &mut Criterion) {
    let world = bench_world();
    let report = crawl(&world);
    c.bench_function("fig18_type_heatmap", |b| {
        b.iter(|| TypeHeatmap::compute(&report, &world.psl, 20))
    });
}

fn bench_fig11_12_cloud(c: &mut Criterion) {
    let world = bench_world();
    let report = crawl(&world);
    c.bench_function("fig11_cloud_attribution", |b| {
        b.iter(|| {
            let fqdns = hosted_fqdns(&report, &world.rib, &world.registry);
            org_readiness(&fqdns).len()
        })
    });
    let fqdns = hosted_fqdns(&report, &world.rib, &world.registry);
    let groups = default_groups();
    c.bench_function("fig12_pairwise_wilcoxon", |b| {
        b.iter(|| pairwise_comparison(&fqdns, &world.psl, &groups, 2))
    });
    let catalog = cloudmodel::catalog::ServiceCatalog::paper();
    c.bench_function("table2_service_identification", |b| {
        b.iter(|| service_adoption(&fqdns, &catalog))
    });
}

fn bench_table1_client(c: &mut Criterion) {
    let world = bench_world();
    let cfg = TrafficConfig {
        num_days: 30,
        scale: 1.0 / 2_000.0,
        ..TrafficConfig::default()
    };
    c.bench_function("table1_traffic_synthesis_30d", |b| {
        b.iter(|| synthesize_all(&world, &cfg).len())
    });
    let datasets = synthesize_all(&world, &cfg);
    c.bench_function("table1_analysis", |b| {
        b.iter(|| {
            datasets
                .iter()
                .map(analyze_residence)
                .map(|a| a.external.v6_byte_fraction)
                .sum::<f64>()
        })
    });
    c.bench_function("fig3_fig4_as_attribution", |b| {
        b.iter(|| as_fractions(&datasets, &world.rib, &world.registry, 0.0001).len())
    });
}

fn bench_fig2_mstl(c: &mut Criterion) {
    let series = ipv6view_bench::bench_series(24 * 31);
    c.bench_function("fig2_mstl_one_month_hourly", |b| {
        b.iter(|| {
            mstl::mstl_decompose(&series, &mstl::MstlConfig::new(vec![24, 168]))
                .expect("decomposes")
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_world_generation,
    bench_fig5_classification,
    bench_fig6_readiness,
    bench_fig7_8_influence,
    bench_fig10_whatif,
    bench_fig18_heatmap,
    bench_fig11_12_cloud,
    bench_table1_client,
    bench_fig2_mstl
);
criterion_main!(figures);
