//! Benchmarks of the streaming flow pipeline: whole-residence synthesis
//! into a collecting vs an aggregating sink (the refactor's memory/speed
//! trade), raw sink push throughput, and the provider-shared CGN replay.
//! Recorded in `BENCH_traffic.json` (flows/sec derived from the per-
//! iteration flow counts printed by the JSON notes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flowmon::sink::{CollectSink, FlowStatsAgg, NullSink, TranslationAgg};
use flowmon::{FlowKey, FlowRecord, FlowSink, Scope, ScopeFamilyAgg, TranslationMap};
use ipv6view_bench::bench_world;
use trafficgen::{
    isp_cohort, paper_residences, synthesize_isp, synthesize_residence_into, TrafficConfig,
};
use transition::provider::ProviderGateway;
use transition::GatewayConfig;

fn bench_cfg() -> TrafficConfig {
    TrafficConfig {
        num_days: 5,
        scale: 1.0 / 200.0,
        threads: 1,
        day_threads: 1,
        ..TrafficConfig::default()
    }
}

fn bench_synthesis(c: &mut Criterion) {
    let world = bench_world();
    let profile = paper_residences().remove(0);
    let cfg = bench_cfg();
    // ~5 days of residence A at 1/200 sampling per iteration.
    c.bench_function("synthesize_residence_5d_collect_sink", |b| {
        b.iter(|| {
            let mut sink = CollectSink::new();
            synthesize_residence_into(&world, profile.clone(), &cfg, 0, &mut sink);
            black_box(sink.records.len())
        })
    });
    c.bench_function("synthesize_residence_5d_aggregate_sinks", |b| {
        b.iter(|| {
            let mut sink = (ScopeFamilyAgg::new(cfg.num_days), FlowStatsAgg::new());
            synthesize_residence_into(&world, profile.clone(), &cfg, 0, &mut sink);
            black_box(sink.0.overall(Scope::External).total_flows())
        })
    });
}

/// A deterministic pre-built record stream (no synthesis cost) for raw
/// sink-throughput measurement.
fn prebuilt_records(n: usize) -> Vec<FlowRecord> {
    let prefix: transition::Nat64Prefix = transition::Nat64Prefix::well_known();
    (0..n)
        .map(|i| {
            let v6 = i % 3 != 0;
            let translated = i % 5 == 0;
            let (src, dst) = if v6 {
                (
                    "2001:db8:100::5".parse().unwrap(),
                    if translated {
                        std::net::IpAddr::V6(
                            prefix.embed(std::net::Ipv4Addr::from(0xc633_6400 + (i as u32 & 0xff))),
                        )
                    } else {
                        "2600::1".parse().unwrap()
                    },
                )
            } else {
                (
                    "192.168.1.5".parse().unwrap(),
                    "203.0.113.9".parse().unwrap(),
                )
            };
            FlowRecord {
                key: FlowKey::tcp(src, 1024 + (i as u16 % 50_000), dst, 443),
                start: i as u64 * 1_000,
                end: i as u64 * 1_000 + 500_000,
                bytes_orig: 500 + (i as u64 % 9_000),
                bytes_reply: 5_000 + (i as u64 % 90_000),
                packets_orig: 4,
                packets_reply: 40,
                scope: if i % 11 == 0 {
                    Scope::Internal
                } else {
                    Scope::External
                },
            }
        })
        .collect()
}

fn bench_sink_push(c: &mut Criterion) {
    let records = prebuilt_records(100_000);
    c.bench_function("sink_push_100k_collect", |b| {
        b.iter(|| {
            let mut sink = CollectSink::new();
            for r in &records {
                sink.accept(black_box(r));
            }
            sink.records.len()
        })
    });
    c.bench_function("sink_push_100k_scope_family_agg", |b| {
        b.iter(|| {
            let mut sink = ScopeFamilyAgg::new(30);
            for r in &records {
                sink.accept(black_box(r));
            }
            sink.overall(Scope::External).total_flows()
        })
    });
    c.bench_function("sink_push_100k_translation_agg", |b| {
        b.iter(|| {
            let mut map = TranslationMap::new();
            map.add_nat64_prefix("64:ff9b::/96".parse().unwrap());
            let mut sink = TranslationAgg::new(map);
            for r in &records {
                sink.accept(black_box(r));
            }
            sink.total_flows()
        })
    });
}

fn bench_provider(c: &mut Criterion) {
    let world = bench_world();
    let profiles = isp_cohort(4);
    let cfg = TrafficConfig {
        num_days: 3,
        scale: 1.0 / 200.0,
        threads: 1,
        ..TrafficConfig::default()
    };
    // Full provider pipeline: 4 subscribers × 3 days of demand generation
    // plus the sequential shared-gateway replay, per iteration.
    c.bench_function("provider_isp_4subs_3d_shared_gateway", |b| {
        b.iter(|| {
            let mut gateway = ProviderGateway::new(
                world.transition.nat64_prefix,
                GatewayConfig {
                    capacity: 1024,
                    binding_timeout: 1_800 * 1_000_000,
                },
            );
            let mut sinks: Vec<NullSink> = vec![NullSink::default(); profiles.len()];
            synthesize_isp(&world, &profiles, &cfg, &mut gateway, &mut sinks);
            black_box(gateway.stats().granted)
        })
    });
}

criterion_group!(benches, bench_synthesis, bench_sink_push, bench_provider);
criterion_main!(benches);
