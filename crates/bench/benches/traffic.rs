//! Benchmarks of the streaming flow pipeline: whole-residence synthesis
//! into a collecting vs an aggregating sink (the refactor's memory/speed
//! trade), raw sink push throughput, and the provider-shared CGN replay.
//! Recorded in `BENCH_traffic.json` (flows/sec derived from the per-
//! iteration flow counts printed by the JSON notes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flowmon::sink::{CollectSink, FlowStatsAgg, NullSink, ScopeCell, TranslationAgg};
use flowmon::{FlowKey, FlowRecord, FlowSink, Scope, ScopeFamilyAgg, TranslationMap};
use ipv6view_bench::bench_world;
use ipv6view_core::client::AsAgg;
use std::collections::HashMap;
use trafficgen::{
    isp_cohort, paper_residences, synthesize_isp, synthesize_long_tail_into,
    synthesize_residence_into, LongTailTrafficConfig, TrafficConfig,
};
use transition::provider::ProviderGateway;
use transition::GatewayConfig;
use worldgen::{World, WorldConfig};

fn bench_cfg() -> TrafficConfig {
    TrafficConfig {
        num_days: 5,
        scale: 1.0 / 200.0,
        threads: 1,
        day_threads: 1,
        ..TrafficConfig::default()
    }
}

fn bench_synthesis(c: &mut Criterion) {
    let world = bench_world();
    let profile = paper_residences().remove(0);
    let cfg = bench_cfg();
    // ~5 days of residence A at 1/200 sampling per iteration.
    c.bench_function("synthesize_residence_5d_collect_sink", |b| {
        b.iter(|| {
            let mut sink = CollectSink::new();
            synthesize_residence_into(&world, profile.clone(), &cfg, 0, &mut sink);
            black_box(sink.records.len())
        })
    });
    c.bench_function("synthesize_residence_5d_aggregate_sinks", |b| {
        b.iter(|| {
            let mut sink = (ScopeFamilyAgg::new(cfg.num_days), FlowStatsAgg::new());
            synthesize_residence_into(&world, profile.clone(), &cfg, 0, &mut sink);
            black_box(sink.0.overall(Scope::External).total_flows())
        })
    });
}

/// A deterministic pre-built record stream (no synthesis cost) for raw
/// sink-throughput measurement.
fn prebuilt_records(n: usize) -> Vec<FlowRecord> {
    let prefix: transition::Nat64Prefix = transition::Nat64Prefix::well_known();
    (0..n)
        .map(|i| {
            let v6 = i % 3 != 0;
            let translated = i % 5 == 0;
            let (src, dst) = if v6 {
                (
                    "2001:db8:100::5".parse().unwrap(),
                    if translated {
                        std::net::IpAddr::V6(
                            prefix.embed(std::net::Ipv4Addr::from(0xc633_6400 + (i as u32 & 0xff))),
                        )
                    } else {
                        "2600::1".parse().unwrap()
                    },
                )
            } else {
                (
                    "192.168.1.5".parse().unwrap(),
                    "203.0.113.9".parse().unwrap(),
                )
            };
            FlowRecord {
                key: FlowKey::tcp(src, 1024 + (i as u16 % 50_000), dst, 443),
                start: i as u64 * 1_000,
                end: i as u64 * 1_000 + 500_000,
                bytes_orig: 500 + (i as u64 % 9_000),
                bytes_reply: 5_000 + (i as u64 % 90_000),
                packets_orig: 4,
                packets_reply: 40,
                scope: if i % 11 == 0 {
                    Scope::Internal
                } else {
                    Scope::External
                },
            }
        })
        .collect()
}

fn bench_sink_push(c: &mut Criterion) {
    let records = prebuilt_records(100_000);
    c.bench_function("sink_push_100k_collect", |b| {
        b.iter(|| {
            let mut sink = CollectSink::new();
            for r in &records {
                sink.accept(black_box(r));
            }
            sink.records.len()
        })
    });
    c.bench_function("sink_push_100k_scope_family_agg", |b| {
        b.iter(|| {
            let mut sink = ScopeFamilyAgg::new(30);
            for r in &records {
                sink.accept(black_box(r));
            }
            sink.overall(Scope::External).total_flows()
        })
    });
    c.bench_function("sink_push_100k_translation_agg", |b| {
        b.iter(|| {
            let mut map = TranslationMap::new();
            map.add_nat64_prefix("64:ff9b::/96".parse().unwrap());
            let mut sink = TranslationAgg::new(map);
            for r in &records {
                sink.accept(black_box(r));
            }
            sink.total_flows()
        })
    });
}

fn bench_provider(c: &mut Criterion) {
    let world = bench_world();
    let profiles = isp_cohort(4);
    let cfg = TrafficConfig {
        num_days: 3,
        scale: 1.0 / 200.0,
        threads: 1,
        ..TrafficConfig::default()
    };
    // Full provider pipeline: 4 subscribers × 3 days of demand generation
    // plus the sequential shared-gateway replay, per iteration.
    c.bench_function("provider_isp_4subs_3d_shared_gateway", |b| {
        b.iter(|| {
            let mut gateway = ProviderGateway::new(
                world.transition.nat64_prefix,
                GatewayConfig {
                    capacity: 1024,
                    binding_timeout: 1_800 * 1_000_000,
                },
            );
            let mut sinks: Vec<NullSink> = vec![NullSink::default(); profiles.len()];
            synthesize_isp(&world, &profiles, &cfg, &mut gateway, &mut sinks);
            black_box(gateway.stats().granted)
        })
    });
}

/// Per-AS aggregation at routing-table scale: 200k prebuilt records over a
/// 100k-AS long-tail RIB, attributed via LPM into (a) the historical
/// `HashMap<AsId, ScopeCell>` and (b) the interned dense `SymVec` path of
/// [`AsAgg`]. The LPM cost is identical in both, so the delta is the map.
/// A third row attributes through the compiled (frozen multibit) engine —
/// same `AsAgg`, so its delta against `_interned_symvec` is the LPM engine.
fn bench_per_as_agg(c: &mut Criterion) {
    let mut world = World::generate(
        &WorldConfig {
            num_sites: 200,
            ..WorldConfig::small()
        }
        .with_long_tail(100_000),
    );
    // The two historical rows predate the compiled engine: thaw the RIB so
    // their numbers keep measuring the radix trie, and keep a compiled
    // clone for the `_frozen_multibit` row.
    let compiled_rib = world.rib.clone();
    world.rib.thaw();
    let mut sink = CollectSink::new();
    synthesize_long_tail_into(
        &world,
        &LongTailTrafficConfig {
            num_days: 1,
            flows_per_day: 200_000,
            threads: 1,
            ..LongTailTrafficConfig::default()
        },
        &mut sink,
    );
    let records = sink.into_records();
    c.bench_function("per_as_agg_200k_flows_100k_ases_hashmap_baseline", |b| {
        b.iter(|| {
            // The pre-interning AsAgg, verbatim: sparse AsId keys hashed
            // per record.
            let mut per_as: HashMap<bgpsim::AsId, ScopeCell> = HashMap::new();
            let mut total = 0u64;
            for r in &records {
                let Some(asn) = world.rib.origin_of(black_box(r).key.dst) else {
                    continue;
                };
                per_as.entry(asn).or_default().add(r);
                total += r.total_bytes();
            }
            black_box((per_as.len(), total))
        })
    });
    c.bench_function("per_as_agg_200k_flows_100k_ases_interned_symvec", |b| {
        b.iter(|| {
            let mut agg = AsAgg::new(&world.rib, &world.registry);
            for r in &records {
                agg.accept(black_box(r));
            }
            black_box((agg.observed_as_count(), agg.total_bytes()))
        })
    });
    c.bench_function("per_as_agg_200k_flows_100k_ases_frozen_multibit", |b| {
        b.iter(|| {
            let mut agg = AsAgg::new(&compiled_rib, &world.registry);
            // Hour-run-sized batches, like the streaming pipeline delivers:
            // attribution goes through `origins_of` and the frozen engine's
            // interleaved-prefetch walks instead of per-record walks.
            for chunk in records.chunks(8_192) {
                agg.accept_batch(black_box(chunk));
            }
            black_box((agg.observed_as_count(), agg.total_bytes()))
        })
    });
    // Map-only variants: origins pre-resolved, isolating the per-AS cell
    // structure the interning refactor actually replaced.
    let origins: Vec<bgpsim::AsId> = records
        .iter()
        .map(|r| {
            world
                .rib
                .origin_of(r.key.dst)
                .expect("tail is attributable")
        })
        .collect();
    c.bench_function("per_as_cells_200k_flows_100k_ases_hashmap", |b| {
        b.iter(|| {
            let mut per_as: HashMap<bgpsim::AsId, ScopeCell> = HashMap::new();
            for (r, asn) in records.iter().zip(&origins) {
                per_as.entry(*asn).or_default().add(black_box(r));
            }
            black_box(per_as.len())
        })
    });
    c.bench_function("per_as_cells_200k_flows_100k_ases_symvec", |b| {
        let registry = &world.registry;
        b.iter(|| {
            let mut cells: iputil::sym::SymVec<ScopeCell> =
                iputil::sym::SymVec::with_capacity(registry.as_count());
            for (r, asn) in records.iter().zip(&origins) {
                let sym = registry.as_sym(*asn).expect("registered");
                cells.get_mut_or_default(sym).add(black_box(r));
            }
            black_box(cells.len())
        })
    });
}

criterion_group!(
    benches,
    bench_synthesis,
    bench_sink_push,
    bench_provider,
    bench_per_as_agg
);
criterion_main!(benches);
