//! Benchmarks of the transition-technology hot paths: RFC 6052
//! embed/extract (once per translated packet-pair in a real gateway, once
//! per flow here), the NAT64 binding table under churn, DNS64 synthesis
//! (once per AAAA query at an IPv6-only residence) and router-side
//! translation classification. Recorded in `BENCH_transition.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dnssim::{Name, Resolver, ZoneDb};
use iputil::Family;
use std::net::Ipv4Addr;
use transition::{Dns64, GatewayConfig, Nat64Gateway, Nat64Prefix};

fn bench_rfc6052(c: &mut Criterion) {
    let p = Nat64Prefix::well_known();
    let specific = Nat64Prefix::new("2001:db8:122::/48".parse().unwrap()).unwrap();
    let v4: Ipv4Addr = "203.0.113.77".parse().unwrap();
    c.bench_function("rfc6052_embed_extract_wellknown_96", |b| {
        b.iter(|| {
            let v6 = p.embed(black_box(v4));
            p.extract(black_box(v6))
        })
    });
    c.bench_function("rfc6052_embed_extract_specific_48", |b| {
        b.iter(|| {
            let v6 = specific.embed(black_box(v4));
            specific.extract(black_box(v6))
        })
    });
}

fn bench_nat64_gateway(c: &mut Criterion) {
    // 1k translations per iteration against a pool that never exhausts:
    // the grant fast path (heap push + lazy expiry).
    c.bench_function("nat64_translate_1k_flows", |b| {
        b.iter(|| {
            let mut gw = Nat64Gateway::new(
                Nat64Prefix::well_known(),
                GatewayConfig {
                    capacity: 4096,
                    binding_timeout: 120_000_000,
                },
            );
            let mut granted = 0u32;
            for i in 0..1_000u64 {
                let dst = Ipv4Addr::from(0xc633_6400 + (i as u32 & 0xff));
                if gw
                    .translate(black_box(dst), i * 1_000, i * 1_000 + 500)
                    .is_ok()
                {
                    granted += 1;
                }
            }
            granted
        })
    });
    // Same load on an 64-binding pool: the exhaustion path (reject + expiry
    // scanning) that the exhaustion experiment leans on.
    c.bench_function("nat64_translate_1k_flows_exhausted_pool", |b| {
        b.iter(|| {
            let mut gw = Nat64Gateway::new(
                Nat64Prefix::well_known(),
                GatewayConfig {
                    capacity: 64,
                    binding_timeout: 3_600_000_000,
                },
            );
            let mut granted = 0u32;
            for i in 0..1_000u64 {
                let dst = Ipv4Addr::from(0xc633_6400 + (i as u32 & 0xff));
                if gw
                    .translate(black_box(dst), i * 1_000, i * 1_000 + 500)
                    .is_ok()
                {
                    granted += 1;
                }
            }
            granted
        })
    });
}

fn bench_dns64(c: &mut Criterion) {
    let mut db = ZoneDb::new();
    for i in 0..64u32 {
        let name = Name::new(&format!("svc{i}.test"));
        db.add_a(name.clone(), Ipv4Addr::from(0xc633_6400 + i));
        if i % 2 == 0 {
            db.add_aaaa(name, format!("2001:db8::{i:x}").parse().unwrap());
        }
    }
    let names: Vec<Name> = (0..64u32)
        .map(|i| Name::new(&format!("svc{i}.test")))
        .collect();
    let dns64 = Dns64::new(Resolver::new(&db), Nat64Prefix::well_known());
    // Half the names synthesize, half pass native AAAA through — the mix an
    // IPv6-only residence's resolver sees.
    c.bench_function("dns64_resolve_64_names_half_synth", |b| {
        b.iter(|| {
            let mut addrs = 0usize;
            for name in &names {
                addrs += dns64
                    .resolve_addrs_traced(black_box(name), Family::V6)
                    .0
                    .addresses()
                    .len();
            }
            addrs
        })
    });
}

fn bench_classification(c: &mut Criterion) {
    use flowmon::{FlowKey, Scope, TranslationMap};
    let mut map = TranslationMap::new();
    map.add_nat64_prefix("64:ff9b::/96".parse().unwrap());
    let prefix = Nat64Prefix::well_known();
    let keys: Vec<FlowKey> = (0..1_000u32)
        .map(|i| {
            let dst = if i % 3 == 0 {
                std::net::IpAddr::V6(prefix.embed(Ipv4Addr::from(0xc633_6400 + i)))
            } else {
                format!("2600::{:x}", i + 1).parse().unwrap()
            };
            FlowKey::tcp(
                format!("2001:db8::{:x}", i + 1).parse().unwrap(),
                40000,
                dst,
                443,
            )
        })
        .collect();
    c.bench_function("translation_classify_1k_flows", |b| {
        b.iter(|| {
            keys.iter()
                .filter(|k| map.classify(k, Scope::External) != flowmon::Translation::Native)
                .count()
        })
    });
}

criterion_group!(
    benches,
    bench_rfc6052,
    bench_nat64_gateway,
    bench_dns64,
    bench_classification
);
criterion_main!(benches);
