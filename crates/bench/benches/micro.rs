//! Micro-benchmarks of the suite's hot paths: LPM lookups (one per FQDN in
//! cloud attribution), the anonymizer (one per exported flow), LOESS/MSTL,
//! the Wilcoxon test, Happy Eyeballs racing and flow-table churn.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipv6view_bench::bench_series;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_lpm(c: &mut Criterion) {
    use iputil::trie::{Lpm4, Lpm6};
    let mut rng = SmallRng::seed_from_u64(1);
    let mut table: Lpm4<u32> = Lpm4::new();
    for i in 0..50_000u32 {
        let bits: u32 = rng.gen();
        let len = rng.gen_range(8..=24);
        table.insert(
            iputil::prefix::Prefix4::new(std::net::Ipv4Addr::from(bits), len),
            i,
        );
    }
    let addrs: Vec<std::net::Ipv4Addr> = (0..1_000)
        .map(|_| std::net::Ipv4Addr::from(rng.gen::<u32>()))
        .collect();
    c.bench_function("lpm4_longest_match_50k_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &a in &addrs {
                if table.longest_match(black_box(a)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    let frozen4 = table.freeze();
    c.bench_function("lpm4_frozen_longest_match_50k_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &a in &addrs {
                if frozen4.longest_match(black_box(a)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    // IPv6: the attribution hot path. Prefix lengths follow the routed-table
    // shape (/32-ish allocations down to /48 customer cut-outs), addresses
    // are half table-covered, half random misses — like FQDN attribution
    // where some addresses fall outside the simulated RIB.
    let mut rng = SmallRng::seed_from_u64(2);
    let mut table6: Lpm6<u32> = Lpm6::new();
    let mut covered: Vec<u128> = Vec::new();
    for i in 0..50_000u32 {
        let bits: u128 = (rng.gen::<u32>() as u128) << 96 | (rng.gen::<u32>() as u128) << 64;
        let len = rng.gen_range(20..=48);
        covered.push(bits);
        table6.insert(
            iputil::prefix::Prefix6::new(std::net::Ipv6Addr::from(bits), len),
            i,
        );
    }
    let addrs6: Vec<std::net::Ipv6Addr> = (0..1_000)
        .map(|i| {
            if i % 2 == 0 {
                let base = covered[rng.gen_range(0..covered.len())];
                std::net::Ipv6Addr::from(base | rng.gen::<u64>() as u128)
            } else {
                std::net::Ipv6Addr::from(
                    (rng.gen::<u32>() as u128) << 96 | rng.gen::<u64>() as u128,
                )
            }
        })
        .collect();
    c.bench_function("lpm6_longest_match_50k_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &a in &addrs6 {
                if table6.longest_match(black_box(a)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    let frozen6 = table6.freeze();
    c.bench_function("lpm6_frozen_longest_match_50k_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &a in &addrs6 {
                if frozen6.longest_match(black_box(a)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    // Batched attribution workload: heavy duplication (every CDN edge
    // address is resolved by many FQDNs), answered through the memoized
    // batch entry point.
    let batch: Vec<std::net::Ipv6Addr> = (0..4_000).map(|_| addrs6[rng.gen_range(0..64)]).collect();
    c.bench_function("lpm6_longest_match_many_4k_dup_addrs", |b| {
        b.iter(|| {
            table6
                .longest_match_many(black_box(&batch))
                .iter()
                .filter(|r| r.is_some())
                .count()
        })
    });
    c.bench_function("lpm6_longest_match_loop_4k_dup_addrs", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &a in &batch {
                if table6.longest_match(black_box(a)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    // The regression risk the memo carries: a duplicate-*poor* batch
    // (long-tail attribution) where every probe misses. The bypass must keep
    // `_many` at loop speed for the trie and let the frozen engine's
    // interleaved prefetch walks win outright.
    let unique: Vec<std::net::Ipv6Addr> = (0..4_000)
        .map(|i| {
            let base = covered[(i * 13) % covered.len()];
            std::net::Ipv6Addr::from(base | rng.gen::<u64>() as u128)
        })
        .collect();
    c.bench_function("lpm6_longest_match_many_4k_unique_addrs", |b| {
        b.iter(|| {
            table6
                .longest_match_many(black_box(&unique))
                .iter()
                .filter(|r| r.is_some())
                .count()
        })
    });
    c.bench_function("lpm6_frozen_longest_match_many_4k_unique_addrs", |b| {
        b.iter(|| {
            frozen6
                .longest_match_many(black_box(&unique))
                .iter()
                .filter(|r| r.is_some())
                .count()
        })
    });
    c.bench_function("lpm6_frozen_longest_match_many_4k_dup_addrs", |b| {
        b.iter(|| {
            frozen6
                .longest_match_many(black_box(&batch))
                .iter()
                .filter(|r| r.is_some())
                .count()
        })
    });
}

fn bench_anonymizer(c: &mut Criterion) {
    use iputil::anon::{Anonymizer, AnonymizerConfig};
    let anon = Anonymizer::new(*b"benchmark-key-00", AnonymizerConfig::paper());
    let full = Anonymizer::new(*b"benchmark-key-00", AnonymizerConfig::full());
    let v4: std::net::Ipv4Addr = "203.0.113.7".parse().unwrap();
    let v6: std::net::Ipv6Addr = "2001:db8::1234".parse().unwrap();
    c.bench_function("anon_v4_paper_config", |b| {
        b.iter(|| anon.anon_v4(black_box(v4)))
    });
    c.bench_function("anon_v6_paper_config", |b| {
        b.iter(|| anon.anon_v6(black_box(v6)))
    });
    c.bench_function("anon_v4_full_cryptopan", |b| {
        b.iter(|| full.anon_v4(black_box(v4)))
    });
}

fn bench_siphash(c: &mut Criterion) {
    use iputil::hash::SipHasher24;
    let h = SipHasher24::new(1, 2);
    let data = [0u8; 64];
    c.bench_function("siphash24_64_bytes", |b| {
        b.iter(|| h.hash(black_box(&data)))
    });
}

fn bench_mstl(c: &mut Criterion) {
    let series = bench_series(24 * 7 * 4); // four weeks hourly
    c.bench_function("mstl_hourly_4_weeks", |b| {
        b.iter(|| {
            mstl::mstl_decompose(black_box(&series), &mstl::MstlConfig::new(vec![24, 168]))
                .expect("decomposes")
        })
    });
    c.bench_function("loess_672_points_span21", |b| {
        b.iter(|| {
            mstl::loess::loess_smooth(black_box(&series), mstl::LoessConfig::new(21, 1), None)
        })
    });
}

fn bench_wilcoxon(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let xs: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
    let ys: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
    c.bench_function("wilcoxon_signed_rank_n500", |b| {
        b.iter(|| netstats::wilcoxon_signed_rank(black_box(&xs), black_box(&ys)))
    });
    let small: Vec<f64> = (0..20).map(|i| i as f64 + 0.5).collect();
    let small2: Vec<f64> = (0..20).map(|i| i as f64 * 1.1).collect();
    c.bench_function("wilcoxon_exact_n20", |b| {
        b.iter(|| netstats::wilcoxon_signed_rank(black_box(&small), black_box(&small2)))
    });
}

fn bench_happy_eyeballs(c: &mut Criterion) {
    use dnssim::{Resolver, ZoneDb};
    use happyeyeballs::HappyEyeballs;
    use netsim::Network;
    let mut db = ZoneDb::new();
    db.add_a("bench.test".into(), "192.0.2.1".parse().unwrap());
    db.add_aaaa("bench.test".into(), "2001:db8::1".parse().unwrap());
    let net = Network::dual_stack_ms(30);
    let he = HappyEyeballs::default();
    c.bench_function("happy_eyeballs_race_dual_stack", |b| {
        let resolver = Resolver::new(&db);
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| he.connect(&net, &resolver, &mut rng, &"bench.test".into(), 0))
    });
}

fn bench_flow_table(c: &mut Criterion) {
    use flowmon::{Direction, FlowKey, FlowTable, Scope};
    c.bench_function("flow_table_new_packet_destroy", |b| {
        b.iter(|| {
            let mut t = FlowTable::new();
            for i in 0..1_000u16 {
                let key = FlowKey::tcp(
                    "192.168.1.10".parse().unwrap(),
                    i,
                    "203.0.113.1".parse().unwrap(),
                    443,
                );
                t.on_new(key, 0, Scope::External);
                t.on_packet(&key, 1, Direction::Original, 1500);
                t.on_packet(&key, 2, Direction::Reply, 1500);
                t.on_destroy(&key, 3);
            }
            t.drain().len()
        })
    });
}

fn bench_psl(c: &mut Criterion) {
    use webmodel::psl::Psl;
    let psl = Psl::builtin();
    let names: Vec<dnssim::Name> = [
        "www.example.com",
        "a.b.c.example.co.uk",
        "cdn.site.netvision.net.il",
        "x.y.z.unknowntld",
    ]
    .iter()
    .map(|s| dnssim::Name::new(s))
    .collect();
    c.bench_function("psl_etld_plus_one_4_names", |b| {
        b.iter(|| {
            names
                .iter()
                .filter_map(|n| psl.etld_plus_one(black_box(n)))
                .count()
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(40);
    targets = bench_lpm,
    bench_anonymizer,
    bench_siphash,
    bench_mstl,
    bench_wilcoxon,
    bench_happy_eyeballs,
    bench_flow_table,
    bench_psl
);
criterion_main!(micro);
