//! Shared helpers for the ipv6view benchmarks: small pre-built worlds and
//! inputs reused across benchmark groups so criterion timings measure the
//! algorithm, not world generation.

#![forbid(unsafe_code)]

use worldgen::{World, WorldConfig};

/// A small benchmark world (1k sites) — enough structure for every pipeline.
pub fn bench_world() -> World {
    World::generate(&WorldConfig {
        num_sites: 1_000,
        ..WorldConfig::small()
    })
}

/// A deterministic hourly IPv6-fraction series with daily + weekly structure.
pub fn bench_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let tf = t as f64;
            0.6 + 0.2 * (tf * std::f64::consts::TAU / 24.0).sin()
                + 0.05 * (tf * std::f64::consts::TAU / 168.0).cos()
                + 0.02 * ((t * 2654435761) % 97) as f64 / 97.0
        })
        .collect()
}
