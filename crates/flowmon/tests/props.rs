//! Property tests for the flow monitor: byte conservation, export
//! invariance, scoping.

use flowmon::{
    AnonymizingExporter, Direction, FlowKey, FlowRecord, FlowTable, RouterMonitor, Scope,
};
use iputil::anon::{Anonymizer, AnonymizerConfig};
use proptest::prelude::*;
use std::net::IpAddr;

fn arb_packets() -> impl Strategy<Value = Vec<(u16, bool, u32)>> {
    // (flow port, direction, bytes)
    proptest::collection::vec((1024u16..1034, any::<bool>(), 1u32..100_000), 1..200)
}

fn key(port: u16) -> FlowKey {
    FlowKey::tcp(
        "192.168.1.2".parse().unwrap(),
        port,
        "203.0.113.9".parse().unwrap(),
        443,
    )
}

proptest! {
    /// Total bytes in == total bytes out: the flow table conserves bytes
    /// through NEW/packet/DESTROY regardless of interleaving.
    #[test]
    fn byte_conservation(packets in arb_packets()) {
        let mut table = FlowTable::new();
        let mut expected: u64 = 0;
        for (i, (port, dir, bytes)) in packets.iter().enumerate() {
            table.on_new(key(*port), i as u64, Scope::External); // idempotent
            let dir = if *dir { Direction::Original } else { Direction::Reply };
            table.on_packet(&key(*port), i as u64, dir, *bytes as u64);
            expected += *bytes as u64;
        }
        for port in 1024u16..1034 {
            table.on_destroy(&key(port), 10_000);
        }
        let total: u64 = table.drain().iter().map(FlowRecord::total_bytes).sum();
        prop_assert_eq!(total, expected);
    }

    /// Anonymized export preserves counts, bytes, timestamps and scope; it
    /// changes only addresses, prefix-preservingly.
    #[test]
    fn export_invariants(flows in proptest::collection::vec((1u16..9999, 1u64..1_000_000, 1u64..500_000), 1..60)) {
        let records: Vec<FlowRecord> = flows
            .iter()
            .map(|(port, end, bytes)| FlowRecord {
                key: key(*port),
                start: end.saturating_sub(100),
                end: *end,
                bytes_orig: *bytes,
                bytes_reply: bytes * 3,
                packets_orig: 2,
                packets_reply: 4,
                scope: Scope::External,
            })
            .collect();
        let exporter = AnonymizingExporter::new(Anonymizer::new(
            *b"prop-test-key-00",
            AnonymizerConfig::paper(),
        ));
        let logs = exporter.export(&records);
        let exported: Vec<FlowRecord> = logs.into_iter().flat_map(|l| l.records).collect();
        prop_assert_eq!(exported.len(), records.len());
        let sum = |rs: &[FlowRecord]| rs.iter().map(FlowRecord::total_bytes).sum::<u64>();
        prop_assert_eq!(sum(&exported), sum(&records));
        // Daily logs are ordered and each record is in its own day.
        for r in &exported {
            // Paper config: /24 and /64 kept — same src for all (same host).
            if let IpAddr::V4(a) = r.key.src {
                prop_assert_eq!(a.octets()[..3].to_vec(), vec![192, 168, 1]);
            }
        }
    }

    /// Router scoping: a flow is Internal iff both endpoints are in the LAN.
    #[test]
    fn scoping_is_conjunction(a_lan in any::<bool>(), b_lan in any::<bool>(), host in 1u8..250) {
        let router = RouterMonitor::new(
            vec!["192.168.1.0/24".parse().unwrap()],
            vec!["2001:db8:1::/64".parse().unwrap()],
        );
        let lan: IpAddr = format!("192.168.1.{host}").parse().unwrap();
        let wan: IpAddr = format!("203.0.113.{host}").parse().unwrap();
        let src = if a_lan { lan } else { wan };
        let dst = if b_lan { lan } else { wan };
        let expected = if a_lan && b_lan { Scope::Internal } else { Scope::External };
        prop_assert_eq!(router.scope_of(src, dst), expected);
    }

    /// Idle eviction emits exactly the idle flows, and drained records end
    /// at their last activity.
    #[test]
    fn eviction_partitions_flows(idle_ports in proptest::collection::btree_set(1024u16..1040, 1..8)) {
        let mut table = FlowTable::new();
        for port in 1024u16..1040 {
            table.on_new(key(port), 0, Scope::External);
            if !idle_ports.contains(&port) {
                table.on_packet(&key(port), 5_000, Direction::Original, 10);
            }
        }
        let evicted = table.evict_idle(1_000);
        prop_assert_eq!(evicted, idle_ports.len());
        prop_assert_eq!(table.active_count(), 16 - idle_ports.len());
        for r in table.drain() {
            prop_assert_eq!(r.end, 0, "idle flows end at last activity");
        }
    }
}
