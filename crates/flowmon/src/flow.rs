//! Flow identification and records.

use crate::Timestamp;
use iputil::Family;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Transport protocol of a flow (the monitor tracks TCP, UDP and ICMP,
/// like the paper's §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// ICMP / ICMPv6 (ports are zero; identified by [`IcmpMeta`]).
    Icmp,
}

/// ICMP metadata recorded in place of ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IcmpMeta {
    /// ICMP type.
    pub icmp_type: u8,
    /// ICMP code.
    pub icmp_code: u8,
    /// Echo identifier (0 when not applicable).
    pub icmp_id: u16,
}

/// A flow key: the conntrack tuple as seen from the flow originator.
///
/// Keys order lexicographically by (protocol, addresses, ports, ICMP
/// metadata); the total order exists so eviction/export paths can sort
/// key sets deterministically (a `HashMap` iteration order is not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Transport protocol.
    pub proto: Proto,
    /// Originator address.
    pub src: IpAddr,
    /// Responder address.
    pub dst: IpAddr,
    /// Originator port (0 for ICMP).
    pub sport: u16,
    /// Responder port (0 for ICMP).
    pub dport: u16,
    /// ICMP metadata when `proto == Icmp`.
    pub icmp: Option<IcmpMeta>,
}

impl FlowKey {
    /// A TCP flow key.
    pub fn tcp(src: IpAddr, sport: u16, dst: IpAddr, dport: u16) -> FlowKey {
        FlowKey {
            proto: Proto::Tcp,
            src,
            dst,
            sport,
            dport,
            icmp: None,
        }
    }

    /// A UDP flow key.
    pub fn udp(src: IpAddr, sport: u16, dst: IpAddr, dport: u16) -> FlowKey {
        FlowKey {
            proto: Proto::Udp,
            src,
            dst,
            sport,
            dport,
            icmp: None,
        }
    }

    /// An ICMP flow key (echo request/reply style).
    ///
    /// # Panics
    /// Panics if the two endpoints are of different families — such a packet
    /// cannot exist.
    pub fn icmp(src: IpAddr, dst: IpAddr, meta: IcmpMeta) -> FlowKey {
        let k = FlowKey {
            proto: Proto::Icmp,
            src,
            dst,
            sport: 0,
            dport: 0,
            icmp: Some(meta),
        };
        k.assert_same_family();
        k
    }

    /// Address family of the flow.
    ///
    /// # Panics
    /// Panics (debug) when endpoints disagree; flows never mix families.
    pub fn family(&self) -> Family {
        self.assert_same_family();
        Family::of(self.src)
    }

    fn assert_same_family(&self) {
        debug_assert_eq!(
            Family::of(self.src),
            Family::of(self.dst),
            "flow endpoints must share a family"
        );
    }
}

/// Traffic direction relative to the flow originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Packets from originator to responder.
    Original,
    /// Packets from responder to originator.
    Reply,
}

/// LAN scoping of a flow, the external/internal split of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// LAN ↔ WAN.
    External,
    /// LAN ↔ LAN.
    Internal,
}

/// A completed flow, produced at `DESTROY` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The conntrack tuple.
    pub key: FlowKey,
    /// `NEW` event timestamp.
    pub start: Timestamp,
    /// `DESTROY` event timestamp.
    pub end: Timestamp,
    /// Bytes sent by the originator.
    pub bytes_orig: u64,
    /// Bytes sent by the responder.
    pub bytes_reply: u64,
    /// Packets sent by the originator.
    pub packets_orig: u64,
    /// Packets sent by the responder.
    pub packets_reply: u64,
    /// Internal or external.
    pub scope: Scope,
}

impl FlowRecord {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_orig + self.bytes_reply
    }

    /// Total packets in both directions.
    pub fn total_packets(&self) -> u64 {
        self.packets_orig + self.packets_reply
    }

    /// Address family.
    pub fn family(&self) -> Family {
        self.key.family()
    }

    /// Flow duration in microseconds.
    pub fn duration(&self) -> Timestamp {
        self.end.saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_constructors() {
        let t = FlowKey::tcp(
            "192.168.1.10".parse().unwrap(),
            50000,
            "203.0.113.1".parse().unwrap(),
            443,
        );
        assert_eq!(t.proto, Proto::Tcp);
        assert_eq!(t.family(), Family::V4);

        let u = FlowKey::udp(
            "2001:db8::10".parse().unwrap(),
            5353,
            "2001:db8::1".parse().unwrap(),
            53,
        );
        assert_eq!(u.family(), Family::V6);

        let i = FlowKey::icmp(
            "192.168.1.10".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            IcmpMeta {
                icmp_type: 8,
                icmp_code: 0,
                icmp_id: 77,
            },
        );
        assert_eq!(i.proto, Proto::Icmp);
        assert_eq!(i.sport, 0);
    }

    #[test]
    fn record_accessors() {
        let r = FlowRecord {
            key: FlowKey::tcp(
                "192.168.1.10".parse().unwrap(),
                50000,
                "203.0.113.1".parse().unwrap(),
                443,
            ),
            start: 1_000_000,
            end: 5_000_000,
            bytes_orig: 1000,
            bytes_reply: 9000,
            packets_orig: 10,
            packets_reply: 12,
            scope: Scope::External,
        };
        assert_eq!(r.total_bytes(), 10_000);
        assert_eq!(r.total_packets(), 22);
        assert_eq!(r.duration(), 4_000_000);
        assert_eq!(r.family(), Family::V4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "family")]
    fn mixed_family_flow_is_a_bug() {
        let _ = FlowKey::tcp(
            "192.168.1.10".parse().unwrap(),
            1,
            "2001:db8::1".parse().unwrap(),
            2,
        )
        .family();
    }
}
