//! Daily rotation and the anonymizing exporter.
//!
//! Appendix A of the paper: the router anonymizes addresses with CryptoPAN
//! (scrambling the low 8 bits of IPv4 and the low /64 of IPv6), then uploads
//! one log per day over TLS. We reproduce the rotation and anonymization;
//! transport is out of scope.

use crate::flow::{FlowKey, FlowRecord};
use crate::{day_of, Timestamp};
use iputil::anon::Anonymizer;
use std::collections::BTreeMap;

/// One day's worth of (anonymized) flow records.
#[derive(Debug, Clone)]
pub struct DailyLog {
    /// 0-based day index since the simulation epoch.
    pub day: u64,
    /// First timestamp of the day (microseconds).
    pub day_start: Timestamp,
    /// The records whose flow *ended* on this day (conntrack reports at
    /// `DESTROY`, so a flow belongs to the day it was destroyed — same as
    /// the real monitor).
    pub records: Vec<FlowRecord>,
}

/// Applies prefix-preserving anonymization and groups records by day.
#[derive(Debug)]
pub struct AnonymizingExporter {
    anonymizer: Anonymizer,
}

impl AnonymizingExporter {
    /// Create an exporter with the given anonymizer (typically
    /// `Anonymizer::new(key, AnonymizerConfig::paper())`).
    pub fn new(anonymizer: Anonymizer) -> AnonymizingExporter {
        AnonymizingExporter { anonymizer }
    }

    /// Anonymize one record (both endpoints).
    pub fn anonymize(&self, record: &FlowRecord) -> FlowRecord {
        let mut out = *record;
        out.key = FlowKey {
            src: self.anonymizer.anon(record.key.src),
            dst: self.anonymizer.anon(record.key.dst),
            ..record.key
        };
        out
    }

    /// Anonymize and rotate records into daily logs, ordered by day.
    pub fn export(&self, records: &[FlowRecord]) -> Vec<DailyLog> {
        let mut by_day: BTreeMap<u64, Vec<FlowRecord>> = BTreeMap::new();
        for r in records {
            by_day
                .entry(day_of(r.end))
                .or_default()
                .push(self.anonymize(r));
        }
        by_day
            .into_iter()
            .map(|(day, records)| DailyLog {
                day,
                day_start: day * crate::DAY,
                records,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowKey, Scope};
    use crate::DAY;
    use iputil::anon::AnonymizerConfig;

    fn record(end: Timestamp, sport: u16) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                "192.168.1.77".parse().unwrap(),
                sport,
                "203.0.113.9".parse().unwrap(),
                443,
            ),
            start: end.saturating_sub(1000),
            end,
            bytes_orig: 100,
            bytes_reply: 1000,
            packets_orig: 2,
            packets_reply: 3,
            scope: Scope::External,
        }
    }

    fn exporter() -> AnonymizingExporter {
        AnonymizingExporter::new(Anonymizer::new(
            *b"residence-key-01",
            AnonymizerConfig::paper(),
        ))
    }

    #[test]
    fn anonymization_changes_low_bits_only() {
        let e = exporter();
        let r = record(500, 40_000);
        let a = e.anonymize(&r);
        let (orig_src, anon_src) = match (r.key.src, a.key.src) {
            (std::net::IpAddr::V4(o), std::net::IpAddr::V4(n)) => (o, n),
            _ => panic!("family changed"),
        };
        assert_eq!(orig_src.octets()[..3], anon_src.octets()[..3]);
        assert_ne!(orig_src, anon_src, "low byte must scramble for this key");
        // Counters and ports untouched.
        assert_eq!(a.bytes_reply, r.bytes_reply);
        assert_eq!(a.key.sport, r.key.sport);
    }

    #[test]
    fn anonymization_is_consistent() {
        let e = exporter();
        let a1 = e.anonymize(&record(1, 1));
        let a2 = e.anonymize(&record(2, 2));
        assert_eq!(a1.key.src, a2.key.src, "same host maps to same pseudonym");
    }

    #[test]
    fn daily_rotation_groups_by_destroy_day() {
        let e = exporter();
        let records = vec![
            record(100, 1),
            record(DAY - 1, 2),
            record(DAY + 5, 3),
            record(3 * DAY + 5, 4),
        ];
        let logs = e.export(&records);
        assert_eq!(logs.len(), 3);
        assert_eq!(logs[0].day, 0);
        assert_eq!(logs[0].records.len(), 2);
        assert_eq!(logs[1].day, 1);
        assert_eq!(logs[2].day, 3);
        assert_eq!(logs[2].day_start, 3 * DAY);
    }

    #[test]
    fn empty_export() {
        assert!(exporter().export(&[]).is_empty());
    }
}
