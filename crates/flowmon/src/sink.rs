//! # The streaming flow pipeline: [`FlowSink`] and its aggregators.
//!
//! The paper's analyses never need every flow at once — they need *moments*
//! of the flow stream: byte/flow counters per family and scope, daily
//! fractions, duration/size distributions, translated-vs-native shares. The
//! seed pipeline nevertheless materialized every [`FlowRecord`] of every
//! residence-day before any experiment looked at it, which made paper-scale
//! runs memory-bound long before they were CPU-bound.
//!
//! [`FlowSink`] inverts that: synthesis *pushes* each completed record into
//! a sink the moment it is observed, in a deterministic order — records of
//! one (residence, day) arrive contiguously, days in ascending order (the
//! same order the materialized `Vec` used to have). Sinks choose what to
//! keep:
//!
//! * [`CollectSink`] — the compatibility sink: buffers every record,
//!   reproducing the pre-streaming `Vec<FlowRecord>` byte-for-byte.
//! * [`ScopeFamilyAgg`] — per-(scope, family) byte/flow counters, overall
//!   and per-day: everything Table 1 and the daily-fraction figures read,
//!   in O(days) memory.
//! * [`FlowStatsAgg`] — duration and size distribution sketches
//!   ([`netstats::LogHistogram`]), O(1) memory.
//! * [`TranslationAgg`] — translated-vs-native byte/flow tallies through a
//!   [`TranslationMap`], the input of the transition-tier grading.
//! * [`NullSink`] — counts and discards (throughput benchmarking, gateway
//!   sweeps that only need the translator's counters).
//!
//! Sinks compose without per-experiment structs: tuples of up to four sinks
//! are sinks (each member sees every record), [`Tee`] fans one stream into
//! two named halves, [`Fanout`] broadcasts into a homogeneous collection,
//! and `&mut S` is a sink — so one pass over the synthesis can feed any
//! number of aggregators. Aggregators with a `merge` operation combine
//! exactly, so per-worker instances can be folded in deterministic order.

use crate::day_of;
use crate::flow::{FlowRecord, Scope};
use crate::xlat::{Translation, TranslationMap};
use iputil::Family;
use netstats::LogHistogram;

/// A push-based consumer of completed flow records.
///
/// The producer contract (what `trafficgen` guarantees): records of one
/// (residence, day) arrive contiguously and in emission order; days arrive
/// in ascending order; the sequence is byte-identical at any worker-thread
/// count. Sinks may therefore rely on the stream order being deterministic,
/// but not on timestamps being globally sorted (flows within a day are
/// emitted hour by hour with in-hour jitter).
pub trait FlowSink {
    /// Consume one completed record.
    fn accept(&mut self, record: &FlowRecord);

    /// Consume a contiguous run of records, in order. Behaviorally
    /// identical to calling [`FlowSink::accept`] per record (the default
    /// does exactly that); sinks whose per-record work has a cheaper
    /// batched form — LPM attribution through the frozen engine's
    /// interleaved-prefetch walks — override it. Producers that buffer
    /// (e.g. `trafficgen`'s day synthesis) deliver through this entry
    /// point so the batch shape survives sink composition.
    fn accept_batch(&mut self, records: &[FlowRecord]) {
        for r in records {
            self.accept(r);
        }
    }
}

impl<S: FlowSink + ?Sized> FlowSink for &mut S {
    fn accept(&mut self, record: &FlowRecord) {
        (**self).accept(record);
    }

    fn accept_batch(&mut self, records: &[FlowRecord]) {
        (**self).accept_batch(records);
    }
}

macro_rules! impl_sink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: FlowSink),+> FlowSink for ($($name,)+) {
            fn accept(&mut self, record: &FlowRecord) {
                $(self.$idx.accept(record);)+
            }

            fn accept_batch(&mut self, records: &[FlowRecord]) {
                $(self.$idx.accept_batch(records);)+
            }
        }
    )*}
}
impl_sink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Two sinks fed from one stream, with named halves — the heterogeneous
/// combinator for call sites that outgrow positional tuple indexing.
///
/// `Tee::new(a, b)` is behaviorally identical to the tuple `(a, b)`; it
/// exists so composed pipelines read as `tee.first` / `tee.second` instead
/// of `.0` / `.1`, and so both halves can be recovered via
/// [`Tee::into_inner`]. Nest `Tee`s (or use wider tuples) for more than two.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B> {
    /// The first sink; sees every record before `second`.
    pub first: A,
    /// The second sink.
    pub second: B,
}

impl<A: FlowSink, B: FlowSink> Tee<A, B> {
    /// Combine two sinks into one.
    pub fn new(first: A, second: B) -> Tee<A, B> {
        Tee { first, second }
    }

    /// Consume the tee, returning both sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: FlowSink, B: FlowSink> FlowSink for Tee<A, B> {
    fn accept(&mut self, record: &FlowRecord) {
        self.first.accept(record);
        self.second.accept(record);
    }

    fn accept_batch(&mut self, records: &[FlowRecord]) {
        self.first.accept_batch(records);
        self.second.accept_batch(records);
    }
}

/// Broadcast into a homogeneous collection of sinks: every record reaches
/// every member, in index order. The dynamic-width counterpart of the tuple
/// impls — e.g. one aggregator per capacity step of a sweep, built at
/// runtime.
#[derive(Debug, Clone, Default)]
pub struct Fanout<S> {
    /// Member sinks, broadcast order.
    pub sinks: Vec<S>,
}

impl<S: FlowSink> Fanout<S> {
    /// A fanout over `sinks`.
    pub fn new(sinks: Vec<S>) -> Fanout<S> {
        Fanout { sinks }
    }

    /// Consume the fanout, returning the member sinks.
    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: FlowSink> FlowSink for Fanout<S> {
    fn accept(&mut self, record: &FlowRecord) {
        for sink in &mut self.sinks {
            sink.accept(record);
        }
    }

    fn accept_batch(&mut self, records: &[FlowRecord]) {
        for sink in &mut self.sinks {
            sink.accept_batch(records);
        }
    }
}

/// Buffers every record — the compatibility sink behind the materializing
/// APIs. Streaming through a `CollectSink` yields the exact `Vec` the
/// pre-streaming pipeline produced.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// Collected records, in acceptance order.
    pub records: Vec<FlowRecord>,
}

impl CollectSink {
    /// An empty sink.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// Consume the sink, returning the collected records.
    pub fn into_records(self) -> Vec<FlowRecord> {
        self.records
    }
}

impl FlowSink for CollectSink {
    fn accept(&mut self, record: &FlowRecord) {
        self.records.push(*record);
    }
}

/// Counts records and bytes, keeps nothing — for throughput measurement and
/// runs where only side counters (e.g. a CGN gateway's) matter.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink {
    /// Records accepted.
    pub flows: u64,
    /// Total bytes across accepted records.
    pub bytes: u64,
}

impl FlowSink for NullSink {
    fn accept(&mut self, record: &FlowRecord) {
        self.flows += 1;
        self.bytes += record.total_bytes();
    }
}

/// Byte + flow counters for one (scope, family) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total bytes (both directions).
    pub bytes: u64,
    /// Record count.
    pub flows: u64,
}

impl Counters {
    fn add(&mut self, record: &FlowRecord) {
        self.bytes += record.total_bytes();
        self.flows += 1;
    }
}

/// One scope's pair of per-family counters plus the derived fractions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeCell {
    /// IPv4 counters.
    pub v4: Counters,
    /// IPv6 counters.
    pub v6: Counters,
}

impl ScopeCell {
    /// Fold one record into the family counters (any scope — callers
    /// decide which records reach which cell).
    pub fn add(&mut self, record: &FlowRecord) {
        match record.family() {
            Family::V4 => self.v4.add(record),
            Family::V6 => self.v6.add(record),
        }
    }

    /// Total bytes of both families.
    pub fn total_bytes(&self) -> u64 {
        self.v4.bytes + self.v6.bytes
    }

    /// Total flows of both families.
    pub fn total_flows(&self) -> u64 {
        self.v4.flows + self.v6.flows
    }

    /// IPv6 share of bytes (`None` when no bytes).
    pub fn v6_byte_fraction(&self) -> Option<f64> {
        let total = self.total_bytes();
        (total > 0).then(|| self.v6.bytes as f64 / total as f64)
    }

    /// IPv6 share of flows (`None` when no flows).
    pub fn v6_flow_fraction(&self) -> Option<f64> {
        let total = self.total_flows();
        (total > 0).then(|| self.v6.flows as f64 / total as f64)
    }
}

/// Per-(scope, family) byte/flow counters, overall and per day — the
/// streaming replacement for scanning a materialized dataset in the
/// Table 1 / Fig 1 family of analyses.
///
/// Days are binned by each record's *end* timestamp, clamped to the last
/// configured day — the identical rule the record-scanning analysis used,
/// so streamed and recomputed aggregates agree exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeFamilyAgg {
    num_days: u32,
    /// `[external, internal]` overall counters.
    overall: [ScopeCell; 2],
    /// `[external, internal]` counters per day.
    per_day: Vec<[ScopeCell; 2]>,
}

fn scope_idx(scope: Scope) -> usize {
    match scope {
        Scope::External => 0,
        Scope::Internal => 1,
    }
}

impl ScopeFamilyAgg {
    /// An empty aggregate covering `num_days` days (must be ≥ 1).
    pub fn new(num_days: u32) -> ScopeFamilyAgg {
        let num_days = num_days.max(1);
        ScopeFamilyAgg {
            num_days,
            overall: [ScopeCell::default(); 2],
            per_day: vec![[ScopeCell::default(); 2]; num_days as usize],
        }
    }

    /// Days covered.
    pub fn num_days(&self) -> u32 {
        self.num_days
    }

    /// Overall counters of one scope.
    pub fn overall(&self, scope: Scope) -> &ScopeCell {
        &self.overall[scope_idx(scope)]
    }

    /// One day's counters of one scope.
    pub fn day(&self, day: u32, scope: Scope) -> &ScopeCell {
        &self.per_day[day.min(self.num_days - 1) as usize][scope_idx(scope)]
    }

    /// Fold another aggregate (same `num_days`) into this one.
    ///
    /// # Panics
    /// Panics when day counts differ — merged aggregates must share binning.
    pub fn merge(&mut self, other: &ScopeFamilyAgg) {
        assert_eq!(self.num_days, other.num_days, "mismatched day binning");
        fn add(mine: &mut ScopeCell, theirs: &ScopeCell) {
            mine.v4.bytes += theirs.v4.bytes;
            mine.v4.flows += theirs.v4.flows;
            mine.v6.bytes += theirs.v6.bytes;
            mine.v6.flows += theirs.v6.flows;
        }
        for cell in 0..2 {
            add(&mut self.overall[cell], &other.overall[cell]);
        }
        for (mine, theirs) in self.per_day.iter_mut().zip(&other.per_day) {
            for cell in 0..2 {
                add(&mut mine[cell], &theirs[cell]);
            }
        }
    }
}

impl FlowSink for ScopeFamilyAgg {
    fn accept(&mut self, record: &FlowRecord) {
        let s = scope_idx(record.scope);
        self.overall[s].add(record);
        let day = (day_of(record.end) as u32).min(self.num_days - 1) as usize;
        self.per_day[day][s].add(record);
    }
}

/// Streaming duration/size distribution sketches of a flow stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowStatsAgg {
    /// Flow durations in microseconds.
    pub duration_us: LogHistogram,
    /// Total bytes per flow (both directions).
    pub size_bytes: LogHistogram,
}

impl FlowStatsAgg {
    /// An empty aggregate.
    pub fn new() -> FlowStatsAgg {
        FlowStatsAgg::default()
    }

    /// Fold another aggregate into this one.
    pub fn merge(&mut self, other: &FlowStatsAgg) {
        self.duration_us.merge(&other.duration_us);
        self.size_bytes.merge(&other.size_bytes);
    }
}

impl FlowSink for FlowStatsAgg {
    fn accept(&mut self, record: &FlowRecord) {
        self.duration_us.record(record.duration());
        self.size_bytes.record(record.total_bytes());
    }
}

/// Translated-vs-native byte/flow tallies of *external* traffic, classified
/// through a [`TranslationMap`] — the streaming input of the transition
/// adoption-tier grading. Internal flows are ignored (translation is a WAN
/// phenomenon; the map classifies them as native anyway).
#[derive(Debug, Clone, Default)]
pub struct TranslationAgg {
    map: TranslationMap,
    /// Bytes per class, indexed by [`TranslationAgg::idx`]:
    /// `[native v6, nat64-translated, ds-lite tunneled, native v4]`.
    pub bytes: [u64; 4],
    /// Flows per class, same indexing.
    pub flows: [u64; 4],
}

impl TranslationAgg {
    /// An aggregate classifying through `map`.
    pub fn new(map: TranslationMap) -> TranslationAgg {
        TranslationAgg {
            map,
            bytes: [0; 4],
            flows: [0; 4],
        }
    }

    /// Class index of one record: 0 native v6, 1 NAT64, 2 DS-Lite,
    /// 3 native v4.
    pub fn idx(translation: Translation, family: Family) -> usize {
        match (translation, family) {
            (Translation::Nat64, _) => 1,
            (Translation::DsLite, _) => 2,
            (Translation::Native, Family::V6) => 0,
            (Translation::Native, Family::V4) => 3,
        }
    }

    /// Total external bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total external flows across all classes.
    pub fn total_flows(&self) -> u64 {
        self.flows.iter().sum()
    }

    /// Byte share of one class (0 when no traffic).
    pub fn byte_share(&self, class: usize) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.bytes[class] as f64 / total as f64
        }
    }
}

impl FlowSink for TranslationAgg {
    fn accept(&mut self, record: &FlowRecord) {
        if record.scope != Scope::External {
            return;
        }
        let i = TranslationAgg::idx(
            self.map.classify(&record.key, record.scope),
            record.family(),
        );
        self.bytes[i] += record.total_bytes();
        self.flows[i] += 1;
    }
}

/// Feed a slice of records through any sink (adapter for record-based
/// call sites and tests).
pub fn drain_into<S: FlowSink>(records: &[FlowRecord], sink: &mut S) {
    sink.accept_batch(records);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::{Timestamp, DAY};

    fn rec(start: Timestamp, end: Timestamp, bytes: u64, v6: bool, scope: Scope) -> FlowRecord {
        let (src, dst) = if v6 {
            ("2001:db8::1".parse().unwrap(), "2600::1".parse().unwrap())
        } else {
            (
                "192.168.1.2".parse().unwrap(),
                "203.0.113.1".parse().unwrap(),
            )
        };
        FlowRecord {
            key: FlowKey::tcp(src, 40_000, dst, 443),
            start,
            end,
            bytes_orig: bytes / 10,
            bytes_reply: bytes - bytes / 10,
            packets_orig: 1,
            packets_reply: 1,
            scope,
        }
    }

    #[test]
    fn collect_sink_preserves_order() {
        let records = vec![
            rec(0, 10, 100, true, Scope::External),
            rec(5, 20, 200, false, Scope::Internal),
            rec(7, 30, 300, true, Scope::External),
        ];
        let mut sink = CollectSink::new();
        drain_into(&records, &mut sink);
        assert_eq!(sink.into_records(), records);
    }

    #[test]
    fn scope_family_agg_counts_and_bins() {
        let mut agg = ScopeFamilyAgg::new(3);
        drain_into(
            &[
                rec(0, 10, 1_000, true, Scope::External),
                rec(0, DAY + 5, 500, false, Scope::External),
                rec(0, 10 * DAY, 200, true, Scope::External), // clamps to day 2
                rec(0, 10, 50, true, Scope::Internal),
            ],
            &mut agg,
        );
        let ext = agg.overall(Scope::External);
        assert_eq!(ext.v6.bytes, 1_200);
        assert_eq!(ext.v4.bytes, 500);
        assert_eq!(ext.total_flows(), 3);
        assert!((ext.v6_byte_fraction().unwrap() - 1_200.0 / 1_700.0).abs() < 1e-12);
        assert_eq!(agg.day(0, Scope::External).v6.bytes, 1_000);
        assert_eq!(agg.day(1, Scope::External).v4.bytes, 500);
        assert_eq!(agg.day(2, Scope::External).v6.bytes, 200, "clamped");
        assert_eq!(agg.overall(Scope::Internal).total_flows(), 1);
    }

    #[test]
    fn scope_family_agg_merge_is_exact() {
        let records: Vec<FlowRecord> = (0..100)
            .map(|i| {
                rec(
                    i * 1_000,
                    i * 1_000 + 500,
                    100 + i,
                    i % 3 == 0,
                    if i % 4 == 0 {
                        Scope::Internal
                    } else {
                        Scope::External
                    },
                )
            })
            .collect();
        let mut whole = ScopeFamilyAgg::new(5);
        drain_into(&records, &mut whole);
        let mut a = ScopeFamilyAgg::new(5);
        let mut b = ScopeFamilyAgg::new(5);
        drain_into(&records[..40], &mut a);
        drain_into(&records[40..], &mut b);
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn tuple_sink_feeds_both() {
        let mut pair = (CollectSink::new(), NullSink::default());
        drain_into(&[rec(0, 1, 100, true, Scope::External)], &mut pair);
        assert_eq!(pair.0.records.len(), 1);
        assert_eq!(pair.1.flows, 1);
        assert_eq!(pair.1.bytes, 100);
    }

    #[test]
    fn wide_tuples_feed_every_member() {
        let mut quad = (
            CollectSink::new(),
            NullSink::default(),
            FlowStatsAgg::new(),
            ScopeFamilyAgg::new(1),
        );
        drain_into(
            &[
                rec(0, 1, 100, true, Scope::External),
                rec(0, 2, 50, false, Scope::Internal),
            ],
            &mut quad,
        );
        assert_eq!(quad.0.records.len(), 2);
        assert_eq!(quad.1.flows, 2);
        assert_eq!(quad.2.size_bytes.count(), 2);
        assert_eq!(quad.3.overall(Scope::External).total_flows(), 1);
    }

    #[test]
    fn tee_matches_tuple_and_returns_both_halves() {
        let records = vec![
            rec(0, 10, 100, true, Scope::External),
            rec(5, 20, 200, false, Scope::Internal),
        ];
        let mut tee = Tee::new(CollectSink::new(), NullSink::default());
        let mut tuple = (CollectSink::new(), NullSink::default());
        drain_into(&records, &mut tee);
        drain_into(&records, &mut tuple);
        let (collected, counted) = tee.into_inner();
        assert_eq!(collected.records, tuple.0.records);
        assert_eq!(counted.flows, tuple.1.flows);
        assert_eq!(counted.bytes, tuple.1.bytes);
    }

    #[test]
    fn fanout_broadcasts_to_every_member() {
        let mut fan = Fanout::new(vec![NullSink::default(); 3]);
        drain_into(
            &[
                rec(0, 1, 100, true, Scope::External),
                rec(0, 2, 23, false, Scope::External),
            ],
            &mut fan,
        );
        for sink in fan.into_inner() {
            assert_eq!(sink.flows, 2);
            assert_eq!(sink.bytes, 123);
        }
    }

    #[test]
    fn translation_agg_classifies_external_only() {
        let mut map = TranslationMap::new();
        map.add_nat64_prefix("64:ff9b::/96".parse().unwrap());
        let mut agg = TranslationAgg::new(map);
        let translated = FlowRecord {
            key: FlowKey::tcp(
                "2001:db8::1".parse().unwrap(),
                1,
                "64:ff9b::c633:6407".parse().unwrap(),
                443,
            ),
            ..rec(0, 10, 400, true, Scope::External)
        };
        drain_into(
            &[
                translated,
                rec(0, 10, 100, true, Scope::External),
                rec(0, 10, 200, false, Scope::External),
                rec(0, 10, 999, true, Scope::Internal), // ignored
            ],
            &mut agg,
        );
        assert_eq!(agg.bytes, [100, 400, 0, 200]);
        assert_eq!(agg.total_flows(), 3);
        assert!((agg.byte_share(1) - 400.0 / 700.0).abs() < 1e-12);
    }

    #[test]
    fn flow_stats_agg_sketches() {
        let mut agg = FlowStatsAgg::new();
        for i in 1..=1_000u64 {
            agg.accept(&rec(0, i * 1_000, i, true, Scope::External));
        }
        assert_eq!(agg.duration_us.count(), 1_000);
        let p50 = agg.size_bytes.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.10, "p50 size {p50}");
    }
}
