//! # flowmon — a conntrack-style flow monitor
//!
//! The paper's client-side data comes from a "custom built, lightweight flow
//! monitor" on OpenWRT routers: it records flow beginnings and ends from
//! Linux connection-tracking events (`conntrack` `NEW` / `DESTROY`), with
//! per-direction byte counts from `nf_conntrack_acct`, keyed by the 5-tuple
//! (protocol, addresses, ports) and ICMP type/code/id (§3.1). Logs rotate
//! daily and are anonymized with CryptoPAN before leaving the router
//! (appendix A).
//!
//! This crate is that monitor:
//!
//! * [`flow`] — flow keys (5-tuple + ICMP metadata), records and scopes.
//! * [`table`] — the connection-tracking table: `NEW`/packet/`DESTROY`
//!   event API with idle timeout eviction, plus a whole-flow injection path
//!   used by the traffic synthesizer.
//! * [`router`] — the router pipeline: classifies flows as internal
//!   (LAN↔LAN) or external (LAN↔WAN) from configured LAN prefixes, exactly
//!   the split of Table 1.
//! * [`export`] — daily log rotation and the anonymizing exporter
//!   (prefix-preserving scrambling of the low bits, per the paper's IRB
//!   protocol).
//! * [`xlat`] — translated-vs-native grading: flows towards RFC 6052
//!   prefixes are NAT64/464XLAT legacy traffic, external IPv4 on a DS-Lite
//!   line rides the softwire; both are recognized from addresses alone.
//! * [`drops`] — why flows *didn't* reach the log: per-cause casualty
//!   counters for the fault-injection plane (resolver bursts, gateway
//!   outages, path loss, pool exhaustion).
//! * [`sink`] — the streaming flow pipeline: [`FlowSink`] consumers that
//!   aggregate the record stream (counters, distribution sketches,
//!   translation tallies) without materializing it, the
//!   [`sink::CollectSink`] compatibility buffer, and the composition
//!   combinators (sink tuples, [`sink::Tee`], [`sink::Fanout`]) that feed
//!   one stream to many aggregators in a single pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drops;
pub mod export;
pub mod flow;
pub mod router;
pub mod sink;
pub mod table;
pub mod xlat;

pub use drops::{DropCause, DropCounters};
pub use export::{AnonymizingExporter, DailyLog};
pub use flow::{Direction, FlowKey, FlowRecord, IcmpMeta, Proto, Scope};
pub use router::RouterMonitor;
pub use sink::{
    CollectSink, Fanout, FlowSink, FlowStatsAgg, NullSink, ScopeFamilyAgg, Tee, TranslationAgg,
};
pub use table::FlowTable;
pub use xlat::{Translation, TranslationMap};

/// Timestamps are microseconds since the simulation epoch (matching
/// `netsim::Time`'s unit so connection racing and flow logs share a
/// clock).
pub type Timestamp = u64;

/// Microseconds in one day.
pub const DAY: Timestamp = 86_400_000_000;

/// Day index (0-based) of a timestamp.
pub fn day_of(ts: Timestamp) -> u64 {
    ts / DAY
}
