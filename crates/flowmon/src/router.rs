//! The router-side monitor: scope classification plus the flow table.

use crate::flow::{FlowKey, FlowRecord, Scope};
use crate::table::FlowTable;
use crate::xlat::{Translation, TranslationMap};
use crate::Timestamp;
use iputil::multibit::{Frozen4, Frozen6};
use iputil::prefix::{Prefix4, Prefix6};
use iputil::trie::{Lpm4, Lpm6};
use std::net::IpAddr;

/// A residence router running the flow monitor.
///
/// Configured with the LAN prefixes of the residence (the RFC1918 v4 LAN and
/// the delegated IPv6 prefix); every flow is classified as
/// [`Scope::Internal`] when *both* endpoints are inside the LAN, otherwise
/// [`Scope::External`] — the exact split reported per-residence in Table 1.
///
/// Scoping runs once per injected flow, so the LAN sets are frozen at
/// construction into the immutable multibit engine (`iputil::multibit`) —
/// they never change over a monitor's lifetime, which is exactly the
/// read-only contract the frozen engine is built for. A handful of LAN
/// prefixes freezes to the linear-scan representation: no `2^16` root
/// tables per residence.
#[derive(Debug, Clone)]
pub struct RouterMonitor {
    lan4: Frozen4<()>,
    lan6: Frozen6<()>,
    xlat: TranslationMap,
    table: FlowTable,
}

impl RouterMonitor {
    /// Create a monitor for a residence with the given LAN prefixes.
    pub fn new(lan4: Vec<Prefix4>, lan6: Vec<Prefix6>) -> RouterMonitor {
        let mut lan4_lpm = Lpm4::new();
        for p in lan4 {
            lan4_lpm.insert(p, ());
        }
        let mut lan6_lpm = Lpm6::new();
        for p in lan6 {
            lan6_lpm.insert(p, ());
        }
        RouterMonitor {
            lan4: lan4_lpm.freeze(),
            lan6: lan6_lpm.freeze(),
            xlat: TranslationMap::new(),
            table: FlowTable::new(),
        }
    }

    /// Install the translation knowledge this router classifies against
    /// (NAT64 prefixes; whether external v4 rides a DS-Lite softwire).
    pub fn set_translation_map(&mut self, xlat: TranslationMap) {
        self.xlat = xlat;
    }

    /// Translation provenance of a flow: native, NAT64-translated, or
    /// DS-Lite tunneled. Purely address-derived — usable on live keys and on
    /// drained records alike.
    pub fn translation_of(&self, key: &FlowKey) -> Translation {
        self.xlat.classify(key, self.scope_of(key.src, key.dst))
    }

    /// Is an address inside this residence's LAN?
    pub fn is_lan(&self, addr: IpAddr) -> bool {
        match addr {
            IpAddr::V4(a) => self.lan4.longest_match(a).is_some(),
            IpAddr::V6(a) => self.lan6.longest_match(a).is_some(),
        }
    }

    /// Scope of a flow between two endpoints.
    pub fn scope_of(&self, src: IpAddr, dst: IpAddr) -> Scope {
        if self.is_lan(src) && self.is_lan(dst) {
            Scope::Internal
        } else {
            Scope::External
        }
    }

    /// Conntrack `NEW` with automatic scoping.
    pub fn on_new(&mut self, key: FlowKey, ts: Timestamp) {
        let scope = self.scope_of(key.src, key.dst);
        self.table.on_new(key, ts, scope);
    }

    /// Access the underlying table (packet accounting, destroy, eviction).
    pub fn table(&mut self) -> &mut FlowTable {
        &mut self.table
    }

    /// Build the completed record `inject` would log — scope classification
    /// plus the packet estimate — without buffering it. The streaming
    /// pipeline observes flows this way and pushes them straight into a
    /// [`crate::sink::FlowSink`]; `inject` remains for call sites that
    /// want the table to hold the record until [`RouterMonitor::drain`].
    pub fn observe(
        &self,
        key: FlowKey,
        start: Timestamp,
        end: Timestamp,
        bytes_orig: u64,
        bytes_reply: u64,
    ) -> FlowRecord {
        debug_assert!(end >= start);
        let scope = self.scope_of(key.src, key.dst);
        // Packet counts estimated from bytes at a nominal 1200 B/packet,
        // minimum 1 — the analyses only use byte and flow counts.
        let pkts = |b: u64| (b / 1200).max(1);
        FlowRecord {
            key,
            start,
            end,
            bytes_orig,
            bytes_reply,
            packets_orig: pkts(bytes_orig),
            packets_reply: pkts(bytes_reply),
            scope,
        }
    }

    /// Inject a whole flow with automatic scoping (synthesis fast path).
    pub fn inject(
        &mut self,
        key: FlowKey,
        start: Timestamp,
        end: Timestamp,
        bytes_orig: u64,
        bytes_reply: u64,
    ) {
        let r = self.observe(key, start, end, bytes_orig, bytes_reply);
        self.table.inject(
            r.key,
            r.start,
            r.end,
            r.bytes_orig,
            r.bytes_reply,
            r.packets_orig,
            r.packets_reply,
            r.scope,
        );
    }

    /// Drain completed flow records.
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        self.table.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> RouterMonitor {
        RouterMonitor::new(
            vec!["192.168.1.0/24".parse().unwrap()],
            vec!["2001:db8:1000::/56".parse().unwrap()],
        )
    }

    #[test]
    fn scoping() {
        let r = router();
        let lan: IpAddr = "192.168.1.5".parse().unwrap();
        let lan2: IpAddr = "192.168.1.6".parse().unwrap();
        let wan: IpAddr = "203.0.113.9".parse().unwrap();
        assert_eq!(r.scope_of(lan, lan2), Scope::Internal);
        assert_eq!(r.scope_of(lan, wan), Scope::External);
        assert_eq!(r.scope_of(wan, lan), Scope::External);

        let lan6: IpAddr = "2001:db8:1000:1::5".parse().unwrap();
        let wan6: IpAddr = "2001:db8:9999::1".parse().unwrap();
        assert_eq!(r.scope_of(lan6, lan6), Scope::Internal);
        assert_eq!(r.scope_of(lan6, wan6), Scope::External);
    }

    #[test]
    fn inject_applies_scope_and_packets() {
        let mut r = router();
        let key = FlowKey::tcp(
            "192.168.1.5".parse().unwrap(),
            40000,
            "192.168.1.6".parse().unwrap(),
            445,
        );
        r.inject(key, 0, 100, 2400, 120_000);
        let recs = r.drain();
        assert_eq!(recs[0].scope, Scope::Internal);
        assert_eq!(recs[0].packets_orig, 2);
        assert_eq!(recs[0].packets_reply, 100);
    }

    #[test]
    fn translation_classification_through_router() {
        let mut r = router();
        let mut xlat = TranslationMap::new();
        xlat.add_nat64_prefix("64:ff9b::/96".parse().unwrap());
        r.set_translation_map(xlat);
        let translated = FlowKey::tcp(
            "2001:db8:1000::5".parse().unwrap(),
            40000,
            "64:ff9b::c633:6407".parse().unwrap(),
            443,
        );
        assert_eq!(r.translation_of(&translated), Translation::Nat64);
        let native = FlowKey::tcp(
            "2001:db8:1000::5".parse().unwrap(),
            40001,
            "2600::1".parse().unwrap(),
            443,
        );
        assert_eq!(r.translation_of(&native), Translation::Native);
    }

    #[test]
    fn event_path_with_scope() {
        let mut r = router();
        let key = FlowKey::udp(
            "192.168.1.5".parse().unwrap(),
            5000,
            "8.8.8.8".parse().unwrap(),
            53,
        );
        r.on_new(key, 10);
        r.table()
            .on_packet(&key, 20, crate::flow::Direction::Original, 64);
        r.table().on_destroy(&key, 30);
        let recs = r.drain();
        assert_eq!(recs[0].scope, Scope::External);
        assert_eq!(recs[0].bytes_orig, 64);
    }
}
