//! Translated-vs-native flow classification.
//!
//! Transition technologies leave address-level fingerprints a router can
//! read back out of its own flow table: a NAT64/464XLAT flow is an IPv6 flow
//! whose destination sits under an RFC 6052 translation prefix, and on a
//! DS-Lite line every external IPv4 flow is by construction riding the
//! softwire to the AFTR. [`TranslationMap`] encodes that knowledge so the
//! monitor (and the analysis layer) can grade traffic as native or
//! translated without any generation-side ground truth — the same
//! measurement-only discipline as the rest of the suite.

use crate::flow::{FlowKey, Scope};
use iputil::prefix::Prefix6;
use iputil::trie::Lpm6;
use serde::Serialize;
use std::net::IpAddr;

/// How a flow reached the outside world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Translation {
    /// Native, untranslated traffic of either family.
    Native,
    /// IPv6 flow towards an RFC 6052 translation prefix: the true
    /// destination is IPv4, reached through a NAT64 gateway (directly via
    /// DNS64, or CLAT→PLAT on a 464XLAT line).
    Nat64,
    /// IPv4 flow tunneled inside IPv6 to a DS-Lite AFTR.
    DsLite,
}

impl Translation {
    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Translation::Native => "native",
            Translation::Nat64 => "nat64",
            Translation::DsLite => "ds-lite",
        }
    }
}

/// Router-side knowledge needed to classify translation provenance.
#[derive(Debug, Clone, Default)]
pub struct TranslationMap {
    nat64: Lpm6<()>,
    dslite_b4: bool,
}

impl TranslationMap {
    /// A map that classifies everything as native.
    pub fn new() -> TranslationMap {
        TranslationMap::default()
    }

    /// Register an RFC 6052 translation prefix (e.g. `64:ff9b::/96`).
    pub fn add_nat64_prefix(&mut self, prefix: Prefix6) {
        self.nat64.insert(prefix, ());
    }

    /// Mark this router as a DS-Lite B4: all external IPv4 is tunneled.
    pub fn set_dslite_b4(&mut self, enabled: bool) {
        self.dslite_b4 = enabled;
    }

    /// Any NAT64 prefixes registered?
    pub fn has_nat64(&self) -> bool {
        !self.nat64.is_empty()
    }

    /// Classify one flow (scope from the router's LAN view).
    pub fn classify(&self, key: &FlowKey, scope: Scope) -> Translation {
        if scope == Scope::Internal {
            return Translation::Native;
        }
        match key.dst {
            IpAddr::V6(dst) if self.nat64.longest_match(dst).is_some() => Translation::Nat64,
            IpAddr::V4(_) if self.dslite_b4 => Translation::DsLite,
            _ => Translation::Native,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> TranslationMap {
        let mut m = TranslationMap::new();
        m.add_nat64_prefix("64:ff9b::/96".parse().unwrap());
        m
    }

    #[test]
    fn nat64_destinations_are_translated() {
        let m = map();
        let key = FlowKey::tcp(
            "2001:db8:1::5".parse().unwrap(),
            40000,
            "64:ff9b::c633:6407".parse().unwrap(),
            443,
        );
        assert_eq!(m.classify(&key, Scope::External), Translation::Nat64);
        let native = FlowKey::tcp(
            "2001:db8:1::5".parse().unwrap(),
            40001,
            "2600::1".parse().unwrap(),
            443,
        );
        assert_eq!(m.classify(&native, Scope::External), Translation::Native);
    }

    #[test]
    fn dslite_marks_external_v4_only() {
        let mut m = map();
        m.set_dslite_b4(true);
        let v4 = FlowKey::tcp(
            "192.168.1.5".parse().unwrap(),
            40000,
            "198.51.100.1".parse().unwrap(),
            443,
        );
        assert_eq!(m.classify(&v4, Scope::External), Translation::DsLite);
        assert_eq!(
            m.classify(&v4, Scope::Internal),
            Translation::Native,
            "LAN traffic never rides the softwire"
        );
        let v6 = FlowKey::tcp(
            "2001:db8:1::5".parse().unwrap(),
            40000,
            "2600::1".parse().unwrap(),
            443,
        );
        assert_eq!(m.classify(&v6, Scope::External), Translation::Native);
    }

    #[test]
    fn default_map_is_all_native() {
        let m = TranslationMap::new();
        assert!(!m.has_nat64());
        // Even a would-be NAT64 destination is native without configuration.
        let key6 = FlowKey::tcp(
            "2001:db8::1".parse().unwrap(),
            1,
            "64:ff9b::c000:221".parse().unwrap(),
            2,
        );
        assert_eq!(m.classify(&key6, Scope::External), Translation::Native);
    }

    #[test]
    fn labels() {
        assert_eq!(Translation::Native.label(), "native");
        assert_eq!(Translation::Nat64.label(), "nat64");
        assert_eq!(Translation::DsLite.label(), "ds-lite");
    }
}
