//! Classification of flows that never made it into the record stream.
//!
//! The fault-injection plane (`crates/faults`) drops flows at several
//! layers — a resolver burst kills the name lookup, a gateway outage
//! refuses the binding, path loss eats the established flow, an exhausted
//! pool rejects the bind. [`DropCounters`] tallies those casualties by
//! [`DropCause`] so stress scenarios can report *why* traffic disappeared,
//! not just that totals shrank.

use serde::Serialize;

/// Why a would-be flow was dropped before reaching the flow log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DropCause {
    /// The translator/CGN binding pool was exhausted.
    PoolExhausted,
    /// The gateway was in an administrative outage.
    GatewayOutage,
    /// Injected path loss dropped the established flow.
    PathLoss,
    /// Name resolution failed (injected DNS fault).
    DnsFailure,
}

impl DropCause {
    /// Every cause, in counter order.
    pub const ALL: [DropCause; 4] = [
        DropCause::PoolExhausted,
        DropCause::GatewayOutage,
        DropCause::PathLoss,
        DropCause::DnsFailure,
    ];

    /// Stable label for reports and exports.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::PoolExhausted => "pool-exhausted",
            DropCause::GatewayOutage => "gateway-outage",
            DropCause::PathLoss => "path-loss",
            DropCause::DnsFailure => "dns-failure",
        }
    }

    /// Telemetry-plane counter name (`drops.` + [`DropCause::label`]).
    pub fn metric(self) -> &'static str {
        match self {
            DropCause::PoolExhausted => "drops.pool-exhausted",
            DropCause::GatewayOutage => "drops.gateway-outage",
            DropCause::PathLoss => "drops.path-loss",
            DropCause::DnsFailure => "drops.dns-failure",
        }
    }

    fn index(self) -> usize {
        match self {
            DropCause::PoolExhausted => 0,
            DropCause::GatewayOutage => 1,
            DropCause::PathLoss => 2,
            DropCause::DnsFailure => 3,
        }
    }
}

/// Per-cause drop tallies. Plain data: merging per-day or per-residence
/// counters is [`DropCounters::absorb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DropCounters {
    counts: [u64; 4],
}

impl DropCounters {
    /// Record one dropped flow. Also bumps the telemetry plane's
    /// `drops.<label>` counter, so `repro --metrics` reports per-cause
    /// drops without consumers threading `DropCounters` around.
    pub fn record(&mut self, cause: DropCause) {
        self.counts[cause.index()] += 1;
        obs::counter_add(cause.metric(), 1);
    }

    /// Drops attributed to `cause`.
    pub fn get(&self, cause: DropCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total drops across all causes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Nothing dropped?
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: DropCounters) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_by_cause() {
        let mut c = DropCounters::default();
        assert!(c.is_empty());
        c.record(DropCause::PathLoss);
        c.record(DropCause::PathLoss);
        c.record(DropCause::GatewayOutage);
        assert_eq!(c.get(DropCause::PathLoss), 2);
        assert_eq!(c.get(DropCause::GatewayOutage), 1);
        assert_eq!(c.get(DropCause::DnsFailure), 0);
        assert_eq!(c.total(), 3);
        let mut d = DropCounters::default();
        d.record(DropCause::PoolExhausted);
        d.absorb(c);
        assert_eq!(d.total(), 4);
        assert_eq!(d.get(DropCause::PoolExhausted), 1);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<_> = DropCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "pool-exhausted",
                "gateway-outage",
                "path-loss",
                "dns-failure"
            ]
        );
    }
}
