//! The connection-tracking table.

use crate::flow::{Direction, FlowKey, FlowRecord, Scope};
use crate::Timestamp;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct ActiveFlow {
    start: Timestamp,
    last_seen: Timestamp,
    bytes_orig: u64,
    bytes_reply: u64,
    packets_orig: u64,
    packets_reply: u64,
    scope: Scope,
}

/// A conntrack-style flow table.
///
/// Lifecycle mirrors the kernel events the paper's monitor subscribes to:
/// [`FlowTable::on_new`] (conntrack `NEW`), [`FlowTable::on_packet`]
/// (accounting), [`FlowTable::on_destroy`] (conntrack `DESTROY`, which emits
/// the [`FlowRecord`]). [`FlowTable::evict_idle`] models conntrack timeouts
/// for flows that never see a FIN.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    active: HashMap<FlowKey, ActiveFlow>,
    /// Completed flows waiting to be drained by the router/exporter.
    completed: Vec<FlowRecord>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of currently tracked (active) flows.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of completed, undrained records.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Handle a conntrack `NEW` event. Duplicate `NEW` for an active key is
    /// ignored (the kernel never emits it; synthetic feeds might).
    pub fn on_new(&mut self, key: FlowKey, ts: Timestamp, scope: Scope) {
        self.active.entry(key).or_insert(ActiveFlow {
            start: ts,
            last_seen: ts,
            bytes_orig: 0,
            bytes_reply: 0,
            packets_orig: 0,
            packets_reply: 0,
            scope,
        });
    }

    /// Account one packet to an active flow. Unknown keys are ignored
    /// (packets racing a `DESTROY`, as in the real kernel feed).
    pub fn on_packet(&mut self, key: &FlowKey, ts: Timestamp, dir: Direction, bytes: u64) {
        if let Some(f) = self.active.get_mut(key) {
            f.last_seen = f.last_seen.max(ts);
            match dir {
                Direction::Original => {
                    f.bytes_orig += bytes;
                    f.packets_orig += 1;
                }
                Direction::Reply => {
                    f.bytes_reply += bytes;
                    f.packets_reply += 1;
                }
            }
        }
    }

    /// Handle a conntrack `DESTROY` event; emits the completed record.
    /// Returns `false` for unknown keys.
    pub fn on_destroy(&mut self, key: &FlowKey, ts: Timestamp) -> bool {
        match self.active.remove(key) {
            Some(f) => {
                self.completed.push(FlowRecord {
                    key: *key,
                    start: f.start,
                    end: ts.max(f.start),
                    bytes_orig: f.bytes_orig,
                    bytes_reply: f.bytes_reply,
                    packets_orig: f.packets_orig,
                    packets_reply: f.packets_reply,
                    scope: f.scope,
                });
                true
            }
            None => false,
        }
    }

    /// Evict flows idle since before `cutoff` (conntrack timeout). The
    /// records end at their last activity.
    ///
    /// Eviction order is deterministic: victims are emitted by
    /// (last activity, flow start, key), never in `HashMap` iteration
    /// order — two identically-fed tables drain identical record
    /// sequences, which the streaming pipeline's reproducibility
    /// guarantees rely on.
    pub fn evict_idle(&mut self, cutoff: Timestamp) -> usize {
        let mut idle: Vec<(Timestamp, Timestamp, FlowKey)> = self
            .active
            .iter() // tidy:allow(nondeterministic-iteration): candidates are fully sorted by (last_seen, start, key) before eviction
            .filter(|(_, f)| f.last_seen < cutoff)
            .map(|(k, f)| (f.last_seen, f.start, *k))
            .collect();
        idle.sort_unstable();
        let n = idle.len();
        for (_, _, key) in idle {
            let f = self.active.remove(&key).expect("listed above");
            self.completed.push(FlowRecord {
                key,
                start: f.start,
                end: f.last_seen,
                bytes_orig: f.bytes_orig,
                bytes_reply: f.bytes_reply,
                packets_orig: f.packets_orig,
                packets_reply: f.packets_reply,
                scope: f.scope,
            });
        }
        n
    }

    /// Inject a whole flow in one call — the synthesis fast path used by
    /// `trafficgen` for aggregate traffic where per-packet simulation would
    /// be pointless.
    #[allow(clippy::too_many_arguments)]
    pub fn inject(
        &mut self,
        key: FlowKey,
        start: Timestamp,
        end: Timestamp,
        bytes_orig: u64,
        bytes_reply: u64,
        packets_orig: u64,
        packets_reply: u64,
        scope: Scope,
    ) {
        debug_assert!(end >= start);
        self.completed.push(FlowRecord {
            key,
            start,
            end,
            bytes_orig,
            bytes_reply,
            packets_orig,
            packets_reply,
            scope,
        });
    }

    /// Drain completed flow records.
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Proto;

    fn key(port: u16) -> FlowKey {
        FlowKey::tcp(
            "192.168.1.10".parse().unwrap(),
            port,
            "203.0.113.1".parse().unwrap(),
            443,
        )
    }

    #[test]
    fn lifecycle_new_packets_destroy() {
        let mut t = FlowTable::new();
        t.on_new(key(1000), 100, Scope::External);
        assert_eq!(t.active_count(), 1);
        t.on_packet(&key(1000), 150, Direction::Original, 500);
        t.on_packet(&key(1000), 200, Direction::Reply, 1500);
        t.on_packet(&key(1000), 250, Direction::Reply, 1500);
        assert!(t.on_destroy(&key(1000), 300));
        assert_eq!(t.active_count(), 0);
        let recs = t.drain();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.start, 100);
        assert_eq!(r.end, 300);
        assert_eq!(r.bytes_orig, 500);
        assert_eq!(r.bytes_reply, 3000);
        assert_eq!(r.packets_orig, 1);
        assert_eq!(r.packets_reply, 2);
        assert_eq!(r.key.proto, Proto::Tcp);
    }

    #[test]
    fn destroy_unknown_is_false() {
        let mut t = FlowTable::new();
        assert!(!t.on_destroy(&key(1), 10));
    }

    #[test]
    fn duplicate_new_ignored() {
        let mut t = FlowTable::new();
        t.on_new(key(1), 100, Scope::External);
        t.on_packet(&key(1), 110, Direction::Original, 10);
        t.on_new(key(1), 200, Scope::External); // must not reset
        t.on_destroy(&key(1), 300);
        let r = &t.drain()[0];
        assert_eq!(r.start, 100);
        assert_eq!(r.bytes_orig, 10);
    }

    #[test]
    fn packets_to_unknown_key_dropped() {
        let mut t = FlowTable::new();
        t.on_packet(&key(9), 10, Direction::Original, 10);
        assert_eq!(t.active_count(), 0);
        assert_eq!(t.completed_count(), 0);
    }

    #[test]
    fn idle_eviction() {
        let mut t = FlowTable::new();
        t.on_new(key(1), 100, Scope::External);
        t.on_new(key(2), 100, Scope::External);
        t.on_packet(&key(2), 5_000, Direction::Original, 10);
        // key(1) idle since 100, key(2) active at 5000.
        assert_eq!(t.evict_idle(1_000), 1);
        assert_eq!(t.active_count(), 1);
        let recs = t.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].end, 100);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Two separately-constructed tables have differently-seeded
        // HashMaps; identical event feeds must still drain identical
        // record sequences (regression: eviction used to emit in map
        // iteration order).
        let feed = |t: &mut FlowTable| {
            for i in 0..200u16 {
                t.on_new(key(1000 + i), 50 + (i % 7) as u64, Scope::External);
                t.on_packet(
                    &key(1000 + i),
                    60 + (i % 13) as u64,
                    Direction::Original,
                    10 + i as u64,
                );
            }
            t.evict_idle(1_000);
        };
        let mut a = FlowTable::new();
        let mut b = FlowTable::new();
        feed(&mut a);
        feed(&mut b);
        let (ra, rb) = (a.drain(), b.drain());
        assert_eq!(ra.len(), 200);
        assert_eq!(ra, rb, "identically-fed tables must drain identically");
        // And the order is (last_seen, start, key)-sorted.
        let mut sorted = ra.clone();
        sorted.sort_by_key(|r| (r.end, r.start, r.key));
        assert_eq!(ra, sorted);
    }

    #[test]
    fn inject_fast_path() {
        let mut t = FlowTable::new();
        t.inject(key(5), 0, 1000, 42, 4200, 3, 5, Scope::Internal);
        let recs = t.drain();
        assert_eq!(recs[0].total_bytes(), 4242);
        assert_eq!(recs[0].scope, Scope::Internal);
        assert_eq!(t.completed_count(), 0, "drain empties the buffer");
    }

    #[test]
    fn distinct_keys_tracked_separately() {
        let mut t = FlowTable::new();
        t.on_new(key(1), 0, Scope::External);
        t.on_new(key(2), 0, Scope::External);
        t.on_packet(&key(1), 1, Direction::Original, 100);
        t.on_packet(&key(2), 1, Direction::Original, 900);
        t.on_destroy(&key(1), 10);
        t.on_destroy(&key(2), 10);
        let mut recs = t.drain();
        recs.sort_by_key(|r| r.bytes_orig);
        assert_eq!(recs[0].bytes_orig, 100);
        assert_eq!(recs[1].bytes_orig, 900);
    }
}
