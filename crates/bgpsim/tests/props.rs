//! Property tests for the RIB: LPM origin lookup vs a brute-force oracle.

use bgpsim::{AsId, Rib};
use iputil::prefix::Prefix4;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Prefix4> {
    (any::<u32>(), 0u8..=28).prop_map(|(bits, len)| Prefix4::new(Ipv4Addr::from(bits), len))
}

proptest! {
    /// The RIB's origin answer equals a linear scan for the longest
    /// covering announcement.
    #[test]
    fn origin_matches_linear_oracle(
        announcements in proptest::collection::vec((arb_prefix(), 1u32..100), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut rib = Rib::new();
        // Later announcements of the same prefix replace earlier ones,
        // mirrored in the oracle by keeping the last.
        let mut table: Vec<(Prefix4, AsId)> = Vec::new();
        for (p, asn) in &announcements {
            rib.announce4(*p, AsId(*asn));
            table.retain(|(q, _)| q != p);
            table.push((*p, AsId(*asn)));
        }
        for probe in probes {
            let addr = Ipv4Addr::from(probe);
            let oracle = table
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len())
                .map(|(_, asn)| *asn);
            prop_assert_eq!(rib.origin_of(std::net::IpAddr::V4(addr)), oracle, "{}", addr);
        }
    }

    /// Withdrawing everything empties the RIB and uncovers all probes.
    #[test]
    fn withdraw_all(announcements in proptest::collection::vec((arb_prefix(), 1u32..100), 1..30)) {
        let mut rib = Rib::new();
        for (p, asn) in &announcements {
            rib.announce4(*p, AsId(*asn));
        }
        for (p, _) in &announcements {
            rib.withdraw(iputil::prefix::Prefix::V4(*p));
        }
        prop_assert!(rib.is_empty());
        for (p, _) in &announcements {
            prop_assert_eq!(rib.origin_of(std::net::IpAddr::V4(p.network())), None);
        }
    }
}
