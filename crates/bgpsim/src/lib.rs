//! # bgpsim — a BGP-shaped routing information base
//!
//! The paper attributes traffic and hosted domains to operators in two hops:
//!
//! 1. **address → origin AS** from BGP routing tables (§3.4, §5.1), and
//! 2. **AS → organization** from CAIDA's AS-to-Organization dataset (§5.1).
//!
//! This crate models both. The [`rib::Rib`] stores announced prefixes in
//! longest-prefix-match tries (one per family) and answers `origin_of`
//! queries; the [`registry::Registry`] stores AS metadata (name, category
//! for Fig 4 grouping) and the AS→Org mapping — including the mapping's
//! real-world warts the paper highlights: the same company split across
//! multiple org entries (Akamai International B.V. vs Akamai Technologies,
//! Inc.) and partnerships that cross org lines (Bunnyway on Datacamp
//! infrastructure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod rib;

pub use registry::{AsCategory, AsId, AsInfo, OrgId, Organization, Registry};
pub use rib::Rib;
