//! The routing information base: announced prefixes → origin AS.

use crate::registry::AsId;
use iputil::multibit::{Frozen4, Frozen6};
use iputil::prefix::{Prefix, Prefix4, Prefix6};
use iputil::trie::{Lpm4, Lpm6};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A dual-family RIB mapping announced prefixes to their origin AS.
///
/// The radix tries are the mutable authority; [`Rib::compile`] freezes both
/// families into flattened multibit engines (`iputil::multibit`) that answer
/// the same queries faster. Any announce/withdraw invalidates the affected
/// family's frozen engine — lookups silently fall back to the trie, so
/// correctness never depends on recompiling (see the `iputil` crate docs'
/// LPM architecture section).
///
/// ```
/// use bgpsim::{Rib, AsId};
/// let mut rib = Rib::new();
/// rib.announce("198.51.100.0/24".parse().unwrap(), AsId(64500));
/// assert_eq!(rib.origin_of("198.51.100.7".parse().unwrap()), Some(AsId(64500)));
/// assert_eq!(rib.origin_of("198.51.101.7".parse().unwrap()), None);
/// rib.compile();
/// assert!(rib.is_compiled());
/// assert_eq!(rib.origin_of("198.51.100.7".parse().unwrap()), Some(AsId(64500)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rib {
    v4: Lpm4<AsId>,
    v6: Lpm6<AsId>,
    frozen4: Option<Frozen4<AsId>>,
    frozen6: Option<Frozen6<AsId>>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Rib {
        Rib::default()
    }

    /// Announce a prefix with an origin AS. Re-announcing an existing prefix
    /// replaces the origin (no path attributes are modelled — origin
    /// attribution is all the analyses need). Returns the previous origin.
    /// Invalidates the family's frozen engine, if compiled.
    pub fn announce(&mut self, prefix: Prefix, origin: AsId) -> Option<AsId> {
        match prefix {
            Prefix::V4(p) => self.announce4(p, origin),
            Prefix::V6(p) => self.announce6(p, origin),
        }
    }

    /// Announce an IPv4 prefix.
    pub fn announce4(&mut self, prefix: Prefix4, origin: AsId) -> Option<AsId> {
        self.invalidate4();
        self.v4.insert(prefix, origin)
    }

    /// Announce an IPv6 prefix.
    pub fn announce6(&mut self, prefix: Prefix6, origin: AsId) -> Option<AsId> {
        self.invalidate6();
        self.v6.insert(prefix, origin)
    }

    /// Withdraw a prefix. Returns the origin that was removed. Invalidates
    /// the family's frozen engine, if compiled.
    pub fn withdraw(&mut self, prefix: Prefix) -> Option<AsId> {
        match prefix {
            Prefix::V4(p) => {
                self.invalidate4();
                self.v4.remove(p)
            }
            Prefix::V6(p) => {
                self.invalidate6();
                self.v6.remove(p)
            }
        }
    }

    fn invalidate4(&mut self) {
        if self.frozen4.take().is_some() {
            obs::counter_add("lpm.frozen_invalidations", 1);
        }
    }

    fn invalidate6(&mut self) {
        if self.frozen6.take().is_some() {
            obs::counter_add("lpm.frozen_invalidations", 1);
        }
    }

    /// Compile both families into frozen multibit engines. Idempotent;
    /// re-run after churn to regain the fast path (stale engines were
    /// already dropped by the mutation itself). Records the compile as an
    /// obs span plus footprint gauges — deterministic counters only, so
    /// scenario digests stay byte-identical with the plane enabled.
    pub fn compile(&mut self) {
        let _span = obs::span!("lpm-compile");
        let f4 = self.v4.freeze();
        let f6 = self.v6.freeze();
        obs::gauge_max(
            "lpm.frozen_nodes",
            (f4.node_count() + f6.node_count()) as u64,
        );
        obs::gauge_max(
            "lpm.frozen_bytes",
            (f4.heap_bytes() + f6.heap_bytes()) as u64,
        );
        self.frozen4 = Some(f4);
        self.frozen6 = Some(f6);
    }

    /// Drop the frozen engines; every lookup walks the radix trie again
    /// (the byte-identical slow path — the registry tests compare the two).
    pub fn thaw(&mut self) {
        self.frozen4 = None;
        self.frozen6 = None;
    }

    /// True while both families hold a current frozen engine.
    pub fn is_compiled(&self) -> bool {
        self.frozen4.is_some() && self.frozen6.is_some()
    }

    /// Longest-prefix-match origin lookup for an address.
    pub fn origin_of(&self, addr: IpAddr) -> Option<AsId> {
        match addr {
            IpAddr::V4(a) => match &self.frozen4 {
                Some(f) => f.longest_match(a).map(|(_, asn)| *asn),
                None => self.v4.longest_match(a).map(|(_, asn)| *asn),
            },
            IpAddr::V6(a) => match &self.frozen6 {
                Some(f) => f.longest_match(a).map(|(_, asn)| *asn),
                None => self.v6.longest_match(a).map(|(_, asn)| *asn),
            },
        }
    }

    /// Batched [`Rib::origin_of`] preserving input order.
    ///
    /// Splits the batch by family and answers each through the LPM engine's
    /// memoized batch path, so duplicate addresses (shared CDN edges) are
    /// resolved once — the cloud-attribution pipeline routes entire crawl
    /// epochs through this. On a compiled RIB the frozen engines resolve
    /// duplicate-poor batches with interleaved prefetching walks.
    pub fn origins_of(&self, addrs: &[IpAddr]) -> Vec<Option<AsId>> {
        let mut v4_addrs = Vec::new();
        let mut v6_addrs = Vec::new();
        for addr in addrs {
            match addr {
                IpAddr::V4(a) => v4_addrs.push(*a),
                IpAddr::V6(a) => v6_addrs.push(*a),
            }
        }
        let v4_results = self.origins_of_v4(&v4_addrs);
        let v6_results = self.origins_of_v6(&v6_addrs);
        let (mut i4, mut i6) = (0usize, 0usize);
        addrs
            .iter()
            .map(|addr| match addr {
                IpAddr::V4(_) => {
                    let r = v4_results[i4];
                    i4 += 1;
                    r
                }
                IpAddr::V6(_) => {
                    let r = v6_results[i6];
                    i6 += 1;
                    r
                }
            })
            .collect()
    }

    /// Batched IPv4 origin lookup: the family-presplit twin of
    /// [`Rib::origins_of`] for callers that already hold typed addresses —
    /// skips the `IpAddr` split/reassembly pass and the per-hit `Prefix`
    /// construction (the engines' value-only path), which is measurable at
    /// attribution scale.
    pub fn origins_of_v4(&self, addrs: &[Ipv4Addr]) -> Vec<Option<AsId>> {
        let vals = match &self.frozen4 {
            Some(f) => f.values_many(addrs),
            None => self.v4.values_many(addrs),
        };
        vals.into_iter().map(|r| r.copied()).collect()
    }

    /// Batched IPv6 origin lookup (see [`Rib::origins_of_v4`]).
    pub fn origins_of_v6(&self, addrs: &[Ipv6Addr]) -> Vec<Option<AsId>> {
        let vals = match &self.frozen6 {
            Some(f) => f.values_many(addrs),
            None => self.v6.values_many(addrs),
        };
        vals.into_iter().map(|r| r.copied()).collect()
    }

    /// The matched prefix and origin for an address, if covered.
    pub fn match_of(&self, addr: IpAddr) -> Option<(Prefix, AsId)> {
        match addr {
            IpAddr::V4(a) => match &self.frozen4 {
                Some(f) => f.longest_match(a).map(|(p, asn)| (Prefix::V4(p), *asn)),
                None => self
                    .v4
                    .longest_match(a)
                    .map(|(p, asn)| (Prefix::V4(p), *asn)),
            },
            IpAddr::V6(a) => match &self.frozen6 {
                Some(f) => f.longest_match(a).map(|(p, asn)| (Prefix::V6(p), *asn)),
                None => self
                    .v6
                    .longest_match(a)
                    .map(|(p, asn)| (Prefix::V6(p), *asn)),
            },
        }
    }

    /// Number of announced prefixes (both families).
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_match_wins() {
        let mut rib = Rib::new();
        rib.announce("10.0.0.0/8".parse().unwrap(), AsId(1));
        rib.announce("10.99.0.0/16".parse().unwrap(), AsId(2));
        assert_eq!(rib.origin_of("10.99.1.1".parse().unwrap()), Some(AsId(2)));
        assert_eq!(rib.origin_of("10.98.1.1".parse().unwrap()), Some(AsId(1)));
    }

    #[test]
    fn families_are_independent() {
        let mut rib = Rib::new();
        rib.announce("203.0.113.0/24".parse().unwrap(), AsId(10));
        rib.announce("2001:db8::/32".parse().unwrap(), AsId(20));
        assert_eq!(
            rib.origin_of("203.0.113.1".parse().unwrap()),
            Some(AsId(10))
        );
        assert_eq!(
            rib.origin_of("2001:db8::1".parse().unwrap()),
            Some(AsId(20))
        );
        assert_eq!(rib.len(), 2);
    }

    #[test]
    fn reannounce_replaces_origin() {
        let mut rib = Rib::new();
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        assert_eq!(rib.announce(p, AsId(1)), None);
        assert_eq!(rib.announce(p, AsId(2)), Some(AsId(1)));
        assert_eq!(rib.origin_of("192.0.2.1".parse().unwrap()), Some(AsId(2)));
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn withdraw_uncovers() {
        let mut rib = Rib::new();
        rib.announce("10.0.0.0/8".parse().unwrap(), AsId(1));
        rib.announce("10.5.0.0/16".parse().unwrap(), AsId(2));
        assert_eq!(rib.withdraw("10.5.0.0/16".parse().unwrap()), Some(AsId(2)));
        assert_eq!(rib.origin_of("10.5.1.1".parse().unwrap()), Some(AsId(1)));
        assert_eq!(rib.withdraw("10.0.0.0/8".parse().unwrap()), Some(AsId(1)));
        assert_eq!(rib.origin_of("10.5.1.1".parse().unwrap()), None);
        assert!(rib.is_empty());
    }

    #[test]
    fn match_of_reports_prefix() {
        let mut rib = Rib::new();
        rib.announce("198.51.100.0/24".parse().unwrap(), AsId(7));
        let (p, asn) = rib.match_of("198.51.100.20".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "198.51.100.0/24");
        assert_eq!(asn, AsId(7));
    }

    #[test]
    fn compiled_answers_match_and_churn_falls_back() {
        let mut rib = Rib::new();
        rib.announce("10.0.0.0/8".parse().unwrap(), AsId(1));
        rib.announce("10.99.0.0/16".parse().unwrap(), AsId(2));
        rib.announce("2001:db8::/32".parse().unwrap(), AsId(3));
        let thawed = rib.clone();
        rib.compile();
        assert!(rib.is_compiled());
        let addrs: Vec<IpAddr> = [
            "10.99.1.1",
            "10.98.1.1",
            "192.0.2.1",
            "2001:db8::1",
            "2002::1",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        for &a in &addrs {
            assert_eq!(rib.origin_of(a), thawed.origin_of(a), "{a}");
            assert_eq!(rib.match_of(a), thawed.match_of(a), "{a}");
        }
        assert_eq!(rib.origins_of(&addrs), thawed.origins_of(&addrs));
        // Churn on one family drops that engine; answers stay correct.
        rib.announce("10.99.0.0/24".parse().unwrap(), AsId(9));
        assert!(!rib.is_compiled());
        assert_eq!(
            rib.origin_of("10.99.0.1".parse().unwrap()),
            Some(AsId(9)),
            "post-churn lookup must see the new announcement"
        );
        rib.compile();
        assert_eq!(rib.origin_of("10.99.0.1".parse().unwrap()), Some(AsId(9)));
        // Withdraw invalidates too, and thaw drops everything.
        rib.withdraw("10.99.0.0/24".parse().unwrap());
        assert!(!rib.is_compiled());
        rib.compile();
        rib.thaw();
        assert!(!rib.is_compiled());
        assert_eq!(rib.origin_of("10.99.1.1".parse().unwrap()), Some(AsId(2)));
    }
}
