//! The routing information base: announced prefixes → origin AS.

use crate::registry::AsId;
use iputil::prefix::{Prefix, Prefix4, Prefix6};
use iputil::trie::{Lpm4, Lpm6};
use std::net::IpAddr;

/// A dual-family RIB mapping announced prefixes to their origin AS.
///
/// ```
/// use bgpsim::{Rib, AsId};
/// let mut rib = Rib::new();
/// rib.announce("198.51.100.0/24".parse().unwrap(), AsId(64500));
/// assert_eq!(rib.origin_of("198.51.100.7".parse().unwrap()), Some(AsId(64500)));
/// assert_eq!(rib.origin_of("198.51.101.7".parse().unwrap()), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rib {
    v4: Lpm4<AsId>,
    v6: Lpm6<AsId>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Rib {
        Rib::default()
    }

    /// Announce a prefix with an origin AS. Re-announcing an existing prefix
    /// replaces the origin (no path attributes are modelled — origin
    /// attribution is all the analyses need). Returns the previous origin.
    pub fn announce(&mut self, prefix: Prefix, origin: AsId) -> Option<AsId> {
        match prefix {
            Prefix::V4(p) => self.v4.insert(p, origin),
            Prefix::V6(p) => self.v6.insert(p, origin),
        }
    }

    /// Announce an IPv4 prefix.
    pub fn announce4(&mut self, prefix: Prefix4, origin: AsId) -> Option<AsId> {
        self.v4.insert(prefix, origin)
    }

    /// Announce an IPv6 prefix.
    pub fn announce6(&mut self, prefix: Prefix6, origin: AsId) -> Option<AsId> {
        self.v6.insert(prefix, origin)
    }

    /// Withdraw a prefix. Returns the origin that was removed.
    pub fn withdraw(&mut self, prefix: Prefix) -> Option<AsId> {
        match prefix {
            Prefix::V4(p) => self.v4.remove(p),
            Prefix::V6(p) => self.v6.remove(p),
        }
    }

    /// Longest-prefix-match origin lookup for an address.
    pub fn origin_of(&self, addr: IpAddr) -> Option<AsId> {
        match addr {
            IpAddr::V4(a) => self.v4.longest_match(a).map(|(_, asn)| *asn),
            IpAddr::V6(a) => self.v6.longest_match(a).map(|(_, asn)| *asn),
        }
    }

    /// Batched [`Rib::origin_of`] preserving input order.
    ///
    /// Splits the batch by family and answers each through the LPM engine's
    /// memoized batch path, so duplicate addresses (shared CDN edges) are
    /// resolved once — the cloud-attribution pipeline routes entire crawl
    /// epochs through this.
    pub fn origins_of(&self, addrs: &[IpAddr]) -> Vec<Option<AsId>> {
        let mut v4_addrs = Vec::new();
        let mut v6_addrs = Vec::new();
        for addr in addrs {
            match addr {
                IpAddr::V4(a) => v4_addrs.push(*a),
                IpAddr::V6(a) => v6_addrs.push(*a),
            }
        }
        let v4_results = self.v4.longest_match_many(&v4_addrs);
        let v6_results = self.v6.longest_match_many(&v6_addrs);
        let (mut i4, mut i6) = (0usize, 0usize);
        addrs
            .iter()
            .map(|addr| match addr {
                IpAddr::V4(_) => {
                    let r = v4_results[i4].map(|(_, asn)| *asn);
                    i4 += 1;
                    r
                }
                IpAddr::V6(_) => {
                    let r = v6_results[i6].map(|(_, asn)| *asn);
                    i6 += 1;
                    r
                }
            })
            .collect()
    }

    /// The matched prefix and origin for an address, if covered.
    pub fn match_of(&self, addr: IpAddr) -> Option<(Prefix, AsId)> {
        match addr {
            IpAddr::V4(a) => self
                .v4
                .longest_match(a)
                .map(|(p, asn)| (Prefix::V4(p), *asn)),
            IpAddr::V6(a) => self
                .v6
                .longest_match(a)
                .map(|(p, asn)| (Prefix::V6(p), *asn)),
        }
    }

    /// Number of announced prefixes (both families).
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_match_wins() {
        let mut rib = Rib::new();
        rib.announce("10.0.0.0/8".parse().unwrap(), AsId(1));
        rib.announce("10.99.0.0/16".parse().unwrap(), AsId(2));
        assert_eq!(rib.origin_of("10.99.1.1".parse().unwrap()), Some(AsId(2)));
        assert_eq!(rib.origin_of("10.98.1.1".parse().unwrap()), Some(AsId(1)));
    }

    #[test]
    fn families_are_independent() {
        let mut rib = Rib::new();
        rib.announce("203.0.113.0/24".parse().unwrap(), AsId(10));
        rib.announce("2001:db8::/32".parse().unwrap(), AsId(20));
        assert_eq!(
            rib.origin_of("203.0.113.1".parse().unwrap()),
            Some(AsId(10))
        );
        assert_eq!(
            rib.origin_of("2001:db8::1".parse().unwrap()),
            Some(AsId(20))
        );
        assert_eq!(rib.len(), 2);
    }

    #[test]
    fn reannounce_replaces_origin() {
        let mut rib = Rib::new();
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        assert_eq!(rib.announce(p, AsId(1)), None);
        assert_eq!(rib.announce(p, AsId(2)), Some(AsId(1)));
        assert_eq!(rib.origin_of("192.0.2.1".parse().unwrap()), Some(AsId(2)));
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn withdraw_uncovers() {
        let mut rib = Rib::new();
        rib.announce("10.0.0.0/8".parse().unwrap(), AsId(1));
        rib.announce("10.5.0.0/16".parse().unwrap(), AsId(2));
        assert_eq!(rib.withdraw("10.5.0.0/16".parse().unwrap()), Some(AsId(2)));
        assert_eq!(rib.origin_of("10.5.1.1".parse().unwrap()), Some(AsId(1)));
        assert_eq!(rib.withdraw("10.0.0.0/8".parse().unwrap()), Some(AsId(1)));
        assert_eq!(rib.origin_of("10.5.1.1".parse().unwrap()), None);
        assert!(rib.is_empty());
    }

    #[test]
    fn match_of_reports_prefix() {
        let mut rib = Rib::new();
        rib.announce("198.51.100.0/24".parse().unwrap(), AsId(7));
        let (p, asn) = rib.match_of("198.51.100.20".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "198.51.100.0/24");
        assert_eq!(asn, AsId(7));
    }
}
