//! AS numbers, organizations, and the AS→Org mapping.
//!
//! The registry doubles as the suite's AS *symbol authority*: every
//! registered AS gets a dense `u32` symbol ([`Registry::as_sym`], assigned
//! in registration order), so per-AS aggregation state can live in a dense
//! [`iputil::sym::SymVec`] instead of a `HashMap<AsId, _>` — the unlock for
//! per-AS flow-fraction analyses at 100k-AS scale.

use iputil::sym::{Sym, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// An organization identifier in the AS-to-Org dataset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrgId(pub String);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for OrgId {
    fn from(s: &str) -> OrgId {
        OrgId(s.to_string())
    }
}

/// Functional category of an AS, matching the paper's Fig 4 grouping.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum AsCategory {
    /// Hosting and cloud providers (Fastly, Cloudflare, Akamai, AWS, ...).
    Hosting,
    /// Software development companies (Microsoft, Apple, Zoom).
    Software,
    /// Internet service providers (Comcast, AT&T, Frontier, ...).
    Isp,
    /// Web and social media (Google, Facebook, Wikimedia, ByteDance).
    WebSocial,
    /// Everything else (Netflix, Valve, Internet Archive, universities).
    Other,
}

impl AsCategory {
    /// All categories in the paper's presentation order.
    pub fn all() -> [AsCategory; 5] {
        [
            AsCategory::Hosting,
            AsCategory::Software,
            AsCategory::Isp,
            AsCategory::WebSocial,
            AsCategory::Other,
        ]
    }

    /// Human-readable label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            AsCategory::Hosting => "Hosting and Cloud Provider",
            AsCategory::Software => "Software Development",
            AsCategory::Isp => "ISP",
            AsCategory::WebSocial => "Web and Social Media",
            AsCategory::Other => "Other",
        }
    }
}

/// Metadata about one AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// AS number.
    pub asn: AsId,
    /// Registry name, e.g. `"CLOUDFLARENET"`.
    pub name: String,
    /// Owning organization in the AS-to-Org dataset.
    pub org: OrgId,
    /// Functional category.
    pub category: AsCategory,
}

/// An organization entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// Stable identifier.
    pub id: OrgId,
    /// Display name, e.g. `"Cloudflare, Inc."`.
    pub name: String,
}

/// The AS and organization registry (CAIDA AS2Org analogue).
///
/// AS metadata is stored densely: `add_as` interns the ASN into a
/// [`SymbolTable`] and keeps the [`AsInfo`]s in a symbol-indexed vector,
/// so [`Registry::as_sym`] is the one hash lookup an attribution hot path
/// pays before switching to integer indexing.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    as_syms: SymbolTable<AsId>,
    /// Indexed by the symbol of the AS at `as_syms` (every symbol has an
    /// info: `add_as` assigns both together).
    infos: Vec<AsInfo>,
    orgs: HashMap<OrgId, Organization>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register an organization (idempotent by id; last name wins).
    pub fn add_org(&mut self, id: OrgId, name: &str) {
        self.orgs.insert(
            id.clone(),
            Organization {
                id,
                name: name.to_string(),
            },
        );
    }

    /// Register an AS (idempotent by ASN; re-registration replaces the
    /// metadata but keeps the dense symbol).
    ///
    /// # Panics
    /// Panics if the org has not been registered first — the generator must
    /// create organizations before assigning ASes to them.
    pub fn add_as(&mut self, asn: AsId, name: &str, org: OrgId, category: AsCategory) {
        assert!(
            self.orgs.contains_key(&org),
            "org {org} not registered before {asn}"
        );
        let info = AsInfo {
            asn,
            name: name.to_string(),
            org,
            category,
        };
        let (sym, new) = self.as_syms.intern_full(&asn);
        if new {
            debug_assert_eq!(sym.index(), self.infos.len());
            self.infos.push(info);
        } else {
            self.infos[sym.index()] = info;
        }
    }

    /// Metadata for an AS.
    pub fn as_info(&self, asn: AsId) -> Option<&AsInfo> {
        self.as_syms.lookup(&asn).map(|s| &self.infos[s.index()])
    }

    /// The dense symbol of a registered AS: assigned in registration order,
    /// contiguous in `0..as_count()`. Aggregators key dense
    /// [`SymVec`](iputil::sym::SymVec)s by it.
    pub fn as_sym(&self, asn: AsId) -> Option<Sym> {
        self.as_syms.lookup(&asn)
    }

    /// Metadata behind a dense AS symbol.
    ///
    /// # Panics
    /// Panics when the symbol did not come from this registry.
    pub fn info_of_sym(&self, sym: Sym) -> &AsInfo {
        &self.infos[sym.index()]
    }

    /// Organization for an AS (the AS2Org lookup).
    pub fn org_of(&self, asn: AsId) -> Option<&Organization> {
        self.as_info(asn).and_then(|a| self.orgs.get(&a.org))
    }

    /// Organization by id.
    pub fn org(&self, id: &OrgId) -> Option<&Organization> {
        self.orgs.get(id)
    }

    /// All registered ASes, in registration (dense-symbol) order.
    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.infos.iter()
    }

    /// All registered organizations, in [`OrgId`] order (the backing map is
    /// hash-ordered; sorting keeps every caller deterministic).
    pub fn orgs(&self) -> impl Iterator<Item = &Organization> {
        let mut sorted: Vec<&Organization> = self.orgs.values().collect(); // tidy:allow(nondeterministic-iteration): collected and sorted by OrgId on the next line
        sorted.sort_by(|a, b| a.id.cmp(&b.id));
        sorted.into_iter()
    }

    /// Number of registered ASes (== the dense symbol space).
    pub fn as_count(&self) -> usize {
        self.infos.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        r.add_org("org-cf".into(), "Cloudflare, Inc.");
        r.add_as(
            AsId(13335),
            "CLOUDFLARENET",
            "org-cf".into(),
            AsCategory::Hosting,
        );
        let info = r.as_info(AsId(13335)).unwrap();
        assert_eq!(info.name, "CLOUDFLARENET");
        assert_eq!(r.org_of(AsId(13335)).unwrap().name, "Cloudflare, Inc.");
        assert_eq!(r.as_count(), 1);
    }

    #[test]
    fn same_org_many_ases() {
        let mut r = Registry::new();
        r.add_org("org-cf".into(), "Cloudflare, Inc.");
        r.add_as(
            AsId(13335),
            "CLOUDFLARENET",
            "org-cf".into(),
            AsCategory::Hosting,
        );
        r.add_as(
            AsId(209242),
            "CLOUDFLARESPECTRUM",
            "org-cf".into(),
            AsCategory::Hosting,
        );
        assert_eq!(
            r.org_of(AsId(13335)).unwrap().id,
            r.org_of(AsId(209242)).unwrap().id
        );
    }

    #[test]
    fn org_split_modelled() {
        // The Akamai wart: two org entries for one company.
        let mut r = Registry::new();
        r.add_org("org-akam-intl".into(), "Akamai International B.V.");
        r.add_org("org-akam-us".into(), "Akamai Technologies, Inc.");
        r.add_as(
            AsId(20940),
            "AKAMAI-ASN1",
            "org-akam-intl".into(),
            AsCategory::Hosting,
        );
        r.add_as(
            AsId(16625),
            "AKAMAI-AS",
            "org-akam-us".into(),
            AsCategory::Hosting,
        );
        assert_ne!(
            r.org_of(AsId(20940)).unwrap().id,
            r.org_of(AsId(16625)).unwrap().id
        );
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn as_requires_org() {
        let mut r = Registry::new();
        r.add_as(AsId(1), "X", "nope".into(), AsCategory::Other);
    }

    #[test]
    fn missing_lookups_are_none() {
        let r = Registry::new();
        assert!(r.as_info(AsId(7)).is_none());
        assert!(r.org_of(AsId(7)).is_none());
    }

    #[test]
    fn dense_symbols_follow_registration_order() {
        let mut r = Registry::new();
        r.add_org("org-a".into(), "A");
        r.add_as(AsId(65010), "TEN", "org-a".into(), AsCategory::Other);
        r.add_as(AsId(65001), "ONE", "org-a".into(), AsCategory::Isp);
        let s10 = r.as_sym(AsId(65010)).unwrap();
        let s1 = r.as_sym(AsId(65001)).unwrap();
        assert_eq!((s10.index(), s1.index()), (0, 1));
        assert_eq!(r.info_of_sym(s1).name, "ONE");
        // Re-registration keeps the symbol, replaces the metadata.
        r.add_as(AsId(65010), "TEN-NEW", "org-a".into(), AsCategory::Isp);
        assert_eq!(r.as_sym(AsId(65010)), Some(s10));
        assert_eq!(r.info_of_sym(s10).name, "TEN-NEW");
        assert_eq!(r.as_count(), 2);
        // Iteration is in dense-symbol order.
        let names: Vec<&str> = r.ases().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["TEN-NEW", "ONE"]);
        assert_eq!(r.as_sym(AsId(7)), None);
    }

    #[test]
    fn category_labels() {
        assert_eq!(AsCategory::all().len(), 5);
        assert_eq!(AsCategory::Isp.label(), "ISP");
    }
}
