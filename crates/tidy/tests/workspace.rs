//! Tier-1 gate: the real workspace must be tidy-clean.
//!
//! This is the test that makes `cargo test -q` fail when someone commits a
//! `thread_rng()`, an undocumented `unsafe`, a hash-order iteration, or a
//! stale `tidy:allow` — the same engine the `tidy` binary and the CI step
//! run, pointed at the live tree.

use std::path::Path;

#[test]
fn workspace_is_tidy_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = tidy::run(&root, false).expect("tidy engine runs");
    assert!(
        outcome.files_scanned > 100,
        "walker found only {} files — workspace root misdetected?",
        outcome.files_scanned
    );
    let rendered: Vec<String> = outcome.findings.iter().map(|f| f.render()).collect();
    assert!(
        outcome.findings.is_empty(),
        "determinism contract violations:\n{}",
        rendered.join("\n")
    );
}
