#[test]
fn escaped_newline_line_drift() {
    let src = "fn f() -> String {\n    let s = \"a\\\nb\";\n    s\n}\nfn g(m: &std::collections::HashMap<u32, u32>) {\n    for v in m.values() {\n        let _ = v;\n    }\n}\n";
    let sf = tidy::source::SourceFile::parse("crates/core/src/x.rs", src);
    println!("input lines: {}", src.lines().count());
    println!("code lines: {}", sf.code.len());
    for (i, l) in sf.code.iter().enumerate() {
        println!("{:2}: {l}", i + 1);
    }
    let findings = tidy::check_source("crates/core/src/x.rs", src);
    for f in &findings {
        println!("FINDING {}", f.render());
    }
}
