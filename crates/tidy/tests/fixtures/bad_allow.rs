pub fn a() {
    // tidy:allow(nondeterministic-iteration)
}

pub fn b() {
    // tidy:allow(ambient-rng):
}

pub fn c() {
    // tidy:allow(no-such-lint): confidently wrong
}
