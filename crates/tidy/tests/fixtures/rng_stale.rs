pub fn jitter(seed: u64) -> u64 {
    // tidy:allow(ambient-rng): the rng below is seeded
    seed.wrapping_mul(6364136223846793005)
}
