use std::collections::HashMap;

pub fn total(map: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in map.iter() { // tidy:allow(nondeterministic-iteration): commutative sum, visit order cannot leak
        sum += v;
    }
    sum
}
