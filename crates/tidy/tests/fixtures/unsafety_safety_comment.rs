pub fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p points at a live byte.
    unsafe { *p }
}
