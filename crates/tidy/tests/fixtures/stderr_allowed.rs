pub fn warn() {
    eprintln!("something happened"); // tidy:allow(raw-stderr): fixture exercising the waiver path
}
