use std::collections::BTreeMap;

pub fn total(map: &BTreeMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in map.iter() { // tidy:allow(nondeterministic-iteration): BTreeMap needs no waiver
        sum += v;
    }
    sum
}
