use std::collections::HashMap;

pub fn names(index: &HashMap<String, u32>) -> Vec<String> {
    index
        .keys()
        .cloned()
        .collect()
}
