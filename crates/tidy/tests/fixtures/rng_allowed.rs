pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); // tidy:allow(ambient-rng): fixture exercising the waiver path
    rng.gen()
}
