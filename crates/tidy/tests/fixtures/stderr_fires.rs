pub fn warn() {
    eprintln!("something happened");
}
