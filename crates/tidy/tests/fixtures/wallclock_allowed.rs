pub fn stamp() -> std::time::Instant {
    // tidy:allow(wall-clock): diagnostic-only timing, never reaches a Report
    std::time::Instant::now()
}
