pub fn home() -> Option<String> {
    std::env::var("HOME").ok() // tidy:allow(unchecked-env): fixture exercising the waiver path
}
