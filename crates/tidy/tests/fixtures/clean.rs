use std::collections::BTreeMap;

pub fn total(map: &BTreeMap<String, u64>) -> u64 {
    map.values().sum()
}
