use std::collections::HashMap;

pub fn total(map: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in map.iter() {
        sum += v;
    }
    sum
}
