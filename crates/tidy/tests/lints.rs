//! Fixture tests: every lint fires on a minimal violation, is silenced by
//! a well-formed `tidy:allow`, and a directive that suppresses nothing is
//! itself reported.
//!
//! The fixtures live under `tests/fixtures/` — a path the workspace walker
//! skips, so the violations inside them never count against the real tree.

use tidy::check_source;

/// Check a fixture as if it were a library source in a non-allowlisted
/// crate.
fn lint(text: &str) -> Vec<tidy::Finding> {
    check_source("crates/core/src/fixture.rs", text)
}

/// The lints that fired, deduplicated in report order.
fn fired(text: &str) -> Vec<&'static str> {
    lint(text).into_iter().map(|f| f.lint).collect()
}

#[test]
fn clean_fixture_has_no_findings() {
    assert_eq!(lint(include_str!("fixtures/clean.rs")), vec![]);
}

#[test]
fn iteration_fires_with_file_and_line() {
    let findings = lint(include_str!("fixtures/iteration_fires.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "nondeterministic-iteration");
    assert_eq!(findings[0].file, "crates/core/src/fixture.rs");
    assert_eq!(findings[0].line, 5);
    assert!(findings[0].message.contains("`map`"));
}

#[test]
fn iteration_suppressed_by_trailing_allow() {
    assert_eq!(lint(include_str!("fixtures/iteration_allowed.rs")), vec![]);
}

#[test]
fn iteration_allow_on_btreemap_is_stale() {
    // A BTreeMap iteration never fires, so the directive excuses nothing.
    assert_eq!(
        fired(include_str!("fixtures/iteration_stale.rs")),
        vec!["stale-allow"]
    );
}

#[test]
fn iteration_sees_rustfmt_split_chains() {
    let findings = lint(include_str!("fixtures/iteration_split_chain.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "nondeterministic-iteration");
    assert_eq!(findings[0].line, 5, "should fire on the `.keys()` line");
}

#[test]
fn ambient_rng_fires_and_is_suppressible() {
    assert_eq!(
        fired(include_str!("fixtures/rng_fires.rs")),
        vec!["ambient-rng"]
    );
    assert_eq!(lint(include_str!("fixtures/rng_allowed.rs")), vec![]);
    assert_eq!(
        fired(include_str!("fixtures/rng_stale.rs")),
        vec!["stale-allow"]
    );
}

#[test]
fn ambient_rng_fires_even_in_test_code() {
    // Seeded determinism applies to tests too — a flaky test is still flaky.
    let text = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn f() {\n        let _ = rand::thread_rng();\n    }\n}\n";
    assert_eq!(fired(text), vec!["ambient-rng"]);
}

#[test]
fn wall_clock_fires_and_is_suppressible() {
    assert_eq!(
        fired(include_str!("fixtures/wallclock_fires.rs")),
        vec!["wall-clock"]
    );
    // Standalone directive on the line above covers the call line.
    assert_eq!(lint(include_str!("fixtures/wallclock_allowed.rs")), vec![]);
}

#[test]
fn wall_clock_respects_the_allowlist() {
    let text = include_str!("fixtures/wallclock_fires.rs");
    assert_eq!(check_source("crates/obs/src/span.rs", text), vec![]);
}

#[test]
fn undocumented_unsafe_fires_without_safety_comment() {
    let findings = lint(include_str!("fixtures/unsafety_fires.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "undocumented-unsafe");
    assert_eq!(findings[0].line, 2);
}

#[test]
fn adjacent_safety_comment_satisfies_unsafe() {
    assert_eq!(
        lint(include_str!("fixtures/unsafety_safety_comment.rs")),
        vec![]
    );
}

#[test]
fn raw_stderr_fires_and_is_suppressible() {
    assert_eq!(
        fired(include_str!("fixtures/stderr_fires.rs")),
        vec!["raw-stderr"]
    );
    assert_eq!(lint(include_str!("fixtures/stderr_allowed.rs")), vec![]);
}

#[test]
fn println_is_fine_in_a_binary_but_not_a_library() {
    let text = "pub fn out() {\n    println!(\"result\");\n}\n";
    assert_eq!(check_source("crates/core/src/main.rs", text), vec![]);
    assert_eq!(
        check_source("crates/core/src/out.rs", text)[0].lint,
        "raw-stderr"
    );
}

#[test]
fn unchecked_env_fires_and_is_suppressible() {
    assert_eq!(
        fired(include_str!("fixtures/envvar_fires.rs")),
        vec!["unchecked-env"]
    );
    assert_eq!(lint(include_str!("fixtures/envvar_allowed.rs")), vec![]);
}

#[test]
fn unchecked_env_respects_the_allowlist() {
    let text = include_str!("fixtures/envvar_fires.rs");
    assert_eq!(check_source("crates/obs/src/log.rs", text), vec![]);
}

#[test]
fn malformed_directives_are_reported() {
    let findings = lint(include_str!("fixtures/bad_allow.rs"));
    let lints: Vec<_> = findings.iter().map(|f| f.lint).collect();
    assert_eq!(lints, vec!["bad-allow"; 3], "{findings:?}");
    assert!(
        findings[0].message.contains("malformed"),
        "missing colon+reason"
    );
    assert!(findings[1].message.contains("no reason"), "empty reason");
    assert!(
        findings[2].message.contains("unknown lint"),
        "bad lint name"
    );
}

#[test]
fn allow_for_a_different_lint_does_not_suppress() {
    let text =
        "pub fn warn() {\n    eprintln!(\"x\"); // tidy:allow(wall-clock): wrong lint name\n}\n";
    let lints = fired(text);
    // The raw-stderr finding survives AND the mistargeted allow is stale.
    assert_eq!(lints, vec!["raw-stderr", "stale-allow"]);
}

#[test]
fn directives_in_doc_comments_are_prose_not_directives() {
    let text = "/// Suppress with `// tidy:allow(raw-stderr): reason`.\npub fn documented() {}\n";
    assert_eq!(lint(text), vec![]);
}

#[test]
fn patterns_inside_string_literals_do_not_fire() {
    let text =
        "pub fn help() -> &'static str {\n    \"call rand::thread_rng() and Instant::now()\"\n}\n";
    assert_eq!(lint(text), vec![]);
}

#[test]
fn findings_render_as_path_line_lint() {
    let f = &lint(include_str!("fixtures/rng_fires.rs"))[0];
    assert_eq!(
        f.render(),
        format!("crates/core/src/fixture.rs:2: [ambient-rng] {}", f.message)
    );
    let json = f.to_json();
    assert!(json.contains("\"lint\":\"ambient-rng\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");
}
