//! Lexical model of one Rust source file.
//!
//! The lints are plain line analyses, but a naive `line.contains(..)` scan
//! would fire on pattern names inside comments, doc prose, and string
//! literals (this crate's own lint tables would trip every lint). So each
//! file is first split by a small lexer into three parallel views:
//!
//! * `code` — the source with every comment and every string/char literal
//!   body blanked out (delimiters kept, so `("` still reads as `("`),
//! * `comments` — the comment segments on each line, tagged plain vs doc
//!   (directives live only in plain `//` comments; doc prose never counts),
//! * `in_test_region` — per-line flag for `#[cfg(test)]` items, computed by
//!   brace tracking over the sanitized code.
//!
//! The lexer understands line/doc comments, nested block comments, string
//! escapes, raw strings (`r#".."#`), byte strings, and the char-literal vs
//! lifetime ambiguity (`'x'` vs `'x`). It does not expand macros or parse
//! items — tidy is a heuristic contract checker, not a compiler.

/// Where a comment segment came from; only `Plain` line comments may carry
/// `tidy:allow` directives, so documenting the directive syntax in rustdoc
/// prose does not create a (stale) directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    /// `// ..` (including `////` dividers).
    Plain,
    /// `/// ..` or `//! ..`.
    Doc,
    /// `/* .. */`, one segment per line spanned.
    Block,
    /// `/** .. */` or `/*! .. */`.
    DocBlock,
}

/// One comment segment on one line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Segment origin.
    pub kind: CommentKind,
    /// Text after the opening delimiter (and before `*/` for blocks).
    pub text: String,
}

/// An inline suppression: `// tidy:allow(lint-name): reason`.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive comment sits on.
    pub line: usize,
    /// Lint name inside the parentheses.
    pub lint: String,
    /// Justification after the colon (may be empty — reported as bad-allow).
    pub reason: String,
    /// Missing `(name)` / `:` syntax entirely.
    pub malformed: bool,
    /// 1-based line whose findings this directive suppresses: its own line
    /// when trailing code, otherwise the next line carrying code. `None`
    /// when no such line exists (always stale).
    pub target: Option<usize>,
}

/// A parsed source file ready for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub rel_path: String,
    /// Owning crate directory name (`iputil`, `tidy`, …; `ipv6view` for the
    /// facade's root `src/`/`examples/`/`tests/`).
    pub crate_name: String,
    /// File lives under a `tests/`, `benches/`, or `examples/` directory.
    pub is_test_file: bool,
    /// File is a binary target root (`main.rs` or under `src/bin/`).
    pub is_bin: bool,
    /// Sanitized code lines (comments and literal bodies blanked).
    pub code: Vec<String>,
    /// Comment segments per line (parallel to `code`).
    pub comments: Vec<Vec<Comment>>,
    /// Per-line: inside a `#[cfg(test)]` item (parallel to `code`).
    pub in_test_region: Vec<bool>,
    /// All `tidy:allow` directives found in plain line comments.
    pub directives: Vec<Directive>,
}

impl SourceFile {
    /// Lex `text` into the line views and scan for directives.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let (code, comments) = sanitize(text);
        let in_test_region = test_regions(&code);
        let directives = find_directives(&code, &comments);
        let rel = rel_path.replace('\\', "/");
        let crate_name = match rel.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or("unknown").to_string(),
            None => "ipv6view".to_string(),
        };
        let is_test_file = ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|seg| rel.contains(seg))
            || rel.starts_with("tests/")
            || rel.starts_with("examples/");
        let is_bin = rel.ends_with("/main.rs") || rel.contains("/src/bin/");
        SourceFile {
            rel_path: rel,
            crate_name,
            is_test_file,
            is_bin,
            code,
            comments,
            in_test_region,
            directives,
        }
    }

    /// Is the (1-based) line test code — either a test file or inside a
    /// `#[cfg(test)]` region?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test_file || self.in_test_region.get(line.wrapping_sub(1)) == Some(&true)
    }

    /// Do the comments on the (1-based) lines `line-back ..= line` mention
    /// `needle`? Used for the `SAFETY:` adjacency check.
    pub fn comment_nearby(&self, line: usize, back: usize, needle: &str) -> bool {
        let end = line.min(self.comments.len());
        let start = end.saturating_sub(back + 1);
        self.comments[start..end]
            .iter()
            .flatten()
            .any(|c| c.text.contains(needle))
    }
}

/// Does `token` occur in `line` with non-identifier characters (or the line
/// edge) on both sides?
pub fn has_word(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let at = from + pos;
        let pre_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + token.len();
        let post_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = at + token.len().max(1);
    }
    false
}

#[derive(Debug, Clone, Copy)]
enum State {
    Code,
    /// `// ..` until end of line.
    Line,
    /// `/* .. */`, possibly nested.
    Block {
        depth: u32,
        kind: CommentKind,
    },
    /// `".."` / `b".."`.
    Str,
    /// `r##".."##` with the given number of hashes.
    RawStr {
        hashes: usize,
    },
    /// `'..'` char or byte literal.
    Char,
}

/// Split `text` into sanitized code lines and per-line comment segments.
fn sanitize(text: &str) -> (Vec<String>, Vec<Vec<Comment>>) {
    let chars: Vec<char> = text.chars().collect();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<Vec<Comment>> = Vec::new();
    let mut code = String::new();
    let mut segs: Vec<Comment> = Vec::new();
    let mut cur: Option<Comment> = None;
    let mut state = State::Code;
    let mut i = 0;

    // Could the raw-string / byte-string prefix starting at `at` be a prefix
    // rather than part of an identifier?
    let prefix_ok = |at: usize| at == 0 || !chars[at - 1].is_alphanumeric() && chars[at - 1] != '_';
    // Length of a raw-string opener `r#*"` at `at` (after the `r`), if any.
    let raw_open = |at: usize| -> Option<usize> {
        let mut h = 0;
        while chars.get(at + h) == Some(&'#') {
            h += 1;
        }
        (chars.get(at + h) == Some(&'"')).then_some(h)
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if let State::Line = state {
                state = State::Code;
            }
            if let Some(seg) = cur.take() {
                segs.push(seg);
                // A block comment keeps collecting on the next line.
                if let State::Block { kind, .. } = state {
                    cur = Some(Comment {
                        kind,
                        text: String::new(),
                    });
                }
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut segs));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    let third = chars.get(i + 2).copied();
                    let fourth = chars.get(i + 3).copied();
                    let kind = if (third == Some('/') && fourth != Some('/')) || third == Some('!')
                    {
                        CommentKind::Doc
                    } else {
                        CommentKind::Plain
                    };
                    cur = Some(Comment {
                        kind,
                        text: String::new(),
                    });
                    state = State::Line;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    let third = chars.get(i + 2).copied();
                    let kind = if third == Some('*') || third == Some('!') {
                        CommentKind::DocBlock
                    } else {
                        CommentKind::Block
                    };
                    cur = Some(Comment {
                        kind,
                        text: String::new(),
                    });
                    state = State::Block { depth: 1, kind };
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' && prefix_ok(i) && raw_open(i + 1).is_some() {
                    let hashes = raw_open(i + 1).unwrap_or(0);
                    code.push('"');
                    state = State::RawStr { hashes };
                    i += 2 + hashes;
                } else if c == 'b' && prefix_ok(i) && next == Some('"') {
                    code.push('"');
                    state = State::Str;
                    i += 2;
                } else if c == 'b' && prefix_ok(i) && next == Some('r') && raw_open(i + 2).is_some()
                {
                    let hashes = raw_open(i + 2).unwrap_or(0);
                    code.push('"');
                    state = State::RawStr { hashes };
                    i += 3 + hashes;
                } else if c == 'b' && prefix_ok(i) && next == Some('\'') {
                    code.push_str("''");
                    state = State::Char;
                    i += 2;
                } else if c == '\'' {
                    // Char literal vs lifetime: `'\..` and `'x'` are
                    // literals; anything else (`'a`, `'static`) a lifetime.
                    if next == Some('\\') {
                        code.push_str("''");
                        state = State::Char;
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        code.push_str("''");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::Line => {
                if let Some(seg) = cur.as_mut() {
                    seg.text.push(c);
                }
                i += 1;
            }
            State::Block { depth, kind } => {
                if c == '/' && next == Some('*') {
                    state = State::Block {
                        depth: depth + 1,
                        kind,
                    };
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        if let Some(seg) = cur.take() {
                            segs.push(seg);
                        }
                        state = State::Code;
                    } else {
                        state = State::Block {
                            depth: depth - 1,
                            kind,
                        };
                    }
                    i += 2;
                } else {
                    if let Some(seg) = cur.as_mut() {
                        seg.text.push(c);
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && (0..hashes).all(|h| chars.get(i + 1 + h) == Some(&'#')) {
                    code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if let Some(seg) = cur.take() {
        segs.push(seg);
    }
    if !code.is_empty() || !segs.is_empty() {
        code_lines.push(code);
        comment_lines.push(segs);
    }
    (code_lines, comment_lines)
}

/// Mark the lines of every `#[cfg(test)]` item by brace tracking over the
/// sanitized code (string/char bodies are already blanked, so every brace
/// seen is structural).
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut li = 0;
    while li < code.len() {
        if !code[li].contains("#[cfg(test)]") {
            li += 1;
            continue;
        }
        // Walk forward to the item's opening `{`; a `;` first means an
        // item with no body (e.g. a `use`) — mark just those lines.
        let mut depth: i32 = 0;
        let mut opened = false;
        let mut lj = li;
        'scan: while lj < code.len() && (opened || lj - li <= 5) {
            let seg = if lj == li {
                // Skip the attribute itself so `(` `)` inside it are ignored.
                match code[lj].find("#[cfg(test)]") {
                    Some(p) => &code[lj][p + "#[cfg(test)]".len()..],
                    None => code[lj].as_str(),
                }
            } else {
                code[lj].as_str()
            };
            for ch in seg.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            flags[li..=lj].iter_mut().for_each(|f| *f = true);
                            li = lj;
                            break 'scan;
                        }
                    }
                    ';' if !opened => {
                        flags[li..=lj].iter_mut().for_each(|f| *f = true);
                        li = lj;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            lj += 1;
        }
        li += 1;
    }
    flags
}

/// Scan plain line comments for `tidy:allow(lint): reason` directives and
/// resolve each one's target line.
fn find_directives(code: &[String], comments: &[Vec<Comment>]) -> Vec<Directive> {
    let mut out = Vec::new();
    for (idx, segs) in comments.iter().enumerate() {
        for seg in segs {
            if seg.kind != CommentKind::Plain {
                continue;
            }
            let text = seg.text.trim_start();
            let Some(rest) = text.strip_prefix("tidy:allow") else {
                continue;
            };
            let line = idx + 1;
            let (lint, reason, malformed) = match parse_allow(rest) {
                Some((l, r)) => (l, r, false),
                None => (String::new(), String::new(), true),
            };
            let target = if !code[idx].trim().is_empty() {
                Some(line)
            } else {
                // Standalone comment: suppresses the next line carrying
                // code (skipping further comment-only/blank lines).
                code[idx + 1..]
                    .iter()
                    .position(|l| !l.trim().is_empty())
                    .map(|off| line + 1 + off)
            };
            out.push(Directive {
                line,
                lint,
                reason,
                malformed,
                target,
            });
        }
    }
    out
}

/// Parse the `(lint-name): reason` tail of a directive.
fn parse_allow(rest: &str) -> Option<(String, String)> {
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    if lint.is_empty() {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':')?.trim().to_string();
    Some((lint, reason))
}
