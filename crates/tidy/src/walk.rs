//! Workspace file discovery.
//!
//! Tidy scans first-party Rust sources only: the `crates/` tree plus the
//! facade's root `src/`, `examples/`, and `tests/`. The vendored
//! third-party stand-ins (`vendor/`), build output (`target/`), and tidy's
//! own deliberately-violating lint fixtures (`tests/fixtures/`) are
//! excluded. Paths come back sorted so every run (and the JSON report) is
//! deterministic regardless of directory enumeration order.

use std::path::Path;

/// Directories under the workspace root that hold first-party sources.
const ROOTS: [&str; 4] = ["crates", "src", "examples", "tests"];

/// Collect every first-party `.rs` file, as workspace-relative paths with
/// `/` separators, sorted.
pub fn workspace_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git") {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            // Lint fixtures are violations on purpose.
            if rel.contains("tests/fixtures/") {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
