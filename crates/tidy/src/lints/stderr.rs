//! `raw-stderr` — print macros bypassing the leveled log plane.
//!
//! PR 7 routed diagnostics through `obs::log` (swappable sink, `REPRO_LOG`
//! levels) precisely so library embedders can intercept them; a raw
//! `eprintln!` undoes that. Rules:
//!
//! * `eprintln!`/`eprint!`/`dbg!` are flagged everywhere, binaries
//!   included — stderr belongs to `obs::log`,
//! * `println!`/`print!` are flagged in library code only; binary targets
//!   (`main.rs`, `src/bin/`) own their stdout — that *is* the Report
//!   render path,
//! * the one sanctioned site is the default sink inside `obs::log` itself,
//! * tests may print freely.

use super::Lint;
use crate::source::SourceFile;
use crate::Finding;

/// The default stderr sink — the plane's own emit site.
const ALLOWED_FILES: [&str; 1] = ["crates/obs/src/log.rs"];

/// See the module docs.
pub struct RawStderr;

impl Lint for RawStderr {
    fn name(&self) -> &'static str {
        "raw-stderr"
    }

    fn description(&self) -> &'static str {
        "eprintln!/println! bypassing obs::log (stdout allowed in binary targets)"
    }

    fn check_file(&mut self, file: &SourceFile, sink: &mut Vec<Finding>) {
        if ALLOWED_FILES.contains(&file.rel_path.as_str()) || file.is_test_file {
            return;
        }
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            if file.is_test_line(lineno) {
                continue;
            }
            for pat in ["eprintln!", "eprint!", "dbg!"] {
                if line.contains(pat) {
                    sink.push(Finding {
                        lint: self.name(),
                        file: file.rel_path.clone(),
                        line: lineno,
                        message: format!(
                            "`{pat}` writes raw stderr — use obs::error!/warn!/info! so \
                             embedders can intercept and level-filter it"
                        ),
                    });
                }
            }
            if !file.is_bin {
                for pat in ["println!", "print!"] {
                    // `eprintln!` contains `println!`; only flag the plain
                    // macro (not preceded by an identifier character).
                    if contains_plain(line, pat) {
                        sink.push(Finding {
                            lint: self.name(),
                            file: file.rel_path.clone(),
                            line: lineno,
                            message: format!(
                                "`{pat}` in library code — return the text in a Report (the \
                                 binary renders it) or log via obs::log"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `pat` occurs and is not the tail of a longer macro name (`eprintln!`).
fn contains_plain(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(pat) {
        let at = from + pos;
        let pre = line.as_bytes().get(at.wrapping_sub(1)).copied();
        let pre_ident =
            at > 0 && pre.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'e');
        if !pre_ident {
            return true;
        }
        from = at + pat.len();
    }
    false
}
