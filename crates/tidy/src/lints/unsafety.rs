//! `undocumented-unsafe` — an `unsafe` block/fn/impl with no `SAFETY:`.
//!
//! Only `iputil` may contain `unsafe` at all (everything else carries
//! `#![forbid(unsafe_code)]`), and each site must state its proof
//! obligation in an adjacent `// SAFETY:` comment — on the same line or
//! within the three preceding lines (attributes in between are fine).

use super::Lint;
use crate::source::{has_word, SourceFile};
use crate::Finding;

/// See the module docs.
pub struct UndocumentedUnsafe;

impl Lint for UndocumentedUnsafe {
    fn name(&self) -> &'static str {
        "undocumented-unsafe"
    }

    fn description(&self) -> &'static str {
        "an `unsafe` block/fn/impl without an adjacent `// SAFETY:` comment"
    }

    fn check_file(&mut self, file: &SourceFile, sink: &mut Vec<Finding>) {
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            if !has_word(line, "unsafe") {
                continue;
            }
            if !file.comment_nearby(lineno, 3, "SAFETY:") {
                sink.push(Finding {
                    lint: self.name(),
                    file: file.rel_path.clone(),
                    line: lineno,
                    message: "`unsafe` without an adjacent `// SAFETY:` comment — state the \
                              proof obligation on or just above the site"
                        .to_string(),
                });
            }
        }
    }
}
