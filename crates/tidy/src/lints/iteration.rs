//! `nondeterministic-iteration` — iterating a std `HashMap`/`HashSet`.
//!
//! Hash iteration order depends on the hasher seed and insertion history,
//! so any output derived from it breaks the byte-identical replay
//! contract. The heuristic is two passes per file:
//!
//! 1. collect every identifier bound to a `HashMap`/`HashSet` (let
//!    bindings, struct fields, fn params, and fns *returning* a map), then
//! 2. flag lines that iterate one of them — order-sensitive method calls
//!    (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain(..)`, …) or
//!    `for .. in [&[mut ]]name`.
//!
//! Sites whose order is laundered through a sort (or folded into an
//! order-insensitive reduction) carry a `tidy:allow` directive saying so;
//! the preferred fix is `iputil::sym::SymVec` or a `BTreeMap`, which
//! iterate deterministically by construction.

use super::Lint;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeSet;

/// Method calls whose visit order is the hash order.
const ITER_METHODS: [&str; 12] = [
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "into_iter",
    "drain",
    "retain",
    "extract_if",
    "drain_filter",
];

/// See the module docs.
#[derive(Default)]
pub struct NondeterministicIteration;

impl Lint for NondeterministicIteration {
    fn name(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn description(&self) -> &'static str {
        "iterating a std HashMap/HashSet (hash order) outside sorted/SymVec sites"
    }

    fn check_file(&mut self, file: &SourceFile, sink: &mut Vec<Finding>) {
        let hash_names = collect_hash_names(&file.code);
        if hash_names.is_empty() {
            return;
        }
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            if file.is_test_line(lineno) {
                continue;
            }
            // rustfmt splits chains (`grouped\n    .into_iter()`), so a line
            // starting with `.` is checked against the joined tail of the
            // preceding lines — but only matches inside *this* line count,
            // or every chained call after the iteration would re-fire.
            let (expr, min_pos) = if line.trim_start().starts_with('.') {
                let start = idx.saturating_sub(3);
                let mut joined = String::new();
                for prev in &file.code[start..idx] {
                    joined.push_str(prev.trim_end());
                }
                let min = joined.len();
                joined.push_str(line);
                (joined, min)
            } else {
                (line.clone(), 0)
            };
            if let Some(name) = iteration_site(&expr, min_pos, &hash_names) {
                sink.push(Finding {
                    lint: self.name(),
                    file: file.rel_path.clone(),
                    line: lineno,
                    message: format!(
                        "iteration over hash-ordered `{name}` — sort the items, use \
                         SymVec/BTreeMap, or add `// tidy:allow(nondeterministic-iteration): \
                         <why the order cannot leak>`"
                    ),
                });
            }
        }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file
/// (flow-insensitive: a name declared hash-typed in one fn is treated as
/// hash-typed file-wide).
fn collect_hash_names(code: &[String]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in code {
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                if let Some(name) = binder_before(line, at) {
                    names.insert(name);
                }
                from = at + ty.len();
            }
        }
    }
    names
}

/// Given `line[..at]` ending just before a `HashMap`/`HashSet` token, find
/// the identifier the type binds to:
/// `name: [&][mut ][std::collections::]HashMap<..>` (field / param / typed
/// let), `let [mut] name = HashMap::new()`, or `fn name(..) -> HashMap<..>`.
fn binder_before(line: &str, at: usize) -> Option<String> {
    let mut pre = line[..at].trim_end();
    for strip in ["std::collections::", "collections::", "std::"] {
        if let Some(p) = pre.strip_suffix(strip) {
            pre = p.trim_end();
        }
    }
    if let Some(p) = pre.strip_suffix("mut") {
        pre = p.trim_end();
    }
    while let Some(p) = pre.strip_suffix('&') {
        pre = p.trim_end();
    }
    if let Some(p) = pre.strip_suffix("->") {
        // `fn name(..) -> HashMap<..>`: the *call* `name()` yields a fresh
        // hash map, so record the fn name itself.
        let p = p.trim_end();
        let args_open = p.rfind("fn ").map(|f| f + 3)?;
        let name: String = p[args_open..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        return (!name.is_empty()).then_some(name);
    }
    let pre = pre.strip_suffix(':').or_else(|| pre.strip_suffix('='))?;
    let pre = pre.trim_end();
    let name = ident_suffix(pre)?;
    // `let x = map.len()` style false matches are impossible here (we only
    // land after `:`/`=`), but `Some(x): HashMap` patterns are; require a
    // plain identifier tail.
    Some(name)
}

/// Longest identifier ending at the end of `s`.
fn ident_suffix(s: &str) -> Option<String> {
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!tail.is_empty() && !tail.chars().next().is_some_and(|c| c.is_numeric())).then_some(tail)
}

/// Does `line` iterate one of `names`? Only method calls at byte offset
/// `min_pos` or later count (earlier text is joined context from previous
/// lines, reported when those lines were scanned). Returns the offending
/// identifier.
fn iteration_site(line: &str, min_pos: usize, names: &BTreeSet<String>) -> Option<String> {
    // `recv.method(` where the receiver chain's last segment is hash-typed.
    let mut from = min_pos;
    while let Some(dot) = line[from..].find('.') {
        let at = from + dot;
        let rest = &line[at + 1..];
        for m in ITER_METHODS {
            let after = rest.strip_prefix(m);
            if let Some(after) = after {
                if after.starts_with('(') {
                    if let Some(recv) = receiver_segment(&line[..at]) {
                        if names.contains(&recv) {
                            return Some(recv);
                        }
                    }
                }
            }
        }
        from = at + 1;
    }
    // `for pat in [&[mut ]]expr {` — never split across lines by rustfmt,
    // so only checked on unjoined lines.
    if min_pos > 0 {
        return None;
    }
    if let Some(fpos) = find_for(line) {
        let rest = &line[fpos..];
        if let Some(inpos) = rest.find(" in ") {
            let expr = rest[inpos + 4..].trim_start();
            let expr = expr.strip_prefix('&').unwrap_or(expr).trim_start();
            let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim_start();
            let chain: String = expr
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
                .collect();
            if let Some(last) = chain.rsplit('.').next() {
                if names.contains(last) {
                    return Some(last.to_string());
                }
            }
        }
    }
    None
}

/// Position just after a word-boundary `for ` in `line`.
fn find_for(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("for ") {
        let at = from + pos;
        let pre_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        if pre_ok {
            return Some(at + 4);
        }
        from = at + 4;
    }
    None
}

/// Last path segment of the receiver chain ending at `prefix`'s end:
/// `self.orgs` → `orgs`, `groups()` → `groups`, `table` → `table`.
fn receiver_segment(prefix: &str) -> Option<String> {
    let prefix = prefix.trim_end();
    let mut end = prefix.len();
    let bytes = prefix.as_bytes();
    // Allow one trailing `()` (a getter / constructor call).
    if prefix.ends_with("()") {
        end -= 2;
    }
    let mut start = end;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    (start < end).then(|| prefix[start..end].to_string())
}
