//! `unwrap-ratchet` — per-crate `.unwrap()` / `.expect(` budget.
//!
//! Panics in library code are availability bugs once the engine serves
//! long-running sessions, so the count of `.unwrap()`/`.expect(` calls in
//! non-test code is ratcheted: a committed baseline
//! (`crates/tidy/unwrap_baseline.tsv`) records today's count per crate,
//! new code may not raise it, and lowering it requires refreshing the
//! baseline (`cargo run -p tidy -- --fix-baselines`) so the ceiling drops
//! permanently. Test files and `#[cfg(test)]` regions are exempt —
//! panicking on a broken invariant is what tests are for.

use super::Lint;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Workspace-relative path of the committed baseline.
pub const BASELINE_REL: &str = "crates/tidy/unwrap_baseline.tsv";

/// See the module docs.
pub struct UnwrapRatchet {
    baseline_path: PathBuf,
    baseline: BTreeMap<String, usize>,
    baseline_missing: bool,
    counts: BTreeMap<String, usize>,
    fix: bool,
}

impl UnwrapRatchet {
    /// Load the committed baseline under `root` (missing file is a finding
    /// unless `fix` is set).
    pub fn new(root: &Path, fix: bool) -> UnwrapRatchet {
        let baseline_path = root.join(BASELINE_REL);
        let (baseline, baseline_missing) = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => (parse_baseline(&text), false),
            Err(_) => (BTreeMap::new(), true),
        };
        UnwrapRatchet {
            baseline_path,
            baseline,
            baseline_missing,
            counts: BTreeMap::new(),
            fix,
        }
    }
}

impl Lint for UnwrapRatchet {
    fn name(&self) -> &'static str {
        "unwrap-ratchet"
    }

    fn description(&self) -> &'static str {
        "per-crate .unwrap()/.expect( count in non-test code may only go down"
    }

    fn check_file(&mut self, file: &SourceFile, _sink: &mut Vec<Finding>) {
        if file.is_test_file {
            return;
        }
        let mut n = 0;
        for (idx, line) in file.code.iter().enumerate() {
            if file.is_test_line(idx + 1) {
                continue;
            }
            n += count_occurrences(line, ".unwrap()");
            n += count_occurrences(line, ".expect(");
        }
        *self.counts.entry(file.crate_name.clone()).or_insert(0) += n;
    }

    fn finish(&mut self, sink: &mut Vec<Finding>) {
        if self.fix {
            if let Err(e) = write_baseline(&self.baseline_path, &self.counts) {
                sink.push(Finding {
                    lint: self.name(),
                    file: BASELINE_REL.to_string(),
                    line: 0,
                    message: format!("cannot write baseline: {e}"),
                });
            }
            return;
        }
        if self.baseline_missing {
            sink.push(Finding {
                lint: self.name(),
                file: BASELINE_REL.to_string(),
                line: 0,
                message: "baseline file missing — create it with \
                          `cargo run -p tidy -- --fix-baselines` and commit it"
                    .to_string(),
            });
            return;
        }
        // Every crate with a nonzero count, plus every baselined crate (so
        // a crate dropping to zero still surfaces as an improvement).
        let mut crates: Vec<&String> = self
            .counts
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(c, _)| c)
            .chain(self.baseline.keys())
            .collect();
        crates.sort();
        crates.dedup();
        for krate in crates {
            let now = self.counts.get(krate).copied().unwrap_or(0);
            let base = self.baseline.get(krate).copied().unwrap_or(0);
            if now > base {
                sink.push(Finding {
                    lint: self.name(),
                    file: format!("crates/{krate}"),
                    line: 0,
                    message: format!(
                        "crate `{krate}` has {now} .unwrap()/.expect( in non-test code, \
                         baseline allows {base} — handle the error instead of panicking"
                    ),
                });
            } else if now < base {
                sink.push(Finding {
                    lint: self.name(),
                    file: BASELINE_REL.to_string(),
                    line: 0,
                    message: format!(
                        "crate `{krate}` improved to {now} (baseline {base}) — lock it in \
                         with `cargo run -p tidy -- --fix-baselines`"
                    ),
                });
            }
        }
    }
}

fn count_occurrences(line: &str, pat: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = line[from..].find(pat) {
        n += 1;
        from += pos + pat.len();
    }
    n
}

fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((krate, count)) = line.split_once('\t') {
            if let Ok(n) = count.trim().parse::<usize>() {
                map.insert(krate.trim().to_string(), n);
            }
        }
    }
    map
}

fn write_baseline(path: &Path, counts: &BTreeMap<String, usize>) -> Result<(), String> {
    let mut out = String::from(
        "# tidy unwrap-ratchet baseline: per-crate `.unwrap()`/`.expect(` counts in\n\
         # non-test code. Counts may only go down; after removing unwraps run\n\
         # `cargo run -p tidy -- --fix-baselines` and commit the result.\n",
    );
    for (krate, n) in counts {
        if *n > 0 {
            out.push_str(&format!("{krate}\t{n}\n"));
        }
    }
    std::fs::write(path, out).map_err(|e| format!("{}: {e}", path.display()))
}
