//! `wall-clock` — real time observed inside the simulation.
//!
//! Scenario output must be a pure function of the run configuration, so
//! `Instant::now()` / `SystemTime::now()` may not influence anything a
//! digest covers. The built-in allowlist holds the three sanctioned timing
//! surfaces — the `obs` span plane, the bench-snapshot prober, and the
//! `Session` build-time diagnostics — all of which keep elapsed time out
//! of scenario digests. Test and bench files may time freely.

use super::Lint;
use crate::source::SourceFile;
use crate::Finding;

/// Files sanctioned to read the clock (diagnostics-only surfaces).
const ALLOWED_FILES: [&str; 3] = [
    "crates/obs/src/span.rs",
    "crates/experiments/src/bench_snapshot.rs",
    "crates/experiments/src/session.rs",
];

const PATTERNS: [&str; 2] = ["Instant::now", "SystemTime::now"];

/// See the module docs.
pub struct WallClock;

impl Lint for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn description(&self) -> &'static str {
        "Instant::now/SystemTime::now outside the obs-span/bench-snapshot/session allowlist"
    }

    fn check_file(&mut self, file: &SourceFile, sink: &mut Vec<Finding>) {
        if ALLOWED_FILES.contains(&file.rel_path.as_str()) || file.is_test_file {
            return;
        }
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            if file.is_test_line(lineno) {
                continue;
            }
            for pat in PATTERNS {
                if line.contains(pat) {
                    sink.push(Finding {
                        lint: self.name(),
                        file: file.rel_path.clone(),
                        line: lineno,
                        message: format!(
                            "`{pat}` outside the timing allowlist — route through obs spans \
                             or justify with a tidy:allow directive"
                        ),
                    });
                }
            }
        }
    }
}
