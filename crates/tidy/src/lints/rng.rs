//! `ambient-rng` — entropy not keyed from logical coordinates.
//!
//! Every random decision in the pipeline must come from an RNG seeded by
//! logical coordinates (seed, residence, day, stream tag) so replay is
//! exact at any thread layout. OS entropy and thread-local generators
//! (`thread_rng`, `from_entropy`, `OsRng`, `rand::random`) break that by
//! construction, so they are banned everywhere — including tests, where a
//! nondeterministic failure is a flake.

use super::Lint;
use crate::source::{has_word, SourceFile};
use crate::Finding;

const PATTERNS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "from_os_rng",
    "getrandom",
];

/// See the module docs.
pub struct AmbientRng;

impl Lint for AmbientRng {
    fn name(&self) -> &'static str {
        "ambient-rng"
    }

    fn description(&self) -> &'static str {
        "ambient entropy (thread_rng/from_entropy/OsRng) instead of coordinate-keyed seeds"
    }

    fn check_file(&mut self, file: &SourceFile, sink: &mut Vec<Finding>) {
        for (idx, line) in file.code.iter().enumerate() {
            for pat in PATTERNS {
                if has_word(line, pat) {
                    sink.push(Finding {
                        lint: self.name(),
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{pat}` draws ambient entropy — seed a SmallRng from logical \
                             coordinates (seed, residence, day, stream tag) instead"
                        ),
                    });
                }
            }
            // `rand::random` / `rand::random::<T>()` — path form only; a
            // bare `random` identifier is too common to flag.
            if line.contains("rand::random") {
                sink.push(Finding {
                    lint: self.name(),
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    message: "`rand::random` draws ambient entropy — seed a SmallRng from \
                              logical coordinates instead"
                        .to_string(),
                });
            }
        }
    }
}
