//! The lint registry.
//!
//! Each lint is a plain-line heuristic over a [`SourceFile`]; the engine
//! feeds every scanned file to every lint, then calls [`Lint::finish`] once
//! for workspace-level checks (the unwrap ratchet). Findings carry the lint
//! name, workspace-relative file, 1-based line, and a human message; the
//! engine handles `tidy:allow` suppression afterwards, so lints report
//! unconditionally.

use crate::source::SourceFile;
use crate::Finding;

pub mod envvar;
pub mod iteration;
pub mod ratchet;
pub mod rng;
pub mod stderr;
pub mod unsafety;
pub mod wallclock;

/// One determinism-contract check.
pub trait Lint {
    /// Registry name, used in findings and `tidy:allow(name)` directives.
    fn name(&self) -> &'static str;
    /// One-line catalogue description (`tidy --list`).
    fn description(&self) -> &'static str;
    /// Scan one file, appending findings.
    fn check_file(&mut self, file: &SourceFile, sink: &mut Vec<Finding>);
    /// Called once after every file has been scanned (workspace-level
    /// lints accumulate in `check_file` and report here).
    fn finish(&mut self, _sink: &mut Vec<Finding>) {}
}

/// All registered lints, in catalogue order.
pub fn registry(root: &std::path::Path, fix_baselines: bool) -> Vec<Box<dyn Lint>> {
    let mut lints = line_registry();
    lints.push(Box::new(ratchet::UnwrapRatchet::new(root, fix_baselines)));
    lints
}

/// The per-line lints only — everything except the workspace-level unwrap
/// ratchet (which needs the committed baseline file).
pub fn line_registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(iteration::NondeterministicIteration),
        Box::new(rng::AmbientRng),
        Box::new(wallclock::WallClock),
        Box::new(unsafety::UndocumentedUnsafe),
        Box::new(stderr::RawStderr),
        Box::new(envvar::UncheckedEnv),
    ]
}
