//! `unchecked-env` — ambient process environment read inside the library.
//!
//! An environment variable is invisible ambient state: two runs with the
//! same `RunConfig` but different environments must still produce
//! byte-identical output. Only two surfaces may consult the environment —
//! the `REPRO_LOG` level probe in `obs::log` (diagnostics volume, never
//! data) and the `repro` CLI entry point (which turns flags and env into
//! an explicit `RunConfig`).

use super::Lint;
use crate::source::SourceFile;
use crate::Finding;

const ALLOWED_FILES: [&str; 2] = ["crates/obs/src/log.rs", "crates/experiments/src/main.rs"];

const PATTERNS: [&str; 3] = ["env::var", "env::vars", "env::var_os"];

/// See the module docs.
pub struct UncheckedEnv;

impl Lint for UncheckedEnv {
    fn name(&self) -> &'static str {
        "unchecked-env"
    }

    fn description(&self) -> &'static str {
        "std::env::var outside obs::log and the repro CLI entry point"
    }

    fn check_file(&mut self, file: &SourceFile, sink: &mut Vec<Finding>) {
        if ALLOWED_FILES.contains(&file.rel_path.as_str()) || file.is_test_file {
            return;
        }
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            if file.is_test_line(lineno) {
                continue;
            }
            for pat in PATTERNS {
                if line.contains(pat) {
                    sink.push(Finding {
                        lint: self.name(),
                        file: file.rel_path.clone(),
                        line: lineno,
                        message: format!(
                            "`{pat}` reads ambient environment — thread the value through \
                             RunConfig (or read it in the CLI entry point) instead"
                        ),
                    });
                    break;
                }
            }
        }
    }
}
