//! `tidy` — determinism-contract static analysis over the workspace.
//!
//! ```text
//! cargo run -p tidy                     # lint; exit 1 on any finding
//! cargo run -p tidy -- --json           # machine-readable findings
//! cargo run -p tidy -- --fix-baselines  # refresh the unwrap ratchet
//! cargo run -p tidy -- --list           # lint catalogue
//! cargo run -p tidy -- --root <dir>     # lint another checkout
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut fix_baselines = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-baselines" => fix_baselines = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    // Default root: the workspace this binary was compiled from — stable
    // under `cargo run -p tidy` from any working directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .components()
            .collect()
    });

    if list {
        for lint in tidy::lints::registry(&root, false) {
            println!("{}\t{}", lint.name(), lint.description());
        }
        return ExitCode::SUCCESS;
    }

    let outcome = match tidy::run(&root, fix_baselines) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("tidy: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", outcome.to_json());
    } else {
        for finding in &outcome.findings {
            println!("{}", finding.render());
        }
        let verdict = if fix_baselines {
            "baselines refreshed"
        } else if outcome.findings.is_empty() {
            "clean"
        } else {
            "FAIL"
        };
        println!(
            "tidy: {} file(s) scanned, {} finding(s) — {verdict}",
            outcome.files_scanned,
            outcome.findings.len(),
        );
    }
    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    obs::error!("tidy: {msg}");
    obs::error!("usage: tidy [--json] [--fix-baselines] [--list] [--root <dir>]");
    ExitCode::FAILURE
}
