//! Repo-specific static analysis enforcing the determinism contract.
//!
//! Everything this reproduction claims rests on one invariant: scenario
//! output is byte-identical regardless of thread layout, fault plan,
//! metrics plane, or LPM engine. The digest tests enforce that
//! dynamically, after the fact; `tidy` enforces it statically, at the
//! source level, so a violation fails the build before any digest can
//! drift. It is a plain file/line analyzer in the mold of rust-lang's
//! `tidy` tool — no syn, no crates.io deps — run three ways:
//!
//! * `cargo run -p tidy` (add `--json` for machine-readable findings,
//!   `--fix-baselines` to refresh the unwrap ratchet, `--list` for the
//!   lint catalogue),
//! * the tier-1 integration test `crates/tidy/tests/workspace.rs`, so
//!   `cargo test -q` gates it,
//! * a dedicated CI step.
//!
//! # Lint catalogue
//!
//! | lint | contract |
//! |------|----------|
//! | `nondeterministic-iteration` | no hash-order iteration of std `HashMap`/`HashSet` |
//! | `ambient-rng` | every RNG is seeded from logical coordinates |
//! | `wall-clock` | no `Instant::now`/`SystemTime::now` outside the timing allowlist |
//! | `undocumented-unsafe` | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | `raw-stderr` | diagnostics go through `obs::log`, not `eprintln!` |
//! | `unchecked-env` | no `std::env::var` outside `obs::log` and the `repro` CLI |
//! | `unwrap-ratchet` | per-crate `.unwrap()`/`.expect(` counts may only go down |
//!
//! # Suppression
//!
//! A finding can be waived in place with a justified directive in a plain
//! line comment — trailing the offending line or standing alone on the
//! line(s) just above it:
//!
//! ```text
//! for (name, agg) in spans.iter() { // tidy:allow(nondeterministic-iteration): folded into a commutative sum
//! ```
//!
//! The reason after the colon is mandatory, the lint name must exist, and
//! a directive that suppresses nothing is itself an error
//! (`stale-allow`) — so allows cannot outlive the code they excuse.
//! Directives are only read from plain `//` comments; rustdoc prose (like
//! this page) never creates one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lints;
pub mod source;
pub mod walk;

use source::SourceFile;
use std::path::Path;

/// One lint violation (or meta-finding about a directive/baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (`nondeterministic-iteration`, …, or the meta lints
    /// `stale-allow` / `bad-allow`).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line, or 0 for file/crate-level findings.
    pub line: usize,
    /// Human-readable explanation naming the fix.
    pub message: String,
}

impl Finding {
    /// `path:line: [lint] message` (line elided when 0).
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.lint, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.lint, self.message
            )
        }
    }

    /// One JSON object, hand-rolled so the engine stays dependency-free.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(self.lint),
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        )
    }
}

/// Result of one engine run.
#[derive(Debug)]
pub struct Outcome {
    /// Surviving findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.findings.iter().map(Finding::to_json).collect();
        format!(
            "{{\"schema\":\"tidy-findings/1\",\"files_scanned\":{},\"total\":{},\
             \"findings\":[{}]}}",
            self.files_scanned,
            self.findings.len(),
            rows.join(",")
        )
    }
}

/// Run every registered lint over the workspace rooted at `root`.
///
/// `fix_baselines` rewrites the unwrap-ratchet baseline to the current
/// counts instead of comparing against it.
pub fn run(root: &Path, fix_baselines: bool) -> Result<Outcome, String> {
    let files = walk::workspace_sources(root)?;
    let mut lints = lints::registry(root, fix_baselines);
    let mut raw: Vec<Finding> = Vec::new();
    let mut parsed: Vec<SourceFile> = Vec::new();
    for rel in &files {
        let text =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        let file = SourceFile::parse(rel, &text);
        for lint in lints.iter_mut() {
            lint.check_file(&file, &mut raw);
        }
        parsed.push(file);
    }
    for lint in lints.iter_mut() {
        lint.finish(&mut raw);
    }
    let known: Vec<&'static str> = lints.iter().map(|l| l.name()).collect();
    let mut findings = apply_directives(&parsed, raw, &known);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(Outcome {
        findings,
        files_scanned: files.len(),
    })
}

/// Check a single in-memory source against the line lints — the fixture
/// tests' entry point. (The workspace-level unwrap ratchet is excluded:
/// it needs the committed baseline.)
pub fn check_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::parse(rel_path, text);
    let mut raw = Vec::new();
    let mut lints = lints::line_registry();
    for lint in lints.iter_mut() {
        lint.check_file(&file, &mut raw);
    }
    let known: Vec<&'static str> = lints.iter().map(|l| l.name()).collect();
    let mut findings = apply_directives(std::slice::from_ref(&file), raw, &known);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    findings
}

/// Drop findings covered by a well-formed `tidy:allow` directive; report
/// malformed (`bad-allow`) and unused (`stale-allow`) directives.
fn apply_directives(
    files: &[SourceFile],
    raw: Vec<Finding>,
    known: &[&'static str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    // (file, directive index) -> used?
    let mut used: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.directives.len()])
        .collect();
    'finding: for finding in raw {
        for (fi, file) in files.iter().enumerate() {
            if file.rel_path != finding.file {
                continue;
            }
            for (di, d) in file.directives.iter().enumerate() {
                let well_formed =
                    !d.malformed && !d.reason.is_empty() && known.contains(&d.lint.as_str());
                if well_formed && d.lint == finding.lint && d.target == Some(finding.line) {
                    used[fi][di] = true;
                    continue 'finding;
                }
            }
        }
        out.push(finding);
    }
    for (fi, file) in files.iter().enumerate() {
        for (di, d) in file.directives.iter().enumerate() {
            if d.malformed {
                out.push(Finding {
                    lint: "bad-allow",
                    file: file.rel_path.clone(),
                    line: d.line,
                    message: "malformed directive — syntax is \
                              `tidy:allow(lint-name): <reason>`"
                        .to_string(),
                });
            } else if d.reason.is_empty() {
                out.push(Finding {
                    lint: "bad-allow",
                    file: file.rel_path.clone(),
                    line: d.line,
                    message: format!(
                        "tidy:allow({}) has no reason — justify the suppression after a colon",
                        d.lint
                    ),
                });
            } else if !known.contains(&d.lint.as_str()) {
                out.push(Finding {
                    lint: "bad-allow",
                    file: file.rel_path.clone(),
                    line: d.line,
                    message: format!(
                        "tidy:allow({}) names an unknown lint — run `tidy --list` for the \
                         catalogue",
                        d.lint
                    ),
                });
            } else if !used[fi][di] {
                out.push(Finding {
                    lint: "stale-allow",
                    file: file.rel_path.clone(),
                    line: d.line,
                    message: format!(
                        "stale tidy:allow({}) — no matching finding on its target line; \
                         delete the directive",
                        d.lint
                    ),
                });
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
