//! The exported, deterministic-order metrics snapshot.

use serde::Serialize;

/// Aggregate wall-clock for one span path (e.g. `"traffic/synthesize/day"`).
#[derive(Debug, Clone, Serialize)]
pub struct SpanStat {
    /// `/`-joined nesting path of static span names.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall-clock across all closures, in nanoseconds.
    pub total_ns: u64,
    /// Fastest single closure, in nanoseconds.
    pub min_ns: u64,
    /// Slowest single closure, in nanoseconds.
    pub max_ns: u64,
}

/// One monotonic counter.
#[derive(Debug, Clone, Serialize)]
pub struct CounterStat {
    /// Metric name, dot-separated (`"synth.flows_emitted"`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One max-semantics gauge (high-water mark).
#[derive(Debug, Clone, Serialize)]
pub struct GaugeStat {
    /// Metric name.
    pub name: String,
    /// Highest value observed.
    pub value: u64,
}

/// Summary of one [`netstats::LogHistogram`]-backed distribution.
#[derive(Debug, Clone, Serialize)]
pub struct HistStat {
    /// Metric name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of observations (saturated to `u64` for export).
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate (log-bucket interpolation, ~9% relative error).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistStat {
    pub(crate) fn from_histogram(name: String, h: &netstats::LogHistogram) -> HistStat {
        let q = |p: f64| h.quantile(p).map(|v| v.round() as u64).unwrap_or(0);
        HistStat {
            name,
            count: h.count(),
            sum: u64::try_from(h.sum()).unwrap_or(u64::MAX),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
        }
    }
}

/// A full merged telemetry snapshot, ordered by metric name/span path.
///
/// Everything except the `*_ns` span fields is a pure function of the
/// workload: counts, gauge high-water marks, and histogram shapes are
/// invariant to thread layout. [`MetricsReport::counts_fingerprint`]
/// captures exactly that invariant subset.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsReport {
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeStat>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistStat>,
}

impl MetricsReport {
    /// Nothing recorded at all?
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Look up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The layout-invariant portion of the report as one stable string:
    /// span paths and close counts (no nanoseconds), counters, gauges, and
    /// full histogram summaries. Two runs of the same workload must produce
    /// identical fingerprints regardless of `--threads`/`--day-threads`.
    pub fn counts_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.spans {
            writeln!(out, "span {} count={}", s.path, s.count).unwrap();
        }
        for c in &self.counters {
            writeln!(out, "counter {} {}", c.name, c.value).unwrap();
        }
        for g in &self.gauges {
            writeln!(out, "gauge {} {}", g.name, g.value).unwrap();
        }
        for h in &self.histograms {
            writeln!(
                out,
                "hist {} count={} sum={} min={} max={} p50={} p90={} p99={}",
                h.name, h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            )
            .unwrap();
        }
        out
    }
}
