//! Scoped span timers with deterministic nesting paths.
//!
//! Each thread keeps a current nesting path (a `/`-joined string of static
//! span names). Opening a span appends its name; dropping the guard records
//! the elapsed wall-clock under the full path and truncates back. Worker
//! threads spawned by a fan-out start with an *empty* path, which would
//! detach their spans from the stage that spawned them — and worse, make the
//! set of observed paths depend on the thread layout. [`current_span_path`] /
//! [`enter_path`] exist for exactly that seam: the spawning side captures its
//! path before the fan-out and each worker re-enters it, so span paths (and
//! per-path counts) are identical whether the work ran inline or on eight
//! threads.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// RAII guard for an open span; created by [`crate::span!`].
#[must_use = "a span records its duration when the guard drops"]
pub struct SpanGuard {
    start: Option<Instant>,
    prev_len: usize,
}

impl SpanGuard {
    /// Open a span named `name` nested under the thread's current path.
    /// Inert (no clock read, no thread-local touched) while the plane is
    /// disabled.
    pub fn enter(name: &str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                start: None,
                prev_len: 0,
            };
        }
        let prev_len = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let len = p.len();
            if !p.is_empty() {
                p.push('/');
            }
            p.push_str(name);
            len
        });
        SpanGuard {
            start: Some(Instant::now()),
            prev_len,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        PATH.with(|p| {
            let mut p = p.borrow_mut();
            crate::metrics::record_span(&p, ns);
            p.truncate(self.prev_len);
        });
    }
}

/// The calling thread's current span nesting path (`""` when no span is
/// open or the plane is disabled). Capture this before a fan-out and hand it
/// to each worker via [`enter_path`].
pub fn current_span_path() -> String {
    if !crate::enabled() {
        return String::new();
    }
    PATH.with(|p| p.borrow().clone())
}

/// Guard restoring the previous span path on drop; see [`enter_path`].
#[must_use = "the inherited span path is dropped with the guard"]
pub struct PathGuard {
    prev: Option<String>,
}

/// Adopt `path` as the calling thread's span nesting path, restoring the
/// previous path when the guard drops. Inert when `path` is empty or the
/// plane is disabled.
pub fn enter_path(path: &str) -> PathGuard {
    if !crate::enabled() || path.is_empty() {
        return PathGuard { prev: None };
    }
    let prev = PATH.with(|p| std::mem::replace(&mut *p.borrow_mut(), path.to_owned()));
    PathGuard { prev: Some(prev) }
}

impl Drop for PathGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            PATH.with(|p| *p.borrow_mut() = prev);
        }
    }
}
