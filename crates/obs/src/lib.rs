//! Deterministic telemetry plane for the ipv6view pipeline.
//!
//! A hand-rolled (offline build — no `tracing`/`metrics` crates) subsystem
//! with three surfaces:
//!
//! 1. **Spans** — scoped wall-clock timers with parent/child nesting, created
//!    with the [`span!`] macro. Each thread keeps its own aggregate per span
//!    *path* (`"traffic/synthesize/residence/day"`); the merge at
//!    [`snapshot`] sorts by path, never by thread order.
//! 2. **Counters / gauges / histograms** — [`counter_add`], [`gauge_max`],
//!    and [`hist_record`] write into per-thread shards that are merged
//!    deterministically at flush. Distributions are backed by
//!    [`netstats::LogHistogram`].
//! 3. **Export** — [`snapshot`] produces a [`MetricsReport`] whose field
//!    order is fully determined by metric names, so two runs of the same
//!    workload agree byte-for-byte on everything except wall-clock timings.
//!
//! # Determinism contract
//!
//! Instrumentation draws nothing from any RNG stream and never reorders
//! emission: every call site observes a *logical* event (one flow emitted,
//! one DNS query resolved) whose count is a function of the workload, not of
//! the thread layout. [`MetricsReport::counts_fingerprint`] captures exactly
//! the layout-invariant subset (counts, sums, deterministic histogram
//! shapes — no nanoseconds), which the experiment registry asserts is
//! identical across `--threads`/`--day-threads` combinations.
//!
//! # Cost when disabled
//!
//! Telemetry is off by default. Every instrumentation entry point performs a
//! single relaxed atomic load and returns; no clocks are read, no
//! thread-locals touched, no locks taken. Scenario digests are byte-identical
//! whether the plane is compiled in or enabled.
//!
//! ```
//! obs::reset();
//! obs::set_enabled(true);
//! {
//!     let _outer = obs::span!("synthesize");
//!     let _inner = obs::span!("day", day = 3);
//!     obs::counter_add("synth.flows_emitted", 2);
//!     obs::hist_record("synth.flow_bytes", 1500);
//! }
//! let report = obs::snapshot();
//! obs::set_enabled(false);
//! assert_eq!(report.counter("synth.flows_emitted"), Some(2));
//! assert_eq!(report.spans[0].path, "synthesize");
//! assert_eq!(report.spans[1].path, "synthesize/day");
//! ```

#![forbid(unsafe_code)]

mod log;
mod metrics;
mod report;
mod span;

pub use crate::log::{log_enabled, log_message, set_log_level, set_log_sink, Level};
pub use crate::metrics::{counter_add, gauge_max, hist_record, reset, snapshot};
pub use crate::report::{CounterStat, GaugeStat, HistStat, MetricsReport, SpanStat};
pub use crate::span::{current_span_path, enter_path, PathGuard, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the telemetry plane on or off. Off is the default; when off, every
/// instrumentation call is a single relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Is the telemetry plane currently recording?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a scoped span timer. Returns a guard; the span closes (and its
/// wall-clock is recorded under the current nesting path) when the guard
/// drops.
///
/// Optional `key = value` fields are accepted for call-site readability and
/// evaluated but *not* folded into the aggregation key — span cardinality
/// stays bounded by the set of static names, not by data values.
///
/// ```
/// # let id = 7u32;
/// let _g = obs::span!("synthesize", residence = id);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($field:ident = $value:expr),+ $(,)?) => {{
        $(let _ = &$value;)+
        $crate::SpanGuard::enter($name)
    }};
}

/// Log at [`Level::Error`]. See [`log_message`] for routing and filtering.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Debug, format_args!($($arg)*))
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Trace, format_args!($($arg)*))
    };
}
