//! Leveled diagnostics with a swappable sink.
//!
//! The `repro` binary historically wrote progress and error lines straight
//! to stderr with `eprintln!`, which a library embedder cannot intercept.
//! [`log_message`] routes the same lines through a process-wide sink
//! (default: stderr, message text unchanged) filtered by a maximum level.
//! The level comes from the `REPRO_LOG` environment variable
//! (`off`/`error`/`warn`/`info`/`debug`/`trace`, default `info`), read once;
//! embedders can override it programmatically with [`set_log_level`].

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Diagnostic severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failure.
    Error = 1,
    /// Something suspicious that does not stop the run.
    Warn = 2,
    /// Progress reporting (the default threshold).
    Info = 3,
    /// Detail useful when debugging a scenario.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    /// Stable lowercase label (`"warn"`).
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// `0` silences everything; `u8::MAX` means "no programmatic override".
static OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);
static ENV_LEVEL: OnceLock<u8> = OnceLock::new();

fn parse_level(s: &str) -> Option<u8> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(0),
        "error" => Some(Level::Error as u8),
        "warn" | "warning" => Some(Level::Warn as u8),
        "info" => Some(Level::Info as u8),
        "debug" => Some(Level::Debug as u8),
        "trace" => Some(Level::Trace as u8),
        _ => None,
    }
}

fn max_level() -> u8 {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != u8::MAX {
        return o;
    }
    *ENV_LEVEL.get_or_init(|| {
        std::env::var("REPRO_LOG")
            .ok()
            .and_then(|v| parse_level(&v))
            .unwrap_or(Level::Info as u8)
    })
}

/// Programmatically cap the log level, overriding `REPRO_LOG`. `None`
/// silences all logging.
pub fn set_log_level(level: Option<Level>) {
    OVERRIDE.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// Would a message at `level` currently be emitted?
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= max_level()
}

type Sink = Box<dyn Fn(Level, &str) + Send + Sync>;

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Install a custom sink receiving every emitted message (after level
/// filtering), or `None` to restore the default stderr sink. Embedders use
/// this to capture diagnostics instead of inheriting the process stderr.
pub fn set_log_sink(sink: Option<Sink>) {
    *SINK.lock().unwrap() = sink;
}

/// Route one message through the level filter and sink. Usually invoked via
/// the [`crate::error!`], [`crate::warn!`], [`crate::info!`],
/// [`crate::debug!`], and [`crate::trace!`] macros.
pub fn log_message(level: Level, args: fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    let text = args.to_string();
    let sink = SINK.lock().unwrap();
    match sink.as_ref() {
        Some(f) => f(level, &text),
        None => eprintln!("{text}"),
    }
}
