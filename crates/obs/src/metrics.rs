//! Per-thread metric shards and the deterministic merge.
//!
//! Each thread that records anything gets its own [`Shard`] — a mutex around
//! plain hash maps, registered in a process-wide list so the data outlives
//! scoped worker threads. Updates lock only the calling thread's shard
//! (uncontended in steady state); [`snapshot`] locks each shard in turn and
//! folds everything into `BTreeMap`s, so the result is ordered by metric
//! name/path regardless of which thread recorded what, or in which order
//! threads were spawned.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use netstats::LogHistogram;

use crate::report::{CounterStat, GaugeStat, HistStat, MetricsReport, SpanStat};

/// Wall-clock aggregate for one span path on one thread.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanAgg {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanAgg {
    fn new(ns: u64) -> SpanAgg {
        SpanAgg {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    fn update(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn absorb(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[derive(Default)]
struct ShardData {
    counters: HashMap<Cow<'static, str>, u64>,
    gauges: HashMap<Cow<'static, str>, u64>,
    hists: HashMap<Cow<'static, str>, LogHistogram>,
    spans: HashMap<String, SpanAgg>,
}

struct Shard {
    data: Mutex<ShardData>,
}

/// Every live (and some recently-dead) shard. Shards of exited threads are
/// retained so their data survives until the next [`snapshot`]/[`reset`];
/// `reset` prunes shards no thread holds anymore.
static REGISTRY: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

thread_local! {
    static SHARD: Arc<Shard> = {
        let shard = Arc::new(Shard {
            data: Mutex::new(ShardData::default()),
        });
        REGISTRY.lock().unwrap().push(Arc::clone(&shard));
        shard
    };
}

fn with_shard(f: impl FnOnce(&mut ShardData)) {
    SHARD.with(|shard| f(&mut shard.data.lock().unwrap()));
}

/// Add `n` to the named monotonic counter. No-op while the plane is disabled.
#[inline]
pub fn counter_add(name: impl Into<Cow<'static, str>>, n: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|data| *data.counters.entry(name.into()).or_insert(0) += n);
}

/// Raise the named gauge to at least `v` (max semantics — high-water marks).
/// No-op while the plane is disabled.
#[inline]
pub fn gauge_max(name: impl Into<Cow<'static, str>>, v: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|data| {
        let slot = data.gauges.entry(name.into()).or_insert(0);
        *slot = (*slot).max(v);
    });
}

/// Record one observation into the named log-bucket histogram. No-op while
/// the plane is disabled.
#[inline]
pub fn hist_record(name: impl Into<Cow<'static, str>>, v: u64) {
    if !crate::enabled() {
        return;
    }
    with_shard(|data| data.hists.entry(name.into()).or_default().record(v));
}

/// Record a closed span (called from the guard's `Drop`).
pub(crate) fn record_span(path: &str, ns: u64) {
    with_shard(|data| {
        if let Some(agg) = data.spans.get_mut(path) {
            agg.update(ns);
        } else {
            data.spans.insert(path.to_owned(), SpanAgg::new(ns));
        }
    });
}

/// Clear all recorded telemetry. Shards belonging to exited threads are
/// dropped; live threads keep their (now empty) shard. The enabled flag is
/// left as-is.
pub fn reset() {
    let mut registry = REGISTRY.lock().unwrap();
    registry.retain(|shard| {
        if Arc::strong_count(shard) > 1 {
            *shard.data.lock().unwrap() = ShardData::default();
            true
        } else {
            false
        }
    });
}

/// Merge every shard into a [`MetricsReport`]. Ordering is by metric
/// name/span path (BTreeMap iteration), never by thread identity, so the
/// layout-invariant portion of the report is deterministic.
pub fn snapshot() -> MetricsReport {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
    let mut hists: BTreeMap<String, LogHistogram> = BTreeMap::new();
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();

    let registry = REGISTRY.lock().unwrap();
    for shard in registry.iter() {
        let data = shard.data.lock().unwrap();
        // tidy:allow(nondeterministic-iteration): commutative sum folded into a BTreeMap
        for (name, v) in &data.counters {
            *counters.entry(name.clone().into_owned()).or_insert(0) += v;
        }
        // tidy:allow(nondeterministic-iteration): commutative max folded into a BTreeMap
        for (name, v) in &data.gauges {
            let slot = gauges.entry(name.clone().into_owned()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        // tidy:allow(nondeterministic-iteration): exact sketch merge is commutative, folded into a BTreeMap
        for (name, h) in &data.hists {
            hists.entry(name.clone().into_owned()).or_default().merge(h);
        }
        // tidy:allow(nondeterministic-iteration): commutative absorb folded into a BTreeMap
        for (path, agg) in &data.spans {
            if let Some(merged) = spans.get_mut(path.as_str()) {
                merged.absorb(agg);
            } else {
                spans.insert(path.clone(), *agg);
            }
        }
    }
    drop(registry);

    MetricsReport {
        spans: spans
            .into_iter() // tidy:allow(nondeterministic-iteration): local BTreeMap, sorted key order
            .map(|(path, agg)| SpanStat {
                path,
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
            })
            .collect(),
        counters: counters
            .into_iter() // tidy:allow(nondeterministic-iteration): local BTreeMap, sorted key order
            .map(|(name, value)| CounterStat { name, value })
            .collect(),
        gauges: gauges
            .into_iter() // tidy:allow(nondeterministic-iteration): local BTreeMap, sorted key order
            .map(|(name, value)| GaugeStat { name, value })
            .collect(),
        histograms: hists
            .into_iter() // tidy:allow(nondeterministic-iteration): local BTreeMap, sorted key order
            .map(|(name, h)| HistStat::from_histogram(name, &h))
            .collect(),
    }
}
