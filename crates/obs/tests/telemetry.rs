//! Core telemetry-plane behavior: deterministic merge, span-path
//! inheritance across threads, inertness when disabled.
//!
//! The plane is process-global, so every test takes `TEST_LOCK` and resets
//! state on entry — the tests would race each other otherwise.

use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

#[test]
fn merge_is_sorted_and_sums_across_threads() {
    let _lock = locked();
    obs::reset();
    obs::set_enabled(true);

    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                // Record in thread-dependent order; the snapshot must not care.
                if t % 2 == 0 {
                    obs::counter_add("zebra", 1);
                    obs::counter_add("alpha", 10);
                } else {
                    obs::counter_add("alpha", 10);
                    obs::counter_add("zebra", 1);
                }
                obs::gauge_max("peak", 100 + t);
                obs::hist_record("sizes", 1 << t);
            });
        }
    });

    let report = obs::snapshot();
    obs::set_enabled(false);

    let names: Vec<&str> = report.counters.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["alpha", "zebra"]);
    assert_eq!(report.counter("alpha"), Some(40));
    assert_eq!(report.counter("zebra"), Some(4));
    assert_eq!(report.gauge("peak"), Some(103));
    let h = report.histogram("sizes").expect("sizes histogram");
    assert_eq!(h.count, 4);
    assert_eq!(h.sum, 1 + 2 + 4 + 8);
    assert_eq!(h.min, 1);
    assert_eq!(h.max, 8);
}

#[test]
fn span_paths_nest_and_survive_fan_out() {
    let _lock = locked();
    obs::reset();
    obs::set_enabled(true);

    {
        let _stage = obs::span!("stage");
        let parent = obs::current_span_path();
        assert_eq!(parent, "stage");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let parent = parent.clone();
                scope.spawn(move || {
                    let _inherit = obs::enter_path(&parent);
                    let _work = obs::span!("work", item = 7);
                });
            }
        });
        // Inline (threads=1) shape: same path, no inheritance needed.
        let _work = obs::span!("work");
    }

    let report = obs::snapshot();
    obs::set_enabled(false);

    let paths: Vec<(&str, u64)> = report
        .spans
        .iter()
        .map(|s| (s.path.as_str(), s.count))
        .collect();
    assert_eq!(paths, [("stage", 1), ("stage/work", 4)]);
}

#[test]
fn disabled_plane_records_nothing() {
    let _lock = locked();
    obs::reset();
    obs::set_enabled(false);

    let _span = obs::span!("ghost");
    obs::counter_add("ghost.counter", 5);
    obs::gauge_max("ghost.gauge", 5);
    obs::hist_record("ghost.hist", 5);
    drop(_span);

    assert!(obs::snapshot().is_empty());
}

#[test]
fn fingerprint_covers_counts_not_nanoseconds() {
    let _lock = locked();
    obs::reset();
    obs::set_enabled(true);

    {
        let _s = obs::span!("timed");
    }
    obs::counter_add("c", 3);
    let report = obs::snapshot();
    obs::set_enabled(false);

    let fp = report.counts_fingerprint();
    assert!(fp.contains("span timed count=1"));
    assert!(fp.contains("counter c 3"));
    assert!(!fp.contains("ns"), "fingerprint must exclude timings: {fp}");
}

#[test]
fn log_sink_captures_filtered_messages() {
    let _lock = locked();
    use std::sync::Arc;

    let captured: Arc<Mutex<Vec<(obs::Level, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&captured);
    obs::set_log_sink(Some(Box::new(move |level, text| {
        sink.lock().unwrap().push((level, text.to_owned()));
    })));
    obs::set_log_level(Some(obs::Level::Warn));

    obs::info!("not captured at warn threshold");
    obs::warn!("captured {}", 1);
    obs::error!("captured {}", 2);
    assert!(!obs::log_enabled(obs::Level::Debug));
    assert!(obs::log_enabled(obs::Level::Error));

    obs::set_log_level(None);
    obs::trace!("silenced entirely");

    obs::set_log_sink(None);
    obs::set_log_level(Some(obs::Level::Info));

    let got = captured.lock().unwrap();
    assert_eq!(
        *got,
        [
            (obs::Level::Warn, "captured 1".to_owned()),
            (obs::Level::Error, "captured 2".to_owned()),
        ]
    );
}

#[test]
fn snapshot_serializes_to_json() {
    let _lock = locked();
    obs::reset();
    obs::set_enabled(true);
    obs::counter_add("json.check", 1);
    obs::hist_record("json.hist", 42);
    let report = obs::snapshot();
    obs::set_enabled(false);

    let json = serde_json::to_string(&report).expect("serializes");
    assert!(json.contains("\"json.check\""));
    assert!(json.contains("\"histograms\""));
}
