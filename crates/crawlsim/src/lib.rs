//! # crawlsim — an OpenWPM-style crawler over the synthetic web
//!
//! §4.1 of the paper: for every top-list site, a browser loads the main
//! page (following all HTTP redirects), records every embedded resource
//! request with its DNS results and connection addresses, then clicks up to
//! five random links within the same eTLD+1 and records those pages too.
//!
//! This crate reproduces that pipeline over a [`worldgen::World`]:
//!
//! * DNS failures split `NXDOMAIN` from SERVFAIL/timeout ("other" loading
//!   failures), TLS and HTTP failures come from the epoch's server
//!   behaviour map;
//! * the main-page connection runs a real RFC 8305 Happy Eyeballs race on a
//!   per-load network whose IPv6 path is occasionally degraded — which is
//!   where the paper's "Browser Used IPv4" ~1-in-10 row comes from;
//! * redirect chains are followed with a hop limit, and a final landing
//!   outside the listed domain's eTLD+1 is flagged (the paper's "Unknown
//!   Primary Domain" row);
//! * every resource fetch records A/AAAA presence, the CNAME chain (used
//!   later for cloud service identification) and both resolved addresses
//!   (used for BGP attribution).
//!
//! Crawling is deterministic *and* parallel: each site derives its own RNG
//! from `(seed, rank)`, so results are identical regardless of thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dnssim::{LookupOutcome, Name, Resolver};
use happyeyeballs::{HappyEyeballs, HappyEyeballsConfig};
use iputil::Family;
use netsim::{Network, PathProfile, MILLIS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::net::IpAddr;
use webmodel::resource::ResourceType;
use worldgen::web::HttpFailure;
use worldgen::World;

/// Why a site failed to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PageFailure {
    /// The listed domain does not resolve at all.
    NxDomain,
    /// DNS SERVFAIL somewhere on the lookup path.
    DnsError,
    /// DNS or connection timeout.
    Timeout,
    /// TLS negotiation failed.
    Tls,
    /// HTTP-level failure (5xx on the main page).
    Http,
    /// Redirect chain exceeded the hop limit.
    RedirectLoop,
}

/// One fetched (deduplicated) resource.
#[derive(Debug, Clone, Serialize)]
pub struct ResourceFetch {
    /// The FQDN the browser requested.
    pub fqdn: Name,
    /// Request type.
    pub rtype: ResourceType,
    /// Same eTLD+1 as the site?
    pub first_party: bool,
    /// Has an `A` record (following CNAMEs).
    pub has_a: bool,
    /// Has an `AAAA` record (following CNAMEs).
    pub has_aaaa: bool,
    /// The family the browser actually used for this fetch.
    pub used: Option<Family>,
    /// CNAME chain observed during resolution (query name first).
    pub chain: Vec<Name>,
    /// A resolved IPv4 address, if any.
    pub v4_addr: Option<IpAddr>,
    /// A resolved IPv6 address, if any.
    pub v6_addr: Option<IpAddr>,
}

/// A successfully crawled site.
#[derive(Debug, Clone, Serialize)]
pub struct CrawlSuccess {
    /// Final FQDN after redirects.
    pub final_fqdn: Name,
    /// Did the redirect chain leave the listed domain's eTLD+1?
    pub offsite_landing: bool,
    /// Main page has an `A` record.
    pub main_has_a: bool,
    /// Main page has an `AAAA` record.
    pub main_has_aaaa: bool,
    /// A resolved IPv4 address of the main page, if any.
    pub main_v4_addr: Option<IpAddr>,
    /// A resolved IPv6 address of the main page, if any.
    pub main_v6_addr: Option<IpAddr>,
    /// CNAME chain observed resolving the main page.
    pub main_chain: Vec<Name>,
    /// Family the browser used to fetch the main page.
    pub main_used: Family,
    /// Whether *any* fetch (main page or resource) used IPv4.
    pub any_v4_used: bool,
    /// Page indices visited (0 = main page, then clicked links).
    pub visited_pages: Vec<usize>,
    /// Deduplicated resource fetches across visited pages.
    pub resources: Vec<ResourceFetch>,
}

/// Crawl outcome for one site.
#[derive(Debug, Clone, Serialize)]
pub struct SiteCrawl {
    /// 1-based top-list rank.
    pub rank: usize,
    /// The listed domain.
    pub domain: Name,
    /// Success or failure.
    pub outcome: Result<CrawlSuccess, PageFailure>,
}

/// A full crawl of one epoch.
#[derive(Debug)]
pub struct CrawlReport {
    /// Epoch label ("Jul 2025").
    pub epoch_label: String,
    /// Epoch index crawled.
    pub epoch: usize,
    /// Per-site results in rank order.
    pub sites: Vec<SiteCrawl>,
}

/// Crawler configuration.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Seed mixed with each site's rank for per-site determinism.
    pub seed: u64,
    /// Number of same-site links to click (paper: 5).
    pub link_clicks: usize,
    /// Set false for the Bajpai-style main-page-only ablation.
    pub click_links: bool,
    /// Probability that a page-load's IPv6 path is degraded enough for IPv4
    /// to win the Happy Eyeballs race (calibrated to Fig 5's
    /// "Browser Used IPv4" ≈ 11.6%).
    pub v6_degraded_rate: f64,
    /// Happy Eyeballs parameters.
    pub he: HappyEyeballsConfig,
    /// Number of worker threads (1 = sequential; results are identical
    /// either way).
    pub threads: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            seed: 0xc4a71,
            link_clicks: 5,
            click_links: true,
            v6_degraded_rate: 0.116,
            he: HappyEyeballsConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
        }
    }
}

/// Maximum redirect hops before declaring a loop.
const MAX_REDIRECTS: usize = 5;

/// Crawl one epoch of the world.
pub fn crawl_epoch(world: &World, epoch: usize, config: &CrawlConfig) -> CrawlReport {
    let state = &world.web.epochs[epoch];
    let sites = &world.web.sites;
    let n = sites.len();
    let threads = config.threads.max(1);

    let mut results: Vec<Option<SiteCrawl>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    if threads == 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = Some(crawl_site(world, state, i, config));
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in results.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                scope.spawn(move || {
                    for (off, slot) in slice.iter_mut().enumerate() {
                        *slot = Some(crawl_site(world, state, base + off, config));
                    }
                });
            }
        });
    }

    CrawlReport {
        epoch_label: state.label.clone(),
        epoch,
        sites: results.into_iter().map(|r| r.expect("filled")).collect(),
    }
}

/// Crawl a single site (by 0-based index) against an epoch state.
fn crawl_site(
    world: &World,
    state: &worldgen::web::EpochState,
    index: usize,
    config: &CrawlConfig,
) -> SiteCrawl {
    let site = &world.web.sites[index];
    let mut rng =
        SmallRng::seed_from_u64(config.seed ^ (site.rank as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let resolver = Resolver::new(&state.zone);

    // --- Follow HTTP redirects from the listed domain. ---
    let mut current = site.domain.clone();
    let mut hops = 0;
    let final_fqdn = loop {
        match state.redirects.get(&current) {
            Some(next) if hops < MAX_REDIRECTS => {
                // The redirecting server itself must resolve.
                if let Some(fail) = resolution_failure(&resolver, &current) {
                    return SiteCrawl {
                        rank: site.rank,
                        domain: site.domain.clone(),
                        outcome: Err(fail),
                    };
                }
                current = next.clone();
                hops += 1;
            }
            Some(_) => {
                return SiteCrawl {
                    rank: site.rank,
                    domain: site.domain.clone(),
                    outcome: Err(PageFailure::RedirectLoop),
                }
            }
            None => break current,
        }
    };

    // --- Resolve the final page name. ---
    if let Some(fail) = resolution_failure(&resolver, &final_fqdn) {
        return SiteCrawl {
            rank: site.rank,
            domain: site.domain.clone(),
            outcome: Err(fail),
        };
    }
    let (main_has_a, main_v4_addr, main_chain_a) = probe(&resolver, &final_fqdn, Family::V4);
    let (main_has_aaaa, main_v6_addr, main_chain_aaaa) = probe(&resolver, &final_fqdn, Family::V6);
    let main_chain = if main_chain_aaaa.len() > main_chain_a.len() {
        main_chain_aaaa
    } else {
        main_chain_a
    };

    // --- Server-side TLS/HTTP failures. ---
    match state.http_failures.get(&final_fqdn) {
        Some(HttpFailure::Tls) => {
            return SiteCrawl {
                rank: site.rank,
                domain: site.domain.clone(),
                outcome: Err(PageFailure::Tls),
            }
        }
        Some(HttpFailure::Http5xx) => {
            return SiteCrawl {
                rank: site.rank,
                domain: site.domain.clone(),
                outcome: Err(PageFailure::Http),
            }
        }
        None => {}
    }

    // --- Happy Eyeballs race for the page load. ---
    // Build this load's network: occasionally the IPv6 path is degraded
    // (congestion, broken tunnel, lossy peering) and IPv4 wins.
    let mut net = Network::dual_stack_ms(20 + rng.gen_range(0..25));
    let degraded = rng.gen::<f64>() < config.v6_degraded_rate;
    if degraded {
        net.set_family_default(
            Family::V6,
            PathProfile {
                rtt: (450 + rng.gen_range(0..400)) * MILLIS,
                loss: 0.2,
                reachable: true,
            },
        );
    }
    let he = HappyEyeballs::new(config.he);
    let race = he.connect(&net, &resolver, &mut rng, &final_fqdn, 0);
    let main_used = match race.winning_family() {
        Some(f) => f,
        None => {
            // Both families resolved but nothing connected: count as timeout.
            return SiteCrawl {
                rank: site.rank,
                domain: site.domain.clone(),
                outcome: Err(PageFailure::Timeout),
            };
        }
    };

    // --- Page selection: main page plus up to five random link clicks. ---
    let mut visited = vec![0usize];
    if config.click_links {
        let mut links = site.pages[0].links.clone();
        // Fisher-Yates shuffle, then take the first `link_clicks`.
        for i in (1..links.len()).rev() {
            let j = rng.gen_range(0..=i);
            links.swap(i, j);
        }
        visited.extend(links.into_iter().take(config.link_clicks));
    }

    // --- Resource fetches (deduplicated by FQDN). ---
    let mut resources = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut any_v4_used = main_used == Family::V4;
    for &pi in &visited {
        for r in &site.pages[pi].resources {
            if !seen.insert(r.fqdn.clone()) {
                continue;
            }
            let (has_a, v4_addr, chain_a) = probe(&resolver, &r.fqdn, Family::V4);
            let (has_aaaa, v6_addr, chain_aaaa) = probe(&resolver, &r.fqdn, Family::V6);
            let chain = if chain_aaaa.len() > chain_a.len() {
                chain_aaaa
            } else {
                chain_a
            };
            // Fetch family: resources ride the same network conditions as
            // the page load — IPv6 when available and not degraded.
            let used = if has_aaaa && main_used == Family::V6 {
                Some(Family::V6)
            } else if has_a {
                Some(Family::V4)
            } else if has_aaaa {
                Some(Family::V6)
            } else {
                None
            };
            if used == Some(Family::V4) {
                any_v4_used = true;
            }
            resources.push(ResourceFetch {
                fqdn: r.fqdn.clone(),
                rtype: r.rtype,
                first_party: world.psl.same_site(&r.fqdn, &site.domain),
                has_a,
                has_aaaa,
                used,
                chain,
                v4_addr,
                v6_addr,
            });
        }
    }

    let offsite_landing = !world.psl.same_site(&final_fqdn, &site.domain);
    SiteCrawl {
        rank: site.rank,
        domain: site.domain.clone(),
        outcome: Ok(CrawlSuccess {
            final_fqdn,
            offsite_landing,
            main_has_a,
            main_has_aaaa,
            main_v4_addr,
            main_v6_addr,
            main_chain,
            main_used,
            any_v4_used,
            visited_pages: visited,
            resources,
        }),
    }
}

/// Resolve a name in both families and map hard failures.
fn resolution_failure(resolver: &Resolver<'_>, name: &Name) -> Option<PageFailure> {
    let v4 = resolver.resolve(name, Family::V4);
    let v6 = resolver.resolve(name, Family::V6);
    match (&v4, &v6) {
        (LookupOutcome::NxDomain, LookupOutcome::NxDomain) => Some(PageFailure::NxDomain),
        (LookupOutcome::ServFail, _) | (_, LookupOutcome::ServFail) => Some(PageFailure::DnsError),
        (LookupOutcome::Timeout, _) | (_, LookupOutcome::Timeout) => Some(PageFailure::Timeout),
        _ => {
            if v4.is_success() || v6.is_success() {
                None
            } else {
                Some(PageFailure::NxDomain)
            }
        }
    }
}

/// Probe one family: presence, an address, and the CNAME chain.
fn probe(
    resolver: &Resolver<'_>,
    name: &Name,
    family: Family,
) -> (bool, Option<IpAddr>, Vec<Name>) {
    match resolver.resolve(name, family) {
        LookupOutcome::Answers(a) => {
            let addr = a.addresses.first().copied();
            (true, addr, a.chain)
        }
        LookupOutcome::NoData { chain, .. } => (false, None, chain),
        _ => (false, None, vec![name.clone()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::web::GenClass;
    use worldgen::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig::small())
    }

    #[test]
    fn crawl_matches_ground_truth_classes() {
        let w = world();
        let e = w.latest_epoch();
        let report = crawl_epoch(&w, e, &CrawlConfig::default());
        assert_eq!(report.sites.len(), w.web.sites.len());

        let mut agree = 0;
        let mut total = 0;
        for (crawl, truth) in report.sites.iter().zip(&w.web.truth) {
            total += 1;
            let t = truth.by_epoch[e];
            match (&crawl.outcome, t) {
                (Err(PageFailure::NxDomain), GenClass::NxDomain) => agree += 1,
                (Err(_), GenClass::OtherFailure) => agree += 1,
                (Ok(s), GenClass::V4Only) if !s.main_has_aaaa => agree += 1,
                (Ok(s), GenClass::Partial | GenClass::Full) if s.main_has_aaaa => agree += 1,
                (Ok(s), GenClass::UnknownPrimary) if s.offsite_landing => agree += 1,
                _ => {}
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.97, "crawl/truth agreement {rate}");
    }

    #[test]
    fn deterministic_and_thread_count_independent() {
        let w = world();
        let e = w.latest_epoch();
        let seq = crawl_epoch(
            &w,
            e,
            &CrawlConfig {
                threads: 1,
                ..CrawlConfig::default()
            },
        );
        let par = crawl_epoch(
            &w,
            e,
            &CrawlConfig {
                threads: 4,
                ..CrawlConfig::default()
            },
        );
        for (a, b) in seq.sites.iter().zip(&par.sites) {
            assert_eq!(a.domain, b.domain);
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.final_fqdn, y.final_fqdn);
                    assert_eq!(x.main_used, y.main_used);
                    assert_eq!(x.resources.len(), y.resources.len());
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("outcome mismatch for {}", a.domain),
            }
        }
    }

    #[test]
    fn v4_win_rate_is_calibrated() {
        let w = world();
        let e = w.latest_epoch();
        let report = crawl_epoch(&w, e, &CrawlConfig::default());
        let mut v6_capable = 0;
        let mut used_v4 = 0;
        for s in &report.sites {
            if let Ok(ok) = &s.outcome {
                if ok.main_has_aaaa {
                    v6_capable += 1;
                    if ok.main_used == Family::V4 {
                        used_v4 += 1;
                    }
                }
            }
        }
        let rate = used_v4 as f64 / v6_capable as f64;
        assert!(
            (0.05..0.20).contains(&rate),
            "main-page v4 win rate {rate} ({used_v4}/{v6_capable})"
        );
    }

    #[test]
    fn main_page_only_finds_fewer_resources() {
        let w = world();
        let e = w.latest_epoch();
        let full = crawl_epoch(&w, e, &CrawlConfig::default());
        let main_only = crawl_epoch(
            &w,
            e,
            &CrawlConfig {
                click_links: false,
                ..CrawlConfig::default()
            },
        );
        let count = |r: &CrawlReport| {
            r.sites
                .iter()
                .filter_map(|s| s.outcome.as_ref().ok())
                .map(|s| s.resources.len())
                .sum::<usize>()
        };
        assert!(
            count(&main_only) < count(&full),
            "clicking links must surface more resources"
        );
    }

    #[test]
    fn failures_are_classified() {
        let w = world();
        let e = w.latest_epoch();
        let report = crawl_epoch(&w, e, &CrawlConfig::default());
        let mut kinds = std::collections::HashSet::new();
        for s in &report.sites {
            if let Err(f) = &s.outcome {
                kinds.insert(*f);
            }
        }
        assert!(kinds.contains(&PageFailure::NxDomain));
        // At least two distinct "other" failure kinds observed.
        assert!(
            kinds.len() >= 3,
            "expected a diverse failure mix, got {kinds:?}"
        );
    }

    #[test]
    fn resource_chains_support_service_identification() {
        let w = world();
        let e = w.latest_epoch();
        let report = crawl_epoch(&w, e, &CrawlConfig::default());
        let catalog = cloudmodel::catalog::ServiceCatalog::paper();
        let mut identified = 0;
        for s in report.sites.iter().filter_map(|s| s.outcome.as_ref().ok()) {
            for r in &s.resources {
                if catalog.identify(&r.chain).is_some() {
                    identified += 1;
                }
            }
        }
        assert!(identified > 50, "only {identified} service chains found");
    }
}
