//! IPv6 enablement policies and their ease scores.

use serde::{Deserialize, Serialize};

/// How a cloud service exposes IPv6 to tenants — the paper's §5.2/§5.3
/// policy spectrum, ordered roughly from easiest to hardest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ipv6Policy {
    /// IPv6 cannot be disabled (Azure Front Door).
    AlwaysOn,
    /// Enabled by default, no documented opt-out (bunny.net, App Engine).
    DefaultOn,
    /// Enabled by default but tenants may opt out (Cloudflare, Akamai,
    /// CloudFront).
    DefaultOnOptOut,
    /// Supported, but the tenant must flip a control-plane switch.
    OptIn,
    /// Supported only for some product variants (Amazon ELB).
    Partial,
    /// Supported, but enabling requires changing URLs/code the tenant has
    /// already deployed (Amazon S3's dual-stack endpoints).
    OptInCodeChange,
    /// No documented IPv6 support.
    Unknown,
}

impl Ipv6Policy {
    /// Label matching the paper's Table 2 wording.
    pub fn label(self) -> &'static str {
        match self {
            Ipv6Policy::AlwaysOn => "Always On",
            Ipv6Policy::DefaultOn => "Default-On",
            Ipv6Policy::DefaultOnOptOut => "Default-On, Opt-out",
            Ipv6Policy::OptIn => "Yes",
            Ipv6Policy::Partial => "Partial",
            Ipv6Policy::OptInCodeChange => "Yes (code change)",
            Ipv6Policy::Unknown => "Unknown",
        }
    }

    /// Ease-of-enabling score in `[0, 1]`: 1 = nothing for the tenant to do,
    /// 0 = no way to do it. Used as the x-axis of the §5 policy-vs-adoption
    /// correlation and as the prior for tenant behaviour in the generator.
    pub fn ease(self) -> f64 {
        match self {
            Ipv6Policy::AlwaysOn => 1.0,
            Ipv6Policy::DefaultOn => 0.95,
            Ipv6Policy::DefaultOnOptOut => 0.7,
            Ipv6Policy::OptIn => 0.3,
            Ipv6Policy::Partial => 0.15,
            Ipv6Policy::OptInCodeChange => 0.05,
            Ipv6Policy::Unknown => 0.0,
        }
    }

    /// All policies, easiest first.
    pub fn all() -> [Ipv6Policy; 7] {
        [
            Ipv6Policy::AlwaysOn,
            Ipv6Policy::DefaultOn,
            Ipv6Policy::DefaultOnOptOut,
            Ipv6Policy::OptIn,
            Ipv6Policy::Partial,
            Ipv6Policy::OptInCodeChange,
            Ipv6Policy::Unknown,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ease_is_monotone_in_declared_order() {
        let all = Ipv6Policy::all();
        for w in all.windows(2) {
            assert!(
                w[0].ease() >= w[1].ease(),
                "{:?} should be at least as easy as {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ease_bounds() {
        for p in Ipv6Policy::all() {
            assert!((0.0..=1.0).contains(&p.ease()));
        }
        assert_eq!(Ipv6Policy::AlwaysOn.ease(), 1.0);
        assert_eq!(Ipv6Policy::Unknown.ease(), 0.0);
    }

    #[test]
    fn labels_match_paper_wording() {
        assert_eq!(Ipv6Policy::DefaultOnOptOut.label(), "Default-On, Opt-out");
        assert_eq!(Ipv6Policy::AlwaysOn.label(), "Always On");
    }
}
