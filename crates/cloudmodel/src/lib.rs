//! # cloudmodel — cloud providers, services and IPv6 enablement policies
//!
//! §5 of the paper studies how cloud/CDN *deployment policy* shapes tenant
//! IPv6 adoption: always-on services sit at 100%, default-on-with-opt-out
//! lands at 50–70%, opt-in at single digits, and "opt-in by code change"
//! (Amazon S3's separate dual-stack URL) at 0.4% after nine years.
//!
//! This crate models that world:
//!
//! * [`policy::Ipv6Policy`] — the enablement-policy spectrum with an *ease
//!   score* used both by the tenant-behaviour generator and by the §5
//!   correlation analysis.
//! * [`catalog`] — the concrete catalog of the paper's Table 3 organizations
//!   (with their Fig 11 readiness mix as calibration targets, including the
//!   Bunnyway/Datacamp IPv4-partnership and the Akamai org-split artifacts)
//!   and Table 2 services (with CNAME suffixes for He-et-al-style service
//!   identification).
//!
//! The world generator consumes the catalog to synthesize tenancies; the
//! analysis layer re-measures them and compares against the catalog's
//! calibration targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod policy;

pub use catalog::{paper_orgs, paper_services, CloudOrg, CloudService, ServiceCatalog};
pub use policy::Ipv6Policy;
