//! The concrete cloud catalog: Table 3 organizations and Table 2 services.
//!
//! Numbers in this module are the *paper's measured values*; the world
//! generator uses them as calibration targets and the experiment binaries
//! print them as the "paper" column next to our measured reproduction.

use crate::policy::Ipv6Policy;
use dnssim::Name;

/// One cloud organization as it appears in the AS-to-Org dataset
/// (Table 3 / Fig 11 rows).
#[derive(Debug, Clone)]
pub struct CloudOrg {
    /// Stable key, e.g. `"cloudflare-inc"`.
    pub key: &'static str,
    /// Display name as in Table 3, e.g. `"Cloudflare, Inc."`.
    pub display: &'static str,
    /// Pairing group for Fig 12 ("Cloudflare (All)" merges both Cloudflare
    /// orgs; "Akamai (All)" merges the B.V. / Inc. split).
    pub group: &'static str,
    /// The org's infrastructure domain (appears in reverse DNS, e.g.
    /// Google's `1e100.net`, Akamai's `akamaitechnologies.com`).
    pub infra_domain: &'static str,
    /// Paper: number of hosted domains (Table 3).
    pub paper_domains: u32,
    /// Paper: % of hosted domains that are IPv4-only.
    pub paper_pct_v4_only: f64,
    /// Paper: % IPv6-full.
    pub paper_pct_v6_full: f64,
    /// Paper: % IPv6-only.
    pub paper_pct_v6_only: f64,
    /// If set, this org serves only the AAAA side of its tenants while the
    /// named group serves the A side (the Bunnyway→Datacamp partnership).
    pub v4_partner_group: Option<&'static str>,
}

impl CloudOrg {
    /// The generator's target probability that a tenant domain on this org
    /// is IPv6-enabled (derived from the paper's measured v6-full share;
    /// v6-only orgs use their v6-only share).
    pub fn adoption_target(&self) -> f64 {
        if self.v4_partner_group.is_some() {
            self.paper_pct_v6_only / 100.0
        } else {
            self.paper_pct_v6_full / 100.0
        }
    }
}

/// One identified cloud service (Table 2 rows).
#[derive(Debug, Clone)]
pub struct CloudService {
    /// Stable key, e.g. `"amazon-s3"`.
    pub key: &'static str,
    /// Provider group (matches [`CloudOrg::group`]).
    pub provider_group: &'static str,
    /// Provider display name for the table ("Amazon", "Microsoft", ...).
    pub provider_display: &'static str,
    /// Service display name ("Amazon S3").
    pub display: &'static str,
    /// Enablement policy.
    pub policy: Ipv6Policy,
    /// CNAME suffix identifying the service (tenant FQDNs CNAME to
    /// `<something>.<suffix>`).
    pub cname_suffix: &'static str,
    /// Paper: IPv6-ready domain count.
    pub paper_ready: u32,
    /// Paper: total domain count.
    pub paper_total: u32,
}

impl CloudService {
    /// Paper's measured adoption rate.
    pub fn paper_adoption(&self) -> f64 {
        if self.paper_total == 0 {
            0.0
        } else {
            self.paper_ready as f64 / self.paper_total as f64
        }
    }

    /// The suffix as a [`Name`].
    pub fn suffix_name(&self) -> Name {
        Name::new(self.cname_suffix)
    }
}

/// The Table 3 organization catalog (top 15 clouds by hosted domains).
pub fn paper_orgs() -> Vec<CloudOrg> {
    vec![
        CloudOrg {
            key: "cloudflare-inc",
            display: "Cloudflare, Inc.",
            group: "cloudflare",
            infra_domain: "cloudflare.com",
            paper_domains: 59_106,
            paper_pct_v4_only: 14.8,
            paper_pct_v6_full: 85.2,
            paper_pct_v6_only: 0.0,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "amazon",
            display: "Amazon.com, Inc.",
            group: "amazon",
            infra_domain: "amazonaws.com",
            paper_domains: 57_856,
            paper_pct_v4_only: 74.1,
            paper_pct_v6_full: 24.6,
            paper_pct_v6_only: 1.2,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "google",
            display: "Google LLC",
            group: "google",
            infra_domain: "1e100.net",
            paper_domains: 40_735,
            paper_pct_v4_only: 32.3,
            paper_pct_v6_full: 67.7,
            paper_pct_v6_only: 0.0,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "akamai-intl",
            display: "Akamai International B.V.",
            group: "akamai",
            infra_domain: "akamaiedge.net",
            paper_domains: 10_533,
            paper_pct_v4_only: 34.7,
            paper_pct_v6_full: 50.4,
            paper_pct_v6_only: 14.9,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "fastly",
            display: "Fastly, Inc.",
            group: "fastly",
            infra_domain: "fastly.net",
            paper_domains: 7_739,
            paper_pct_v4_only: 65.5,
            paper_pct_v6_full: 34.3,
            paper_pct_v6_only: 0.2,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "microsoft",
            display: "Microsoft Corporation",
            group: "microsoft",
            infra_domain: "azurewebsites.net",
            paper_domains: 5_480,
            paper_pct_v4_only: 60.2,
            paper_pct_v6_full: 39.7,
            paper_pct_v6_only: 0.1,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "akamai-us",
            display: "Akamai Technologies, Inc.",
            group: "akamai",
            infra_domain: "akamaitechnologies.com",
            paper_domains: 5_416,
            paper_pct_v4_only: 96.2,
            paper_pct_v6_full: 3.4,
            paper_pct_v6_only: 0.4,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "cloudflare-london",
            display: "Cloudflare London, LLC",
            group: "cloudflare",
            infra_domain: "cloudflare.net",
            paper_domains: 3_474,
            paper_pct_v4_only: 83.4,
            paper_pct_v6_full: 16.6,
            paper_pct_v6_only: 0.0,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "hetzner",
            display: "Hetzner Online GmbH",
            group: "hetzner",
            infra_domain: "your-server.de",
            paper_domains: 3_303,
            paper_pct_v4_only: 82.2,
            paper_pct_v6_full: 17.4,
            paper_pct_v6_only: 0.4,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "ovh",
            display: "OVH SAS",
            group: "ovh",
            infra_domain: "ovh.net",
            paper_domains: 3_134,
            paper_pct_v4_only: 86.6,
            paper_pct_v6_full: 13.0,
            paper_pct_v6_only: 0.4,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "alibaba",
            display: "Hangzhou Alibaba Advertising Co.,Ltd.",
            group: "alibaba",
            infra_domain: "alibabadns.com",
            paper_domains: 3_003,
            paper_pct_v4_only: 79.5,
            paper_pct_v6_full: 20.2,
            paper_pct_v6_only: 0.2,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "datacamp",
            display: "Datacamp Limited",
            group: "datacamp",
            infra_domain: "cdn77.com",
            paper_domains: 2_885,
            paper_pct_v4_only: 60.4,
            paper_pct_v6_full: 39.6,
            paper_pct_v6_only: 0.0,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "digitalocean",
            display: "DigitalOcean, LLC",
            group: "digitalocean",
            infra_domain: "digitalocean.com",
            paper_domains: 1_899,
            paper_pct_v4_only: 90.5,
            paper_pct_v6_full: 9.2,
            paper_pct_v6_only: 0.3,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "incapsula",
            display: "Incapsula Inc",
            group: "incapsula",
            infra_domain: "incapdns.net",
            paper_domains: 1_363,
            paper_pct_v4_only: 96.3,
            paper_pct_v6_full: 3.5,
            paper_pct_v6_only: 0.1,
            v4_partner_group: None,
        },
        CloudOrg {
            key: "bunnyway",
            display: "BUNNYWAY, informacijske storitve d.o.o.",
            group: "bunnyway",
            infra_domain: "b-cdn.net",
            paper_domains: 1_316,
            paper_pct_v4_only: 0.5,
            paper_pct_v6_full: 0.0,
            paper_pct_v6_only: 99.5,
            v4_partner_group: Some("datacamp"),
        },
    ]
}

/// The Table 2 service catalog.
pub fn paper_services() -> Vec<CloudService> {
    vec![
        CloudService {
            key: "cloudflare-cdn",
            provider_group: "cloudflare",
            provider_display: "Cloudflare",
            display: "Cloudflare CDN",
            policy: Ipv6Policy::DefaultOnOptOut,
            cname_suffix: "cdn.cloudflare.net",
            paper_ready: 3_086,
            paper_total: 4_402,
        },
        CloudService {
            key: "bunny-cdn",
            provider_group: "bunnyway",
            provider_display: "Bunny.net",
            display: "bunny.net CDN",
            policy: Ipv6Policy::DefaultOn,
            cname_suffix: "b-cdn.net",
            paper_ready: 1_003,
            paper_total: 1_004,
        },
        CloudService {
            key: "akamai-cdn",
            provider_group: "akamai",
            provider_display: "Akamai",
            display: "Akamai CDN",
            policy: Ipv6Policy::DefaultOnOptOut,
            cname_suffix: "edgekey.net",
            paper_ready: 3_620,
            paper_total: 7_419,
        },
        CloudService {
            key: "akamai-netstorage",
            provider_group: "akamai",
            provider_display: "Akamai",
            display: "Akamai NetStorage",
            policy: Ipv6Policy::DefaultOnOptOut,
            cname_suffix: "akamaihd.net",
            paper_ready: 791,
            paper_total: 1_633,
        },
        CloudService {
            key: "cdn77",
            provider_group: "datacamp",
            provider_display: "DataCamp",
            display: "CDN77",
            policy: Ipv6Policy::OptIn,
            cname_suffix: "rsc.cdn77.org",
            paper_ready: 673,
            paper_total: 759,
        },
        CloudService {
            key: "bunny-cdn-datacamp",
            provider_group: "datacamp",
            provider_display: "DataCamp",
            display: "bunny.net CDN",
            policy: Ipv6Policy::DefaultOn,
            cname_suffix: "b-cdn77.net",
            paper_ready: 217,
            paper_total: 1_300,
        },
        CloudService {
            key: "google-cloud-run",
            provider_group: "google",
            provider_display: "Google",
            display: "Google Cloud Run",
            policy: Ipv6Policy::OptIn,
            cname_suffix: "run.app",
            paper_ready: 334,
            paper_total: 334,
        },
        CloudService {
            key: "google-app-engine",
            provider_group: "google",
            provider_display: "Google",
            display: "Google App Engine",
            policy: Ipv6Policy::DefaultOn,
            cname_suffix: "appspot.com",
            paper_ready: 150,
            paper_total: 150,
        },
        CloudService {
            key: "cloudfront",
            provider_group: "amazon",
            provider_display: "Amazon",
            display: "Amazon CloudFront CDN",
            policy: Ipv6Policy::DefaultOnOptOut,
            cname_suffix: "cloudfront.net",
            paper_ready: 9_142,
            paper_total: 12_851,
        },
        CloudService {
            key: "amazon-elb",
            provider_group: "amazon",
            provider_display: "Amazon",
            display: "Amazon Elastic Load Balancer",
            policy: Ipv6Policy::Partial,
            cname_suffix: "elb.amazonaws.com",
            paper_ready: 201,
            paper_total: 2_731,
        },
        CloudService {
            key: "amazon-ga",
            provider_group: "amazon",
            provider_display: "Amazon",
            display: "Amazon Global Accelerator",
            policy: Ipv6Policy::OptIn,
            cname_suffix: "awsglobalaccelerator.com",
            paper_ready: 4,
            paper_total: 150,
        },
        CloudService {
            key: "amazon-s3",
            provider_group: "amazon",
            provider_display: "Amazon",
            display: "Amazon S3",
            policy: Ipv6Policy::OptInCodeChange,
            cname_suffix: "s3.amazonaws.com",
            paper_ready: 7,
            paper_total: 1_862,
        },
        CloudService {
            key: "amazon-apigw",
            provider_group: "amazon",
            provider_display: "Amazon",
            display: "Amazon API Gateway",
            policy: Ipv6Policy::OptIn,
            cname_suffix: "execute-api.amazonaws.com",
            paper_ready: 0,
            paper_total: 419,
        },
        CloudService {
            key: "amazon-waf",
            provider_group: "amazon",
            provider_display: "Amazon",
            display: "Amazon Web App. Firewall",
            policy: Ipv6Policy::OptIn,
            cname_suffix: "waf.amazonaws.com",
            paper_ready: 0,
            paper_total: 134,
        },
        CloudService {
            key: "azure-iot",
            provider_group: "microsoft",
            provider_display: "Microsoft",
            display: "Azure Stack/IoT Edge",
            policy: Ipv6Policy::OptIn,
            cname_suffix: "azure-devices.net",
            paper_ready: 1_134,
            paper_total: 1_134,
        },
        CloudService {
            key: "azure-front-door",
            provider_group: "microsoft",
            provider_display: "Microsoft",
            display: "Azure Front Door CDN",
            policy: Ipv6Policy::AlwaysOn,
            cname_suffix: "azurefd.net",
            paper_ready: 913,
            paper_total: 913,
        },
        CloudService {
            key: "azure-vms",
            provider_group: "microsoft",
            provider_display: "Microsoft",
            display: "Azure Cloud Services / VMs",
            policy: Ipv6Policy::OptIn,
            cname_suffix: "cloudapp.azure.com",
            paper_ready: 2,
            paper_total: 607,
        },
        CloudService {
            key: "azure-websites",
            provider_group: "microsoft",
            provider_display: "Microsoft",
            display: "Azure Websites",
            policy: Ipv6Policy::Unknown,
            cname_suffix: "azurewebsites.net",
            paper_ready: 0,
            paper_total: 544,
        },
        CloudService {
            key: "azure-blob",
            provider_group: "microsoft",
            provider_display: "Microsoft",
            display: "Azure Blob Storage",
            policy: Ipv6Policy::Unknown,
            cname_suffix: "blob.core.windows.net",
            paper_ready: 0,
            paper_total: 354,
        },
    ]
}

/// Suffix-based service identification over CNAME chains.
#[derive(Debug, Clone)]
pub struct ServiceCatalog {
    services: Vec<CloudService>,
    suffixes: Vec<(Name, usize)>,
}

impl ServiceCatalog {
    /// Build from a service list.
    pub fn new(services: Vec<CloudService>) -> ServiceCatalog {
        let suffixes = services
            .iter()
            .enumerate()
            .map(|(i, s)| (s.suffix_name(), i))
            .collect();
        ServiceCatalog { services, suffixes }
    }

    /// The paper's catalog.
    pub fn paper() -> ServiceCatalog {
        ServiceCatalog::new(paper_services())
    }

    /// All services.
    pub fn services(&self) -> &[CloudService] {
        &self.services
    }

    /// Identify the service a CNAME chain lands on: the longest service
    /// suffix matching *any* name in the chain (later chain entries — closer
    /// to the infrastructure — win ties).
    pub fn identify(&self, chain: &[Name]) -> Option<&CloudService> {
        let mut best: Option<(usize, usize)> = None; // (suffix label count, idx)
        for name in chain.iter().rev() {
            for (suffix, idx) in &self.suffixes {
                if name.is_subdomain_of(suffix) {
                    let labels = suffix.label_count();
                    if best.is_none_or(|(b, _)| labels > b) {
                        best = Some((labels, *idx));
                    }
                }
            }
            if best.is_some() {
                break; // the deepest chain entry that matches wins
            }
        }
        best.map(|(_, idx)| &self.services[idx])
    }

    /// Look up a service by key.
    pub fn by_key(&self, key: &str) -> Option<&CloudService> {
        self.services.iter().find(|s| s.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn org_catalog_matches_table3_shape() {
        let orgs = paper_orgs();
        assert_eq!(orgs.len(), 15, "top 15 clouds");
        // Percentages are consistent (sum ≈ 100).
        for o in &orgs {
            let sum = o.paper_pct_v4_only + o.paper_pct_v6_full + o.paper_pct_v6_only;
            assert!(
                (sum - 100.0).abs() < 1.5,
                "{}: shares sum to {sum}",
                o.display
            );
        }
        // Ordered by domain count, descending (Table 3 order).
        for w in orgs.windows(2) {
            assert!(w[0].paper_domains >= w[1].paper_domains);
        }
        // Keys and groups are unique/consistent.
        let mut keys: Vec<_> = orgs.iter().map(|o| o.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 15);
    }

    #[test]
    fn bunnyway_partnership_encoded() {
        let orgs = paper_orgs();
        let bunny = orgs.iter().find(|o| o.key == "bunnyway").unwrap();
        assert_eq!(bunny.v4_partner_group, Some("datacamp"));
        assert!(bunny.paper_pct_v6_only > 99.0);
        // The adoption target for bunnyway derives from v6-only share.
        assert!(bunny.adoption_target() > 0.9);
    }

    #[test]
    fn akamai_split_encoded() {
        let orgs = paper_orgs();
        let intl = orgs.iter().find(|o| o.key == "akamai-intl").unwrap();
        let us = orgs.iter().find(|o| o.key == "akamai-us").unwrap();
        assert_eq!(
            intl.group, us.group,
            "both in the Fig 12 'Akamai (All)' group"
        );
        assert!(intl.paper_pct_v6_full > 10.0 * us.paper_pct_v6_full);
    }

    #[test]
    fn service_catalog_matches_table2_shape() {
        let services = paper_services();
        assert_eq!(services.len(), 19);
        let providers: std::collections::HashSet<_> =
            services.iter().map(|s| s.provider_display).collect();
        assert_eq!(providers.len(), 7, "Table 2 spans 7 providers");
        // Always-on services are fully adopted in the paper.
        for s in &services {
            if s.policy == Ipv6Policy::AlwaysOn {
                assert!((s.paper_adoption() - 1.0).abs() < 1e-9);
            }
        }
        let s3 = services.iter().find(|s| s.key == "amazon-s3").unwrap();
        assert!(s3.paper_adoption() < 0.005, "S3 near zero");
    }

    #[test]
    fn policy_ease_correlates_with_paper_adoption() {
        // The paper's core §5 finding must hold *within the catalog data
        // itself*: Spearman correlation between ease and adoption > 0.
        let services = paper_services();
        let ease: Vec<f64> = services.iter().map(|s| s.policy.ease()).collect();
        let adoption: Vec<f64> = services.iter().map(|s| s.paper_adoption()).collect();
        // Inline Spearman to avoid a netstats dev-dependency cycle.
        let rank = |xs: &[f64]| {
            let mut idx: Vec<usize> = (0..xs.len()).collect();
            idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
            let mut r = vec![0.0; xs.len()];
            for (i, &j) in idx.iter().enumerate() {
                r[j] = i as f64;
            }
            r
        };
        let (rx, ry) = (rank(&ease), rank(&adoption));
        let n = rx.len() as f64;
        let mx = rx.iter().sum::<f64>() / n;
        let my = ry.iter().sum::<f64>() / n;
        let cov: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = rx.iter().map(|a| (a - mx) * (a - mx)).sum();
        let vy: f64 = ry.iter().map(|b| (b - my) * (b - my)).sum();
        let rho = cov / (vx * vy).sqrt();
        assert!(rho > 0.4, "ease-adoption Spearman rho = {rho}");
    }

    #[test]
    fn identify_by_suffix() {
        let cat = ServiceCatalog::paper();
        let chain = vec![
            Name::new("assets.shop.example"),
            Name::new("d1234.cloudfront.net"),
        ];
        assert_eq!(cat.identify(&chain).unwrap().key, "cloudfront");

        let chain_s3 = vec![
            Name::new("files.example.com"),
            Name::new("bucket.s3.amazonaws.com"),
        ];
        assert_eq!(cat.identify(&chain_s3).unwrap().key, "amazon-s3");

        // The deepest chain entry wins.
        let chain_both = vec![Name::new("x.azurewebsites.net"), Name::new("x.azurefd.net")];
        assert_eq!(cat.identify(&chain_both).unwrap().key, "azure-front-door");

        assert!(cat.identify(&[Name::new("plain.example.org")]).is_none());
        assert!(cat.by_key("amazon-s3").is_some());
        assert!(cat.by_key("nope").is_none());
    }
}
