//! Website and third-party resource generation with per-epoch DNS.
//!
//! The generation principle (see crate docs): the paper pins per-rank class
//! shares (Fig 6), failure rates (Fig 5) and the heavy-hitter identities
//! (Fig 18), so those are drawn *by construction*; everything downstream —
//! span distributions (Fig 8), the what-if curve (Fig 10), the per-site
//! IPv4-only counts (Fig 7) — emerges from the generated site↔domain
//! bipartite graph and is *measured back* by the analysis pipeline, not
//! copied from the paper.
//!
//! Epoch evolution (Oct 2024 → Apr 2025 → Jul 2025) is structural: sites
//! die (NXDOMAIN growth), IPv4-only sites gain apex `AAAA`s, and IPv4-only
//! third-party domains turn on IPv6 — a site's class in epoch `e` is then
//! *recomputed* from its dependencies, which is how partial sites drift to
//! full in later snapshots exactly like the paper's +0.6%.

use crate::calibration::Calibration;
use crate::clouds::{CloudRuntime, Readiness};
use dnssim::{FailureMode, Name, ZoneDb};
use rand::Rng;
use std::collections::HashMap;
use webmodel::namegen::NameGenerator;
use webmodel::resource::{DomainCategory, ResourceType};
use webmodel::site::{Page, ResourceRef, Website};

/// Ground-truth classification of a site in one epoch (used by tests and
/// calibration checks — the measurement pipeline never reads this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenClass {
    /// Site no longer resolves.
    NxDomain,
    /// DNS SERVFAIL/timeout, TLS or HTTP failure.
    OtherFailure,
    /// Main page redirects off-list ("Unknown Primary Domain").
    UnknownPrimary,
    /// No apex AAAA.
    V4Only,
    /// Apex AAAA but at least one IPv4-only dependency.
    Partial,
    /// Apex AAAA and all dependencies IPv6-ready.
    Full,
}

/// Per-site ground truth across epochs.
#[derive(Debug, Clone)]
pub struct SiteClassTruth {
    /// Class per epoch index.
    pub by_epoch: Vec<GenClass>,
}

/// How a "other loading failure" site fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpFailure {
    /// TLS negotiation fails.
    Tls,
    /// Server returns HTTP 5xx for the main page.
    Http5xx,
}

/// Tier of a third-party domain in the selection mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// High-reuse IPv4-only heavy hitters (the Fig 18 population).
    HeavyV4,
    /// High-reuse IPv6-ready infrastructure (fonts/CDN libraries).
    HeavyReady,
    /// Medium-reuse mixed pool.
    Mid,
    /// Long tail (span 1–2).
    Tail,
}

/// A third-party resource domain.
#[derive(Debug, Clone)]
pub struct ThirdParty {
    /// Registrable domain.
    pub domain: Name,
    /// Concrete served FQDNs (1–2 per domain).
    pub fqdns: Vec<Name>,
    /// VirusTotal-style category (Fig 9).
    pub category: DomainCategory,
    /// Selection tier.
    pub tier: Tier,
    /// Epoch from which the domain has AAAA records (None = IPv4-only for
    /// the whole study).
    pub ready_epoch: Option<usize>,
    /// Rare true-AAAA-only domain.
    pub v6_only: bool,
}

impl ThirdParty {
    /// Is the domain IPv6-ready at epoch `e`?
    pub fn ready_at(&self, e: usize) -> bool {
        self.ready_epoch.map(|r| r <= e).unwrap_or(false)
    }
}

/// Per-site generation info (parallel to `Website`).
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// Permanent failure mode, if any (applies from epoch 0).
    pub other_failure: Option<OtherFailureKind>,
    /// Epoch at which the site falls out of DNS (NXDOMAIN from then on).
    /// `Some(0)` means it never resolved during the study.
    pub death_epoch: Option<usize>,
    /// Epoch from which the apex/serving names carry AAAA (None = never).
    pub apex_aaaa_epoch: Option<usize>,
    /// Off-list redirect target ("Unknown Primary Domain" cases).
    pub offsite_redirect: Option<Name>,
    /// Indices into the third-party pool this site fetches from.
    pub dep_domains: Vec<u32>,
    /// An IPv4-only first-party subdomain (the §4.3 "easy to fix" 2.3%).
    pub v4only_first_party: Option<Name>,
    /// All first-party FQDNs (serving + subdomains).
    pub first_party_fqdns: Vec<Name>,
    /// First-party subdomains that lag without AAAA even though the site is
    /// AAAA-enabled (the paper's apnic.net example: `www` is IPv6-full on
    /// Cloudflare while `login`/`info` are IPv4-only on Amazon). Drives the
    /// multi-cloud tenant differences behind Fig 12.
    pub lagging_first_party: Vec<Name>,
}

/// Failure mode taxonomy for "Loading-Failure (Others)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OtherFailureKind {
    /// DNS SERVFAIL.
    DnsServFail,
    /// DNS timeout.
    DnsTimeout,
    /// TLS failure.
    Tls,
    /// HTTP 5xx.
    Http,
}

/// One measurement epoch: a complete DNS zone plus server-side behaviour.
#[derive(Debug)]
pub struct EpochState {
    /// Human label ("Oct 2024").
    pub label: String,
    /// The zone as it existed in this epoch.
    pub zone: ZoneDb,
    /// HTTP-level redirects (apex → serving fqdn, off-list redirects).
    pub redirects: HashMap<Name, Name>,
    /// TLS/HTTP failures keyed by serving FQDN.
    pub http_failures: HashMap<Name, HttpFailure>,
}

/// The generated web.
#[derive(Debug)]
pub struct WebWorld {
    /// Websites in rank order.
    pub sites: Vec<Website>,
    /// Parallel generation info.
    pub info: Vec<SiteInfo>,
    /// Ground-truth classes per epoch.
    pub truth: Vec<SiteClassTruth>,
    /// The third-party domain pool.
    pub third_parties: Vec<ThirdParty>,
    /// Measurement epochs.
    pub epochs: Vec<EpochState>,
}

/// Epoch labels matching the paper's snapshots.
pub const EPOCH_LABELS: [&str; 3] = ["Oct 2024", "Apr 2025", "Jul 2025"];

/// The Fig 18 heavy hitters: real IPv4-only third-party domains with their
/// categories (ads dominate, per Fig 9).
const FIG18_HEAVY_HITTERS: &[(&str, DomainCategory)] = &[
    ("doubleclick.net", DomainCategory::Ads),
    ("adnxs.com", DomainCategory::Ads),
    ("criteo.com", DomainCategory::Ads),
    ("amazon-adsystem.com", DomainCategory::Ads),
    ("rubiconproject.com", DomainCategory::Ads),
    ("pubmatic.com", DomainCategory::Ads),
    ("crwdcntrl.net", DomainCategory::Trackers),
    ("demdex.net", DomainCategory::Trackers),
    ("tapad.com", DomainCategory::Trackers),
    ("dnacdn.net", DomainCategory::ContentDelivery),
    ("openx.net", DomainCategory::Ads),
    ("rlcdn.com", DomainCategory::Trackers),
    ("clarity.ms", DomainCategory::Analytics),
    ("id5-sync.com", DomainCategory::Trackers),
    ("adsrvr.org", DomainCategory::Ads),
    ("33across.com", DomainCategory::Ads),
    ("smartadserver.com", DomainCategory::Ads),
    ("agkn.com", DomainCategory::Analytics),
    ("lijit.com", DomainCategory::Ads),
    ("3lift.com", DomainCategory::Ads),
];

/// Draw from a zero-mean unit normal (Box–Muller; two uniforms per draw).
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal with the given median and log-space sigma.
fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    (median.ln() + sigma * normal(rng)).exp()
}

/// Small-mean Poisson (Knuth's method).
fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // numeric safety net
        }
    }
}

/// Weighted index sampling over a cumulative weight table.
struct CumTable {
    cum: Vec<f64>,
}

impl CumTable {
    fn new(weights: impl Iterator<Item = f64>) -> CumTable {
        let mut cum = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cum.push(acc);
        }
        CumTable { cum }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().expect("non-empty table");
        let roll = rng.gen::<f64>() * total;
        self.cum
            .partition_point(|&c| c < roll)
            .min(self.cum.len() - 1)
    }
}

/// Generate the complete web (sites, third parties, epochs).
pub fn generate_web<R: Rng + ?Sized>(
    rng: &mut R,
    cal: &Calibration,
    num_sites: usize,
    num_epochs: usize,
    namegen: &mut NameGenerator,
    clouds: &mut CloudRuntime,
) -> WebWorld {
    assert!(num_sites >= 100, "world too small to be meaningful");
    assert!((1..=3).contains(&num_epochs), "1..=3 epochs supported");

    let third_parties = build_third_party_pool(rng, cal, num_sites, num_epochs, namegen);
    let heavy_v4: Vec<usize> = tier_indices(&third_parties, Tier::HeavyV4);
    let heavy_ready: Vec<usize> = tier_indices(&third_parties, Tier::HeavyReady);
    let mid: Vec<usize> = tier_indices(&third_parties, Tier::Mid);
    let tail: Vec<usize> = tier_indices(&third_parties, Tier::Tail);

    // Zipf-ish weights inside the reuse pools.
    let zipf = |n: usize, s: f64| (1..=n).map(move |i| (i as f64).powf(-s));
    let heavy_v4_tab = CumTable::new(zipf(heavy_v4.len(), 1.0));
    let heavy_ready_tab = CumTable::new(zipf(heavy_ready.len(), 0.9));
    let mid_tab = CumTable::new(zipf(mid.len(), 0.6));

    let mut sites = Vec::with_capacity(num_sites);
    let mut info = Vec::with_capacity(num_sites);

    for rank in 1..=num_sites {
        let (site, site_info) = generate_site(
            rng,
            cal,
            rank,
            num_epochs,
            namegen,
            &third_parties,
            (&heavy_v4, &heavy_v4_tab),
            (&heavy_ready, &heavy_ready_tab),
            (&mid, &mid_tab),
            &tail,
        );
        sites.push(site);
        info.push(site_info);
    }

    // Ground-truth classes per epoch.
    let truth: Vec<SiteClassTruth> = info
        .iter()
        .map(|si| SiteClassTruth {
            by_epoch: (0..num_epochs)
                .map(|e| classify_truth(si, &third_parties, e))
                .collect(),
        })
        .collect();

    // Per-epoch zones.
    let epochs: Vec<EpochState> = (0..num_epochs)
        .map(|e| build_epoch(rng, e, &sites, &info, &truth, &third_parties, clouds))
        .collect();

    WebWorld {
        sites,
        info,
        truth,
        third_parties,
        epochs,
    }
}

fn tier_indices(pool: &[ThirdParty], tier: Tier) -> Vec<usize> {
    pool.iter()
        .enumerate()
        .filter(|(_, t)| t.tier == tier)
        .map(|(i, _)| i)
        .collect()
}

fn build_third_party_pool<R: Rng + ?Sized>(
    rng: &mut R,
    cal: &Calibration,
    num_sites: usize,
    num_epochs: usize,
    namegen: &mut NameGenerator,
) -> Vec<ThirdParty> {
    let mut pool = Vec::new();
    let mut push = |domain: Name,
                    category: DomainCategory,
                    tier: Tier,
                    ready_epoch: Option<usize>,
                    v6_only: bool,
                    rng: &mut R| {
        // High-reuse domains serve from several subdomains (ad networks use
        // secure./pixel./cdn. hosts; infrastructure CDNs shard assets).
        let n_fqdns = match tier {
            Tier::HeavyV4 | Tier::HeavyReady => {
                2 + (rng.gen::<f64>() < 0.5) as usize + (rng.gen::<f64>() < 0.3) as usize
            }
            _ => 1 + (rng.gen::<f64>() < 0.35) as usize,
        };
        let mut fqdns = Vec::with_capacity(n_fqdns);
        for i in 0..n_fqdns {
            let label = if i == 0 {
                NameGenerator::subdomain_label(rng).to_string()
            } else {
                format!("{}{i}", NameGenerator::subdomain_label(rng))
            };
            fqdns.push(Name::new(&format!("{label}.{domain}")));
        }
        pool.push(ThirdParty {
            domain,
            fqdns,
            category,
            tier,
            ready_epoch,
            v6_only,
        });
    };

    // Heavy IPv4-only pool: Fig 18 names first, then generated ones.
    let heavy_v4_count = ((cal.heavy_hitter_count_factor * num_sites as f64) as usize)
        .max(FIG18_HEAVY_HITTERS.len() + 10);
    for (name, cat) in FIG18_HEAVY_HITTERS {
        let domain = Name::new(name);
        namegen.reserve(domain.clone());
        // A late-epoch enablement for a couple of real heavy hitters keeps
        // the what-if curve honest across epochs.
        push(domain, *cat, Tier::HeavyV4, None, false, rng);
    }
    for _ in FIG18_HEAVY_HITTERS.len()..heavy_v4_count {
        let cat = sample_heavy_category(rng);
        let ready_epoch = if rng.gen::<f64>() < cal.third_party_gain_per_epoch * 4.0 {
            Some(1 + (rng.gen::<f64>() < 0.5) as usize).filter(|_| num_epochs > 1)
        } else {
            None
        };
        push(
            namegen.registrable(rng),
            cat,
            Tier::HeavyV4,
            ready_epoch,
            false,
            rng,
        );
    }

    // Heavy IPv6-ready infrastructure pool (fonts, JS CDNs, analytics that
    // did adopt IPv6): similar size, always ready.
    for _ in 0..heavy_v4_count {
        let cat = match rng.gen_range(0..10) {
            0..=3 => DomainCategory::ContentDelivery,
            4..=6 => DomainCategory::Assets,
            7..=8 => DomainCategory::Analytics,
            _ => DomainCategory::SocialMedia,
        };
        push(
            namegen.registrable(rng),
            cat,
            Tier::HeavyReady,
            Some(0),
            false,
            rng,
        );
    }

    // Mid pool: 2% of site count, half ready.
    let mid_count = (num_sites / 25).max(60);
    for _ in 0..mid_count {
        let ready = rng.gen::<f64>() < 0.5;
        let ready_epoch = if ready {
            Some(0)
        } else if rng.gen::<f64>() < cal.third_party_gain_per_epoch * 2.0 && num_epochs > 1 {
            Some(1 + (rng.gen::<f64>() < 0.5) as usize)
        } else {
            None
        };
        push(
            namegen.registrable(rng),
            sample_any_category(rng),
            Tier::Mid,
            ready_epoch,
            false,
            rng,
        );
    }

    // Tail pool.
    let tail_count = (cal.third_party_pool_factor * num_sites as f64) as usize;
    for _ in 0..tail_count {
        let ready = rng.gen::<f64>() < cal.third_party_ready_rate;
        let ready_epoch = if ready {
            Some(0)
        } else if rng.gen::<f64>() < cal.third_party_gain_per_epoch && num_epochs > 1 {
            Some(1 + (rng.gen::<f64>() < 0.5) as usize)
        } else {
            None
        };
        let v6_only = ready && rng.gen::<f64>() < 0.01;
        push(
            namegen.registrable(rng),
            sample_any_category(rng),
            Tier::Tail,
            ready_epoch,
            v6_only,
            rng,
        );
    }

    pool
}

fn sample_heavy_category<R: Rng + ?Sized>(rng: &mut R) -> DomainCategory {
    // Fig 9 mix over the 396 high-span IPv4-only domains: ads ≈ 45%,
    // IT ≈ 15%, trackers ≈ 14%, CDN ≈ 13%, analytics ≈ 9%, rest other.
    match rng.gen_range(0..100) {
        0..=44 => DomainCategory::Ads,
        45..=59 => DomainCategory::InformationTechnology,
        60..=73 => DomainCategory::Trackers,
        74..=86 => DomainCategory::ContentDelivery,
        87..=95 => DomainCategory::Analytics,
        _ => DomainCategory::Other,
    }
}

fn sample_any_category<R: Rng + ?Sized>(rng: &mut R) -> DomainCategory {
    match rng.gen_range(0..100) {
        0..=24 => DomainCategory::Ads,
        25..=39 => DomainCategory::InformationTechnology,
        40..=51 => DomainCategory::Trackers,
        52..=66 => DomainCategory::ContentDelivery,
        67..=76 => DomainCategory::Analytics,
        77..=84 => DomainCategory::SocialMedia,
        85..=92 => DomainCategory::Assets,
        _ => DomainCategory::Other,
    }
}

#[allow(clippy::too_many_arguments)]
fn generate_site<R: Rng + ?Sized>(
    rng: &mut R,
    cal: &Calibration,
    rank: usize,
    num_epochs: usize,
    namegen: &mut NameGenerator,
    pool: &[ThirdParty],
    (heavy_v4, heavy_v4_tab): (&[usize], &CumTable),
    (heavy_ready, heavy_ready_tab): (&[usize], &CumTable),
    (mid, mid_tab): (&[usize], &CumTable),
    tail: &[usize],
) -> (Website, SiteInfo) {
    let domain = namegen.registrable(rng);
    let serving_fqdn = if rng.gen::<f64>() < 0.85 {
        Name::new(&format!("www.{domain}"))
    } else {
        domain.clone()
    };

    // Failure rolls.
    let nx_roll: f64 = rng.gen();
    let death_epoch = if nx_roll < cal.nxdomain_rate {
        Some(0)
    } else {
        (1..num_epochs).find(|_| rng.gen::<f64>() < cal.nxdomain_growth_per_epoch)
    };
    let other_failure = if rng.gen::<f64>() < cal.other_failure_rate {
        Some(match rng.gen_range(0..4) {
            0 => OtherFailureKind::DnsServFail,
            1 => OtherFailureKind::DnsTimeout,
            2 => OtherFailureKind::Tls,
            _ => OtherFailureKind::Http,
        })
    } else {
        None
    };
    let offsite_redirect = if rng.gen::<f64>() < 0.00006 {
        Some(namegen.registrable(rng))
    } else {
        None
    };

    // Class roll (Fig 6 calibration).
    let (p_v4, p_full) = cal.class_point_probs(rank);
    let class_roll: f64 = rng.gen();
    let base_class = if class_roll < p_v4 {
        GenClass::V4Only
    } else if class_roll < p_v4 + p_full {
        GenClass::Full
    } else {
        GenClass::Partial
    };
    let apex_aaaa_epoch = match base_class {
        GenClass::V4Only => {
            // May gain AAAA in a later epoch.
            (1..num_epochs).find(|_| rng.gen::<f64>() < cal.apex_aaaa_gain_per_epoch)
        }
        _ => Some(0),
    };

    // First-party subdomains.
    let mut first_party_fqdns = vec![serving_fqdn.clone()];
    if serving_fqdn != domain {
        first_party_fqdns.push(domain.clone());
    }
    for _ in 0..poisson(rng, cal.first_party_subdomains) {
        let label = NameGenerator::subdomain_label(rng);
        let fqdn = Name::new(&format!("{label}.{domain}"));
        if !first_party_fqdns.contains(&fqdn) {
            first_party_fqdns.push(fqdn);
        }
    }
    // Partial sites often have subdomains that lag without AAAA — kept out
    // of Full sites so ground-truth classes stay consistent.
    let lagging_first_party: Vec<Name> = if base_class == GenClass::Partial {
        first_party_fqdns
            .iter()
            .skip(2) // never the serving fqdn or apex
            .filter(|_| rng.gen::<f64>() < 0.25)
            .cloned()
            .collect()
    } else {
        Vec::new()
    };
    // The §4.3 first-party-only-partial mechanism.
    let fp_partial =
        base_class == GenClass::Partial && rng.gen::<f64>() < cal.first_party_partial_rate;
    let v4only_first_party = if fp_partial {
        Some(Name::new(&format!("assets.{domain}")))
    } else {
        None
    };

    // Third-party domain draws. Late bloomers — IPv4-only sites that gain
    // an apex AAAA in a later epoch — are often dependency-clean and come up
    // IPv6-full, which (with third-party enablement) drives the paper's
    // +0.6pp full drift between snapshots.
    let intensity = lognormal(rng, 1.0, 0.95).clamp(0.2, 12.0);
    let late_bloomer = base_class == GenClass::V4Only && apex_aaaa_epoch.is_some();
    let want_ready_only =
        base_class == GenClass::Full || fp_partial || (late_bloomer && rng.gen::<f64>() < 0.25);
    let mut dep_set: Vec<u32> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let add_dep =
        |idx: usize, dep_set: &mut Vec<u32>, seen: &mut std::collections::HashSet<usize>| {
            if seen.insert(idx) {
                dep_set.push(idx as u32);
            }
        };

    // Ads/tracker cluster (heavy IPv4-only): suppressed for ready-only sites.
    if !want_ready_only && rng.gen::<f64>() < 0.80 && !heavy_v4.is_empty() {
        let k = 1 + poisson(rng, 1.2 * intensity);
        for _ in 0..k {
            add_dep(heavy_v4[heavy_v4_tab.sample(rng)], &mut dep_set, &mut seen);
        }
    }
    // Ready infrastructure cluster: everyone has some.
    if !heavy_ready.is_empty() {
        let k = 2 + poisson(rng, 6.5 * intensity);
        for _ in 0..k {
            add_dep(
                heavy_ready[heavy_ready_tab.sample(rng)],
                &mut dep_set,
                &mut seen,
            );
        }
    }
    // Mid + tail draws (filtered to ready for ready-only sites).
    let mid_draws = poisson(rng, 2.5 * intensity);
    for _ in 0..mid_draws {
        let idx = mid[mid_tab.sample(rng)];
        if want_ready_only && !pool[idx].ready_at(0) {
            continue;
        }
        add_dep(idx, &mut dep_set, &mut seen);
    }
    let tail_draws = poisson(rng, 4.0 * intensity);
    for _ in 0..tail_draws {
        let idx = tail[rng.gen_range(0..tail.len())];
        if want_ready_only && !pool[idx].ready_at(0) {
            continue;
        }
        add_dep(idx, &mut dep_set, &mut seen);
    }
    // A partial site (other than the first-party-partial flavour) must have
    // at least one IPv4-only third-party dependency at epoch 0.
    if base_class == GenClass::Partial
        && !fp_partial
        && !dep_set
            .iter()
            .any(|&i| !pool[i as usize].ready_at(0) && !pool[i as usize].v6_only)
    {
        // Uniform (not popularity-weighted) so the forced dependency does
        // not artificially inflate the head of the span distribution.
        add_dep(
            heavy_v4[rng.gen_range(0..heavy_v4.len())],
            &mut dep_set,
            &mut seen,
        );
    }

    // Build pages and distribute fetches.
    let n_pages = 1 + rng.gen_range(3..=7).min(7);
    let mut pages: Vec<Page> = (0..n_pages)
        .map(|i| Page {
            path: if i == 0 {
                "/".to_string()
            } else {
                format!("/page{i}")
            },
            resources: Vec::new(),
            links: Vec::new(),
        })
        .collect();
    // Main page links to every other page.
    pages[0].links = (1..n_pages).collect();
    #[allow(clippy::needless_range_loop)] // i is the page id, not just an index
    for i in 1..n_pages {
        pages[i].links = vec![0, 1.max(i) % n_pages];
    }

    let place_fetch =
        |fqdn: Name, rtype: ResourceType, first_party: bool, pages: &mut Vec<Page>, rng: &mut R| {
            let page_idx = if rng.gen::<f64>() < cal.main_page_fetch_share || n_pages == 1 {
                0
            } else {
                rng.gen_range(1..n_pages)
            };
            pages[page_idx].resources.push(ResourceRef {
                fqdn,
                rtype,
                first_party,
            });
        };

    // First-party fetches: a handful per page.
    #[allow(clippy::needless_range_loop)] // pi is the page id
    for pi in 0..n_pages {
        let fetches = 2 + poisson(rng, 1.5);
        for _ in 0..fetches {
            let fqdn = first_party_fqdns[rng.gen_range(0..first_party_fqdns.len())].clone();
            let rtype = match rng.gen_range(0..10) {
                0..=4 => ResourceType::Image,
                5..=6 => ResourceType::Script,
                7 => ResourceType::Stylesheet,
                8 => ResourceType::XmlHttpRequest,
                _ => ResourceType::Other,
            };
            pages[pi].resources.push(ResourceRef {
                fqdn,
                rtype,
                first_party: true,
            });
        }
    }
    // The v4-only first-party subdomain contributes fetches too.
    if let Some(fp) = &v4only_first_party {
        let fetches = 1 + poisson(rng, 2.0);
        for _ in 0..fetches {
            place_fetch(fp.clone(), ResourceType::Image, true, &mut pages, rng);
        }
    }
    // Third-party fetches: multiplicity per drawn domain follows the
    // domain's category profile.
    for &dep in &dep_set {
        let tp = &pool[dep as usize];
        let fetches = match tp.tier {
            Tier::HeavyV4 | Tier::HeavyReady => 1 + poisson(rng, 2.2),
            _ => 1 + poisson(rng, 0.7),
        };
        let profile = tp.category.resource_profile();
        let prof_tab = CumTable::new(profile.iter().map(|(_, w)| *w));
        for _ in 0..fetches {
            let fqdn = tp.fqdns[rng.gen_range(0..tp.fqdns.len())].clone();
            let rtype = profile[prof_tab.sample(rng)].0;
            place_fetch(fqdn, rtype, false, &mut pages, rng);
        }
    }

    let site = Website {
        rank,
        domain,
        serving_fqdn,
        pages,
    };
    let site_info = SiteInfo {
        other_failure,
        death_epoch,
        apex_aaaa_epoch,
        offsite_redirect,
        dep_domains: dep_set,
        v4only_first_party,
        first_party_fqdns,
        lagging_first_party,
    };
    (site, site_info)
}

/// Ground-truth class of a site at an epoch, derived from its structure.
pub fn classify_truth(si: &SiteInfo, pool: &[ThirdParty], epoch: usize) -> GenClass {
    if si.death_epoch.map(|d| d <= epoch).unwrap_or(false) {
        return GenClass::NxDomain;
    }
    if si.other_failure.is_some() {
        return GenClass::OtherFailure;
    }
    if si.offsite_redirect.is_some() {
        return GenClass::UnknownPrimary;
    }
    let has_aaaa = si.apex_aaaa_epoch.map(|a| a <= epoch).unwrap_or(false);
    if !has_aaaa {
        return GenClass::V4Only;
    }
    if si.v4only_first_party.is_some() {
        return GenClass::Partial;
    }
    let all_ready = si
        .dep_domains
        .iter()
        .all(|&i| pool[i as usize].ready_at(epoch));
    if all_ready {
        GenClass::Full
    } else {
        GenClass::Partial
    }
}

fn build_epoch<R: Rng + ?Sized>(
    rng: &mut R,
    epoch: usize,
    sites: &[Website],
    info: &[SiteInfo],
    truth: &[SiteClassTruth],
    pool: &[ThirdParty],
    clouds: &mut CloudRuntime,
) -> EpochState {
    let mut zone = ZoneDb::new();
    let mut redirects = HashMap::new();
    let mut http_failures = HashMap::new();

    // Third-party domains.
    for tp in pool {
        let readiness = if tp.v6_only && tp.ready_at(epoch) {
            Readiness::V6Only
        } else if tp.ready_at(epoch) {
            Readiness::Dual
        } else {
            Readiness::V4Only
        };
        for fqdn in &tp.fqdns {
            clouds.host_fqdn(&mut zone, rng, fqdn, readiness);
        }
    }

    // Sites.
    for (site, (si, t)) in sites.iter().zip(info.iter().zip(truth)) {
        let class = t.by_epoch[epoch];
        if class == GenClass::NxDomain {
            continue; // no records at all
        }
        match si.other_failure {
            Some(OtherFailureKind::DnsServFail) => {
                // Inject at the listed name too, so the crawler sees the
                // failure rather than an apparent NXDOMAIN.
                zone.inject_failure(site.domain.clone(), FailureMode::ServFail);
                zone.inject_failure(site.serving_fqdn.clone(), FailureMode::ServFail);
                continue;
            }
            Some(OtherFailureKind::DnsTimeout) => {
                zone.inject_failure(site.domain.clone(), FailureMode::Timeout);
                zone.inject_failure(site.serving_fqdn.clone(), FailureMode::Timeout);
                continue;
            }
            Some(OtherFailureKind::Tls) => {
                http_failures.insert(site.serving_fqdn.clone(), HttpFailure::Tls);
            }
            Some(OtherFailureKind::Http) => {
                http_failures.insert(site.serving_fqdn.clone(), HttpFailure::Http5xx);
            }
            None => {}
        }

        let has_aaaa = si.apex_aaaa_epoch.map(|a| a <= epoch).unwrap_or(false);
        // Sites mostly co-locate their own subdomains on one provider: pin
        // later first-party FQDNs to the first one's org (75% stickiness),
        // which keeps the multi-cloud tenant population at the paper's
        // ~21k/100k instead of "almost everyone".
        let mut site_org: Option<usize> = None;
        for fqdn in &si.first_party_fqdns {
            let readiness = if has_aaaa && !si.lagging_first_party.contains(fqdn) {
                Readiness::Dual
            } else {
                Readiness::V4Only
            };
            let h = clouds.host_fqdn_pinned(&mut zone, rng, fqdn, readiness, site_org);
            if site_org.is_none() {
                site_org = h.v4_org.or(h.v6_org);
            }
        }
        if let Some(fp) = &si.v4only_first_party {
            clouds.host_fqdn_pinned(&mut zone, rng, fp, Readiness::V4Only, site_org);
        }
        // HTTP redirect apex → serving fqdn, plus off-list redirects.
        if site.serving_fqdn != site.domain {
            redirects.insert(site.domain.clone(), site.serving_fqdn.clone());
        }
        if let Some(target) = &si.offsite_redirect {
            let www = Name::new(&format!("www.{target}"));
            redirects.insert(site.serving_fqdn.clone(), www.clone());
            clouds.host_fqdn(&mut zone, rng, &www, Readiness::Dual);
        }
    }

    EpochState {
        label: EPOCH_LABELS[epoch.min(2)].to_string(),
        zone,
        redirects,
        http_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clouds::CloudRuntime;
    use bgpsim::{Registry, Rib};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_web() -> WebWorld {
        let mut rng = SmallRng::seed_from_u64(1234);
        let cal = Calibration::default();
        let mut namegen = NameGenerator::new();
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let mut clouds = CloudRuntime::build(
            &mut registry,
            &mut rib,
            "24.0.0.0/6".parse().unwrap(),
            "2600::/13".parse().unwrap(),
            cal.top_cloud_share,
            cal.service_cname_rate,
        );
        generate_web(&mut rng, &cal, 3000, 3, &mut namegen, &mut clouds)
    }

    #[test]
    fn class_shares_match_calibration() {
        let web = small_web();
        let n = web.sites.len() as f64;
        let count = |class: GenClass, e: usize| {
            web.truth.iter().filter(|t| t.by_epoch[e] == class).count() as f64
        };
        // Epoch 2 (Jul 2025) headline numbers, with sampling tolerance.
        let nx = count(GenClass::NxDomain, 2) / n;
        assert!((0.10..0.17).contains(&nx), "NXDOMAIN share {nx}");
        let connected = n - count(GenClass::NxDomain, 2) - count(GenClass::OtherFailure, 2);
        let v4 = count(GenClass::V4Only, 2) / connected;
        let partial = count(GenClass::Partial, 2) / connected;
        let full = count(GenClass::Full, 2) / connected;
        // Expected at top-3000 (Fig 6 integral): v4 ≈ 0.53, full ≈ 0.16 at
        // epoch 0, minus ~2pp v4-only drift by epoch 2.
        assert!((0.46..0.60).contains(&v4), "v4-only {v4}");
        assert!((0.24..0.38).contains(&partial), "partial {partial}");
        assert!((0.10..0.20).contains(&full), "full {full}");
    }

    #[test]
    fn epochs_drift_in_the_right_direction() {
        let web = small_web();
        let count =
            |class: GenClass, e: usize| web.truth.iter().filter(|t| t.by_epoch[e] == class).count();
        assert!(
            count(GenClass::NxDomain, 2) >= count(GenClass::NxDomain, 0),
            "NXDOMAIN grows"
        );
        assert!(
            count(GenClass::V4Only, 2) <= count(GenClass::V4Only, 0),
            "v4-only shrinks"
        );
    }

    #[test]
    fn partial_sites_have_a_v4only_dependency() {
        let web = small_web();
        for (i, t) in web.truth.iter().enumerate() {
            if t.by_epoch[0] == GenClass::Partial {
                let si = &web.info[i];
                let has_v4_dep = si
                    .dep_domains
                    .iter()
                    .any(|&d| !web.third_parties[d as usize].ready_at(0));
                assert!(
                    has_v4_dep || si.v4only_first_party.is_some(),
                    "partial site {i} lacks any v4-only dependency"
                );
            }
            if t.by_epoch[0] == GenClass::Full {
                let si = &web.info[i];
                assert!(
                    si.dep_domains
                        .iter()
                        .all(|&d| web.third_parties[d as usize].ready_at(0)),
                    "full site {i} has a v4-only dependency"
                );
            }
        }
    }

    #[test]
    fn zone_reflects_truth() {
        let web = small_web();
        let zone = &web.epochs[2].zone;
        let resolver = dnssim::Resolver::new(zone);
        let mut checked = 0;
        for (i, t) in web.truth.iter().enumerate() {
            let site = &web.sites[i];
            match t.by_epoch[2] {
                GenClass::V4Only => {
                    assert!(
                        resolver.has_family(&site.serving_fqdn, iputil::Family::V4),
                        "v4-only site {} must have A",
                        site.domain
                    );
                    assert!(
                        !resolver.has_family(&site.serving_fqdn, iputil::Family::V6),
                        "v4-only site {} must lack AAAA",
                        site.domain
                    );
                    checked += 1;
                }
                GenClass::Full | GenClass::Partial => {
                    assert!(resolver.has_family(&site.serving_fqdn, iputil::Family::V6));
                    checked += 1;
                }
                GenClass::NxDomain => {
                    assert_eq!(
                        resolver.resolve(&site.serving_fqdn, iputil::Family::V4),
                        dnssim::LookupOutcome::NxDomain
                    );
                    checked += 1;
                }
                _ => {}
            }
        }
        assert!(checked > 2000);
    }

    #[test]
    fn heavy_hitters_are_widely_used() {
        let web = small_web();
        // Span of the most-used IPv4-only domain among partial sites should
        // be a sizeable fraction (paper: 6666/24384 ≈ 27%).
        let mut span = vec![0usize; web.third_parties.len()];
        let mut partial_count = 0;
        for (i, t) in web.truth.iter().enumerate() {
            if t.by_epoch[2] != GenClass::Partial {
                continue;
            }
            partial_count += 1;
            for &d in &web.info[i].dep_domains {
                if !web.third_parties[d as usize].ready_at(2) {
                    span[d as usize] += 1;
                }
            }
        }
        let max_span = *span.iter().max().unwrap();
        let frac = max_span as f64 / partial_count as f64;
        assert!(
            (0.12..0.45).contains(&frac),
            "top heavy hitter span fraction {frac} ({max_span}/{partial_count})"
        );
        // Fig 18's doubleclick must be among the top spans.
        let dc = web
            .third_parties
            .iter()
            .position(|t| t.domain.as_str() == "doubleclick.net")
            .unwrap();
        assert!(span[dc] > 0);
    }

    #[test]
    fn first_party_partial_mechanism_present() {
        let web = small_web();
        let fp_partial = web
            .info
            .iter()
            .zip(&web.truth)
            .filter(|(si, t)| t.by_epoch[0] == GenClass::Partial && si.v4only_first_party.is_some())
            .count();
        let partial = web
            .truth
            .iter()
            .filter(|t| t.by_epoch[0] == GenClass::Partial)
            .count();
        let rate = fp_partial as f64 / partial as f64;
        assert!((0.005..0.06).contains(&rate), "fp-partial rate {rate}");
    }
}
