//! Provider-side transition infrastructure: the NAT64/DNS64 and DS-Lite
//! plant a residential ISP deploys for its non-dual-stack access lines.
//!
//! One shared "ISP transition services" AS originates the RFC 6052
//! translation prefix (so translated flows are attributable in the RIB just
//! like native ones) and the CGN pools the NAT64 and AFTR allocate bindings
//! from. Residences provisioned with an IPv6-only or DS-Lite
//! [`transition::AccessTech`] send their legacy traffic through this plant;
//! `trafficgen` instantiates the stateful gateways per run, while the
//! addressing and routing facts live here in the world.

use bgpsim::{AsCategory, AsId, OrgId, Registry, Rib};
use iputil::prefix::Prefix4;
use transition::Nat64Prefix;

/// The ASN of the simulated ISP's transition-services network. Top of the
/// private-use range, far above the cloud runtime's 64500+ allocation
/// cursor (~35 orgs) — the registration asserts the slot is free.
pub const TRANSITION_ASN: u32 = 65500;

/// The IPv4 pool the NAT64 gateway maps bindings onto (RFC 2544 benchmarking
/// space, safely disjoint from every other generated block).
pub const NAT64_POOL4: &str = "198.18.0.0/16";

/// The IPv4 pool behind the DS-Lite AFTR's NAT44.
pub const AFTR_POOL4: &str = "198.19.0.0/16";

/// Addressing and configuration of the deployed transition plant.
#[derive(Debug, Clone)]
pub struct TransitionRuntime {
    /// The RFC 6052 prefix the NAT64/DNS64 pair translates under (the
    /// well-known `64:ff9b::/96`).
    pub nat64_prefix: Nat64Prefix,
    /// IPv4 pool of the NAT64 gateway.
    pub nat64_pool4: Prefix4,
    /// IPv4 pool of the DS-Lite AFTR.
    pub aftr_pool4: Prefix4,
    /// Origin AS of the translation prefix and pools.
    pub asn: AsId,
}

/// Register the transition plant into the registry and RIB.
pub fn register_transition(registry: &mut Registry, rib: &mut Rib) -> TransitionRuntime {
    let asn = AsId(TRANSITION_ASN);
    assert!(
        registry.as_info(asn).is_none(),
        "AS{TRANSITION_ASN} already registered — transition plant would shadow it"
    );
    let org = OrgId(format!("org-as{TRANSITION_ASN}"));
    registry.add_org(org.clone(), "ISP-TRANSITION-SERVICES");
    registry.add_as(asn, "ISP-TRANSITION-SERVICES", org, AsCategory::Isp);

    let nat64_prefix = Nat64Prefix::well_known();
    let nat64_pool4: Prefix4 = NAT64_POOL4.parse().expect("static prefix");
    let aftr_pool4: Prefix4 = AFTR_POOL4.parse().expect("static prefix");
    // The translation prefix is routed like any other: translated flows stay
    // attributable (their RIB origin is the transition AS, their RFC 6052
    // payload names the true IPv4 destination).
    rib.announce6(nat64_prefix.prefix(), asn);
    rib.announce4(nat64_pool4, asn);
    rib.announce4(aftr_pool4, asn);

    TransitionRuntime {
        nat64_prefix,
        nat64_pool4,
        aftr_pool4,
        asn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_is_routable_and_attributable() {
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let rt = register_transition(&mut registry, &mut rib);
        // A synthesized destination resolves to the transition AS.
        let v6 = rt.nat64_prefix.embed("203.0.113.9".parse().unwrap());
        assert_eq!(rib.origin_of(std::net::IpAddr::V6(v6)), Some(rt.asn));
        // The pools are announced too.
        let pool_host = rt.nat64_pool4.host(77).unwrap();
        assert_eq!(rib.origin_of(std::net::IpAddr::V4(pool_host)), Some(rt.asn));
        assert_eq!(
            registry.as_info(rt.asn).map(|i| i.category),
            Some(AsCategory::Isp)
        );
    }

    #[test]
    fn pools_are_disjoint() {
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let rt = register_transition(&mut registry, &mut rib);
        assert!(!rt.nat64_pool4.covers(rt.aftr_pool4));
        assert!(!rt.aftr_pool4.covers(rt.nat64_pool4));
    }
}
