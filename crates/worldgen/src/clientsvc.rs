//! The catalog of services residential clients talk to (§3.4).
//!
//! Fig 4 groups 35 ASes seen at three or more residences into five
//! categories; Fig 17 (appendix D) lists the prominent eTLD+1 domains. This
//! module encodes that catalog — AS numbers and names are the paper's real
//! ones — together with each service's approximate IPv6 byte share (read
//! from the Fig 4/17 box medians) and traffic shape. The traffic generator
//! samples from this catalog; the analysis layer re-derives the figures
//! from the resulting flows without ever looking at this ground truth.

use bgpsim::{AsCategory, AsId, Registry, Rib};
use dnssim::{Name, ZoneDb};
use iputil::prefix::{Prefix4, Prefix6};
use std::net::IpAddr;

/// What kind of traffic a service generates (drives flow size/count shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Large sustained video flows (Netflix, YouTube).
    Streaming,
    /// Very large bursty downloads (Steam, OS updates).
    Download,
    /// Many small request/response flows (web, APIs).
    Web,
    /// Medium flows, image/video heavy (social feeds).
    Social,
    /// Long-lived symmetric flows (Zoom, Teams).
    VideoConf,
    /// Live video (Twitch).
    LiveVideo,
    /// Online game sessions (many medium flows, latency-bound).
    Gaming,
    /// Background sync/telemetry, machine-generated.
    Background,
    /// CDN asset fetches.
    Cdn,
}

impl ServiceKind {
    /// Mean bytes per flow for this kind (log-normal mean, synthetic).
    pub fn mean_flow_bytes(self) -> f64 {
        match self {
            ServiceKind::Streaming => 12_000_000.0,
            ServiceKind::Download => 40_000_000.0,
            ServiceKind::Web => 120_000.0,
            ServiceKind::Social => 600_000.0,
            ServiceKind::VideoConf => 8_000_000.0,
            ServiceKind::LiveVideo => 15_000_000.0,
            ServiceKind::Gaming => 2_000_000.0,
            ServiceKind::Background => 40_000.0,
            ServiceKind::Cdn => 900_000.0,
        }
    }

    /// Is this kind predominantly human-triggered? Background traffic keeps
    /// flowing when the residence is empty (the paper's spring-break dip in
    /// Fig 2 exists because human traffic is the IPv6-heavy part).
    pub fn human_driven(self) -> bool {
        !matches!(self, ServiceKind::Background)
    }
}

/// One client-side service: a domain, the AS serving it, and its calibrated
/// IPv6 behaviour.
#[derive(Debug, Clone)]
pub struct ClientService {
    /// Stable key.
    pub key: &'static str,
    /// eTLD+1 its reverse DNS resolves to (Fig 17 rows).
    pub domain: &'static str,
    /// AS name as in Fig 4.
    pub as_name: &'static str,
    /// AS number (real, from the paper).
    pub asn: u32,
    /// Fig 4 category.
    pub category: AsCategory,
    /// Traffic shape.
    pub kind: ServiceKind,
    /// Target IPv6 byte share when the client is dual-stack and healthy
    /// (0 = IPv4-only service like Zoom/GitHub/USC; ~0.95 = v6-first).
    pub v6_share: f64,
    /// Relative global byte-volume weight.
    pub weight: f64,
}

/// The catalog: every Fig 4 AS appears; several ASes serve multiple Fig 17
/// domains (Google also operates `1e100.net` and `dns.google`; Valve also
/// moves bytes via `steamcontent.com`).
pub const CLIENT_AS_CATALOG: &[ClientService] = &[
    // --- Hosting and Cloud Providers (Fig 4 top panel, sorted by median) ---
    ClientService {
        key: "fastly",
        domain: "fastly.net",
        as_name: "FASTLY",
        asn: 54113,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.95,
        weight: 3.0,
    },
    ClientService {
        key: "cloudflare",
        domain: "cloudflare.com",
        as_name: "CLOUDFLARENET",
        asn: 13335,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.92,
        weight: 3.5,
    },
    ClientService {
        key: "akamai-asn1",
        domain: "akamaiedge.net",
        as_name: "AKAMAI-ASN1",
        asn: 20940,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.88,
        weight: 2.5,
    },
    ClientService {
        key: "cdn77",
        domain: "cdn77.com",
        as_name: "CDN77",
        asn: 60068,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.84,
        weight: 1.0,
    },
    ClientService {
        key: "qwilt",
        domain: "qwilted-cds.com",
        as_name: "QWILTED-PROD-01",
        asn: 20253,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.80,
        weight: 1.0,
    },
    ClientService {
        key: "microsoft-azure",
        domain: "azure.com",
        as_name: "MICROSOFT-CORP-MSN-AS-BLOCK",
        asn: 8075,
        category: AsCategory::Hosting,
        kind: ServiceKind::Web,
        v6_share: 0.72,
        weight: 2.0,
    },
    ClientService {
        key: "cloudflare-spectrum",
        domain: "cloudflare.net",
        as_name: "CLOUDFLARESPECTRUM",
        asn: 209242,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.68,
        weight: 0.8,
    },
    ClientService {
        key: "amazon-02",
        domain: "amazonaws.com",
        as_name: "AMAZON-02",
        asn: 16509,
        category: AsCategory::Hosting,
        kind: ServiceKind::Web,
        v6_share: 0.60,
        weight: 3.0,
    },
    ClientService {
        key: "zen-ecn",
        domain: "zen-ecn.net",
        as_name: "ZEN-ECN",
        asn: 21859,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.55,
        weight: 0.6,
    },
    ClientService {
        key: "google-cloud",
        domain: "googleusercontent.com",
        as_name: "GOOGLE-CLOUD-PLATFORM",
        asn: 396982,
        category: AsCategory::Hosting,
        kind: ServiceKind::Web,
        v6_share: 0.50,
        weight: 1.5,
    },
    ClientService {
        key: "amazon-aes",
        domain: "r.cloudfront.net",
        as_name: "AMAZON-AES",
        asn: 14618,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.40,
        weight: 1.2,
    },
    ClientService {
        key: "ace",
        domain: "hvvc.us",
        as_name: "ACE-AS-AP",
        asn: 139341,
        category: AsCategory::Hosting,
        kind: ServiceKind::Cdn,
        v6_share: 0.33,
        weight: 0.5,
    },
    ClientService {
        key: "ovh",
        domain: "ovh.net",
        as_name: "OVH",
        asn: 16276,
        category: AsCategory::Hosting,
        kind: ServiceKind::Background,
        v6_share: 0.07,
        weight: 1.0,
    },
    ClientService {
        key: "digitalocean",
        domain: "digitalocean.com",
        as_name: "DIGITALOCEAN-ASN",
        asn: 14061,
        category: AsCategory::Hosting,
        kind: ServiceKind::Background,
        v6_share: 0.05,
        weight: 1.0,
    },
    ClientService {
        key: "leaseweb",
        domain: "leaseweb.com",
        as_name: "LEASEWEB-NL-AMS-01",
        asn: 60781,
        category: AsCategory::Hosting,
        kind: ServiceKind::Download,
        v6_share: 0.04,
        weight: 0.5,
    },
    ClientService {
        key: "akamai-as",
        domain: "akamaitechnologies.com",
        as_name: "AKAMAI-AS",
        asn: 16625,
        category: AsCategory::Hosting,
        kind: ServiceKind::Background,
        v6_share: 0.02,
        weight: 2.0,
    },
    ClientService {
        key: "i3d",
        domain: "i3d.net",
        as_name: "i3Dnet",
        asn: 49544,
        category: AsCategory::Hosting,
        kind: ServiceKind::Gaming,
        v6_share: 0.0,
        weight: 0.4,
    },
    // --- Software Development (Fig 4 second panel) ---
    ClientService {
        key: "microsoft-8068",
        domain: "microsoft.com",
        as_name: "MICROSOFT-CORP-AS",
        asn: 8068,
        category: AsCategory::Software,
        kind: ServiceKind::Background,
        v6_share: 0.82,
        weight: 0.5,
    },
    ClientService {
        key: "apple-austin",
        domain: "aaplimg.com",
        as_name: "APPLE-AUSTIN",
        asn: 6185,
        category: AsCategory::Software,
        kind: ServiceKind::Download,
        v6_share: 0.74,
        weight: 1.5,
    },
    ClientService {
        key: "apple-eng",
        domain: "apple.com",
        as_name: "APPLE-ENGINEERING",
        asn: 714,
        category: AsCategory::Software,
        kind: ServiceKind::Background,
        v6_share: 0.62,
        weight: 1.0,
    },
    ClientService {
        key: "zoom",
        domain: "zoom.us",
        as_name: "ZOOM-VIDEO-COMM-AS",
        asn: 30103,
        category: AsCategory::Software,
        kind: ServiceKind::VideoConf,
        v6_share: 0.0,
        weight: 1.4,
    },
    // --- ISPs (Fig 4 third panel) ---
    ClientService {
        key: "china169",
        domain: "china169-bb.cn",
        as_name: "CHINA169-Backbone",
        asn: 4837,
        category: AsCategory::Isp,
        kind: ServiceKind::Web,
        v6_share: 0.20,
        weight: 0.3,
    },
    ClientService {
        key: "chinanet",
        domain: "chinatelecom.cn",
        as_name: "CHINANET-BACKBONE",
        asn: 4134,
        category: AsCategory::Isp,
        kind: ServiceKind::Web,
        v6_share: 0.17,
        weight: 0.3,
    },
    ClientService {
        key: "att",
        domain: "sbcglobal.net",
        as_name: "ATT-INTERNET4",
        asn: 7018,
        category: AsCategory::Isp,
        kind: ServiceKind::Web,
        v6_share: 0.14,
        weight: 0.4,
    },
    ClientService {
        key: "comcast",
        domain: "comcast.net",
        as_name: "COMCAST-7922",
        asn: 7922,
        category: AsCategory::Isp,
        kind: ServiceKind::Web,
        v6_share: 0.11,
        weight: 0.4,
    },
    ClientService {
        key: "frontier",
        domain: "frontiernet.net",
        as_name: "FRONTIER-FRTR",
        asn: 5650,
        category: AsCategory::Isp,
        kind: ServiceKind::Web,
        v6_share: 0.02,
        weight: 0.3,
    },
    // --- Web and Social Media (Fig 4 fourth panel) ---
    ClientService {
        key: "wikimedia",
        domain: "wikimedia.org",
        as_name: "WIKIMEDIA",
        asn: 14907,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Web,
        v6_share: 0.96,
        weight: 0.6,
    },
    ClientService {
        key: "facebook",
        domain: "facebook.com",
        as_name: "FACEBOOK",
        asn: 32934,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Social,
        v6_share: 0.95,
        weight: 2.5,
    },
    ClientService {
        key: "fbcdn",
        domain: "fbcdn.net",
        as_name: "FACEBOOK",
        asn: 32934,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Cdn,
        v6_share: 0.96,
        weight: 1.5,
    },
    ClientService {
        key: "google",
        domain: "google.com",
        as_name: "GOOGLE",
        asn: 15169,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Web,
        v6_share: 0.94,
        weight: 3.0,
    },
    ClientService {
        key: "google-1e100",
        domain: "1e100.net",
        as_name: "GOOGLE",
        asn: 15169,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Streaming,
        v6_share: 0.93,
        weight: 3.5,
    },
    ClientService {
        key: "google-dns",
        domain: "dns.google",
        as_name: "GOOGLE",
        asn: 15169,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Background,
        v6_share: 0.90,
        weight: 0.2,
    },
    ClientService {
        key: "bytedance",
        domain: "bytecdn.cn",
        as_name: "BYTEDANCE",
        asn: 396986,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Social,
        v6_share: 0.12,
        weight: 1.8,
    },
    // --- Other (Fig 4 bottom panel) ---
    ClientService {
        key: "netflix-ssi",
        domain: "nflxvideo.net",
        as_name: "AS-SSI",
        asn: 2906,
        category: AsCategory::Other,
        kind: ServiceKind::Streaming,
        v6_share: 0.92,
        weight: 4.0,
    },
    ClientService {
        key: "valve",
        domain: "steamcontent.com",
        as_name: "VALVE-CORPORATION",
        asn: 32590,
        category: AsCategory::Other,
        kind: ServiceKind::Download,
        v6_share: 0.85,
        weight: 3.0,
    },
    ClientService {
        key: "valve-net",
        domain: "valve.net",
        as_name: "VALVE-CORPORATION",
        asn: 32590,
        category: AsCategory::Other,
        kind: ServiceKind::Gaming,
        v6_share: 0.80,
        weight: 0.8,
    },
    ClientService {
        key: "netflix-oca",
        domain: "netflix.com",
        as_name: "NETFLIX-ASN",
        asn: 40027,
        category: AsCategory::Other,
        kind: ServiceKind::Streaming,
        v6_share: 0.78,
        weight: 1.5,
    },
    ClientService {
        key: "archive",
        domain: "archive.org",
        as_name: "INTERNET-ARCHIVE",
        asn: 7941,
        category: AsCategory::Other,
        kind: ServiceKind::Download,
        v6_share: 0.45,
        weight: 0.5,
    },
    ClientService {
        key: "usc",
        domain: "usc.edu",
        as_name: "USC-AS",
        asn: 47,
        category: AsCategory::Other,
        kind: ServiceKind::Web,
        v6_share: 0.0,
        weight: 0.5,
    },
    // --- Fig 17 stragglers that lag at zero IPv6 (not in the 35-AS set) ---
    ClientService {
        key: "twitch",
        domain: "justin.tv",
        as_name: "TWITCH",
        asn: 46489,
        category: AsCategory::Other,
        kind: ServiceKind::LiveVideo,
        v6_share: 0.0,
        weight: 1.6,
    },
    ClientService {
        key: "github",
        domain: "github.com",
        as_name: "GITHUB",
        asn: 36459,
        category: AsCategory::Other,
        kind: ServiceKind::Web,
        v6_share: 0.0,
        weight: 0.7,
    },
    ClientService {
        key: "wordpress",
        domain: "wp.com",
        as_name: "AUTOMATTIC",
        asn: 2635,
        category: AsCategory::WebSocial,
        kind: ServiceKind::Web,
        v6_share: 0.0,
        weight: 0.4,
    },
];

/// Number of endpoint addresses created per service and family.
pub const ENDPOINTS_PER_SERVICE: u64 = 8;

/// A client service with its runtime endpoints in the simulated Internet.
#[derive(Debug, Clone)]
pub struct ClientServiceRuntime {
    /// The catalog entry.
    pub service: &'static ClientService,
    /// IPv4 endpoints.
    pub v4: Vec<IpAddr>,
    /// IPv6 endpoints (empty when the service has no IPv6 deployment).
    pub v6: Vec<IpAddr>,
}

/// Register the catalog into the routing/DNS substrate: one AS per distinct
/// ASN, a /16 + /32 per AS, endpoint addresses with forward and reverse DNS.
///
/// Forward names are `edge<i>.<domain>`; reverse DNS maps every endpoint to
/// such a name, which is what the paper's §3.4 domain attribution sees.
pub fn register_client_services(
    registry: &mut Registry,
    rib: &mut Rib,
    zone: &mut ZoneDb,
    v4_base: Prefix4,
    v6_base: Prefix6,
) -> Vec<ClientServiceRuntime> {
    let mut v4_alloc = iputil::alloc::SubnetAllocator4::new(v4_base, 16);
    let mut v6_alloc = iputil::alloc::SubnetAllocator6::new(v6_base, 32);
    let mut as_prefix: std::collections::HashMap<u32, (Prefix4, Prefix6)> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(CLIENT_AS_CATALOG.len());

    for svc in CLIENT_AS_CATALOG {
        let (p4, p6) = *as_prefix.entry(svc.asn).or_insert_with(|| {
            let p4 = v4_alloc.next_subnet().expect("v4 space for services");
            let p6 = v6_alloc.next_subnet().expect("v6 space for services");
            let org = bgpsim::OrgId(format!("org-as{}", svc.asn));
            registry.add_org(org.clone(), svc.as_name);
            registry.add_as(AsId(svc.asn), svc.as_name, org, svc.category);
            rib.announce4(p4, AsId(svc.asn));
            rib.announce6(p6, AsId(svc.asn));
            (p4, p6)
        });

        // Each service gets its own /24 and /48 slice inside the AS, indexed
        // by a stable per-AS counter (the catalog order).
        let svc_index = out
            .iter()
            .filter(|r: &&ClientServiceRuntime| r.service.asn == svc.asn)
            .count() as u64;
        let s4 = p4.subnet(24, svc_index).expect("few services per AS");
        let s6 = p6
            .subnet(48, svc_index as u128)
            .expect("few services per AS");

        let mut v4 = Vec::new();
        let mut v6 = Vec::new();
        for i in 0..ENDPOINTS_PER_SERVICE {
            let name = Name::new(&format!("edge{i}.{}", svc.domain));
            let a4 = s4.host(i + 1).expect("endpoint fits");
            zone.add_a(name.clone(), a4);
            zone.map_reverse(IpAddr::V4(a4), name.clone());
            v4.push(IpAddr::V4(a4));
            if svc.v6_share > 0.0 {
                let a6 = s6.host((i + 1) as u128).expect("endpoint fits");
                zone.add_aaaa(name.clone(), a6);
                zone.map_reverse(IpAddr::V6(a6), name);
                v6.push(IpAddr::V6(a6));
            }
        }
        out.push(ClientServiceRuntime {
            service: svc,
            v4,
            v6,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_35_fig4_ases() {
        let mut asns: Vec<u32> = CLIENT_AS_CATALOG.iter().map(|s| s.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        // 35 Fig 4 ASes plus Twitch/GitHub/Automattic from Fig 17.
        assert!(asns.len() >= 35, "only {} distinct ASes", asns.len());
        // Spot-check the paper's AS numbers.
        let by_key = |k: &str| CLIENT_AS_CATALOG.iter().find(|s| s.key == k).unwrap();
        assert_eq!(by_key("cloudflare").asn, 13335);
        assert_eq!(by_key("netflix-ssi").asn, 2906);
        assert_eq!(by_key("valve").asn, 32590);
        assert_eq!(by_key("zoom").asn, 30103);
        assert_eq!(by_key("frontier").asn, 5650);
    }

    #[test]
    fn category_medians_match_fig4_ordering() {
        // ISP services must all sit at ≤ 0.2 v6 share; Web/Social (except
        // ByteDance) ≥ 0.9 — §3.4's headline findings.
        for s in CLIENT_AS_CATALOG {
            match s.category {
                AsCategory::Isp => assert!(s.v6_share <= 0.20, "{}", s.key),
                AsCategory::WebSocial if s.key != "bytedance" && s.key != "wordpress" => {
                    assert!(s.v6_share >= 0.90, "{}", s.key)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn zero_v6_services_present() {
        // §3.4: Zoom, GitHub and USC generate no IPv6 traffic.
        for key in ["zoom", "github", "usc", "twitch", "wordpress"] {
            let s = CLIENT_AS_CATALOG.iter().find(|s| s.key == key).unwrap();
            assert_eq!(s.v6_share, 0.0, "{key} must be IPv4-only");
        }
    }

    #[test]
    fn registration_builds_routable_endpoints() {
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let mut zone = ZoneDb::new();
        let rt = register_client_services(
            &mut registry,
            &mut rib,
            &mut zone,
            "100.64.0.0/10".parse().unwrap(),
            "2a00::/16".parse().unwrap(),
        );
        assert_eq!(rt.len(), CLIENT_AS_CATALOG.len());
        for r in &rt {
            assert_eq!(r.v4.len() as u64, ENDPOINTS_PER_SERVICE);
            if r.service.v6_share > 0.0 {
                assert_eq!(r.v6.len() as u64, ENDPOINTS_PER_SERVICE);
            } else {
                assert!(r.v6.is_empty());
            }
            // Every endpoint's origin AS matches the catalog.
            for &a in r.v4.iter().chain(&r.v6) {
                assert_eq!(rib.origin_of(a), Some(AsId(r.service.asn)), "{a}");
                // And reverse DNS points at the service's domain.
                let name = zone.reverse_lookup(a).expect("reverse entry");
                assert!(name.as_str().ends_with(r.service.domain), "{name}");
            }
        }
        // Shared-AS services (Google triple) share an origin AS.
        let g1 = rt.iter().find(|r| r.service.key == "google").unwrap();
        let g2 = rt.iter().find(|r| r.service.key == "google-1e100").unwrap();
        assert_eq!(
            rib.origin_of(g1.v4[0]).unwrap(),
            rib.origin_of(g2.v4[0]).unwrap()
        );
        assert_ne!(g1.v4[0], g2.v4[0], "distinct endpoint pools");
    }
}
