//! The long-tail AS population: a ~100k-AS RIB for per-AS flow-fraction
//! analyses at routing-table scale.
//!
//! The client-service catalog covers the ~40 head ASes of the paper's Fig 4
//! — but real routing tables hold ~100k origin ASes, and the IXP and
//! deployment studies the roadmap cites show that it is exactly the long
//! tail where a fraction-of-traffic view diverges from binary adoption:
//! most tail ASes announce a couple of prefixes, many are IPv4-only, and
//! the dual-stacked ones carry wildly varying IPv6 shares.
//!
//! [`register_long_tail`] synthesizes that population deterministically:
//! each AS gets an org/registry entry (and thus a dense AS symbol), a
//! Zipf-ish traffic weight, a realistic prefix count (most ASes announce
//! one v4 prefix, a geometric tail announces up to [`MAX_PREFIXES_PER_AS`]),
//! and — for the adopting minority — v6 prefixes with a per-AS target IPv6
//! byte share. Address space comes from `128.0.0.0/2` and `3000::/4`,
//! disjoint from every block the head-world generator hands out.

use bgpsim::{AsCategory, AsId, OrgId, Registry, Rib};
use iputil::prefix::{Prefix4, Prefix6};
use iputil::{SubnetAllocator4, SubnetAllocator6};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// First ASN of the long-tail range — far above every catalog ASN
/// (≤ 396 986) and the transition plant (65 500), so a dense block of
/// `count` ASNs starting here can never collide.
pub const LONG_TAIL_ASN_BASE: u32 = 1_000_000;

/// Upper bound on prefixes one tail AS announces per family.
pub const MAX_PREFIXES_PER_AS: usize = 8;

/// Share of long-tail ASes announcing any IPv6 at all (the deployment
/// studies' long-tail picture: a clear majority is still IPv4-only).
const V6_ADOPTION_RATE: f64 = 0.38;

/// One synthesized long-tail AS: identity, announced space and traffic
/// behaviour (the generator's ground truth — analyses re-derive fractions
/// from flows without looking at this).
#[derive(Debug, Clone)]
pub struct LongTailAs {
    /// The AS number (dense in `LONG_TAIL_ASN_BASE..`).
    pub asn: AsId,
    /// Announced IPv4 prefixes (at least one).
    pub v4: Vec<Prefix4>,
    /// Announced IPv6 prefixes (empty for the v4-only majority).
    pub v6: Vec<Prefix6>,
    /// Target IPv6 byte share of traffic towards this AS (0 when v4-only).
    pub v6_share: f64,
    /// Relative traffic weight (Zipf over the tail index).
    pub weight: f64,
}

/// The registered long-tail population plus its sampling table.
#[derive(Debug, Clone, Default)]
pub struct LongTail {
    /// Every tail AS, in ASN (= registration) order.
    pub ases: Vec<LongTailAs>,
    /// Cumulative weights for O(log n) weighted AS sampling
    /// (`cum_weights[i]` = sum of weights `0..=i`).
    cum_weights: Vec<f64>,
}

impl LongTail {
    /// Number of tail ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// True when the world was generated without a long tail.
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// Sample a tail AS index proportionally to traffic weight.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cum_weights.last().expect("non-empty tail");
        let x: f64 = rng.gen::<f64>() * total;
        self.cum_weights
            .partition_point(|&c| c < x)
            .min(self.ases.len() - 1)
    }
}

/// Register `count` long-tail ASes into the registry and RIB. Deterministic
/// in `seed` (and independent of every other world knob, so enabling the
/// tail never perturbs the head world).
pub fn register_long_tail(
    registry: &mut Registry,
    rib: &mut Rib,
    seed: u64,
    count: usize,
) -> LongTail {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6c74_6169_6c5f_6173); // "ltail_as"
                                                                         // /24s out of 128.0.0.0/2 (4M available) and /40s out of 3000::/4.
    let mut v4_alloc = SubnetAllocator4::new("128.0.0.0/2".parse().expect("static"), 24);
    let mut v6_alloc = SubnetAllocator6::new("3000::/4".parse().expect("static"), 40);

    let mut ases = Vec::with_capacity(count);
    let mut cum_weights = Vec::with_capacity(count);
    let mut cum = 0.0f64;
    for i in 0..count {
        let asn = AsId(LONG_TAIL_ASN_BASE + i as u32);
        let org = OrgId(format!("org-tail{}", asn.0));
        // The tail is ISP-heavy with an "other" remainder — hosting and the
        // big content categories live in the head catalog.
        let category = if rng.gen::<f64>() < 0.55 {
            AsCategory::Isp
        } else {
            AsCategory::Other
        };
        registry.add_org(org.clone(), &format!("Tail Network {}", i + 1));
        registry.add_as(asn, &format!("TAIL-AS{}", asn.0), org, category);

        // Prefix count: geometric — P(k prefixes) ∝ 2^-k, capped.
        let mut n_prefixes = 1usize;
        while n_prefixes < MAX_PREFIXES_PER_AS && rng.gen::<f64>() < 0.5 {
            n_prefixes += 1;
        }
        let adopted = rng.gen::<f64>() < V6_ADOPTION_RATE;
        let v6_share = if adopted {
            // Adopters spread over the whole (0, 1) range with mass at both
            // ends — the non-binary picture: u^0.5 pushes towards 1, a 25%
            // laggard slice stays below 0.2.
            if rng.gen::<f64>() < 0.25 {
                rng.gen::<f64>() * 0.2
            } else {
                rng.gen::<f64>().sqrt()
            }
        } else {
            0.0
        };
        let mut v4 = Vec::with_capacity(n_prefixes);
        let mut v6 = Vec::new();
        for _ in 0..n_prefixes {
            let p4 = v4_alloc.next_subnet().expect("v4 space for the tail");
            rib.announce4(p4, asn);
            v4.push(p4);
        }
        if adopted {
            // v6 tables are sparser than v4: one announcement per AS, plus
            // occasionally a second.
            let n6 = if rng.gen::<f64>() < 0.2 { 2 } else { 1 };
            for _ in 0..n6 {
                let p6 = v6_alloc.next_subnet().expect("v6 space for the tail");
                rib.announce6(p6, asn);
                v6.push(p6);
            }
        }
        // Zipf-ish traffic weight over tail rank (s ≈ 0.9), so a handful of
        // tail ASes still matter while most barely clear any volume floor.
        let weight = 1.0 / ((i + 1) as f64).powf(0.9);
        cum += weight;
        cum_weights.push(cum);
        ases.push(LongTailAs {
            asn,
            v4,
            v6,
            v6_share,
            weight,
        });
    }
    LongTail { ases, cum_weights }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_routable_attributable_tail() {
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let tail = register_long_tail(&mut registry, &mut rib, 7, 500);
        assert_eq!(tail.len(), 500);
        assert_eq!(registry.as_count(), 500);
        for a in &tail.ases {
            assert!(!a.v4.is_empty());
            // Every announced prefix attributes back to its AS.
            let host = a.v4[0].host(1).expect("host");
            assert_eq!(rib.origin_of(std::net::IpAddr::V4(host)), Some(a.asn));
            if let Some(p6) = a.v6.first() {
                let host6 = p6.host(1).expect("host");
                assert_eq!(rib.origin_of(std::net::IpAddr::V6(host6)), Some(a.asn));
                assert!(a.v6_share > 0.0);
            } else {
                assert_eq!(a.v6_share, 0.0);
            }
            // Dense registry symbols exist for the whole tail.
            assert!(registry.as_sym(a.asn).is_some());
        }
        // A realistic adoption mix: a v4-only majority, a dual-stack tail.
        let adopted = tail.ases.iter().filter(|a| !a.v6.is_empty()).count();
        assert!((100..300).contains(&adopted), "adopted {adopted}");
        // Prefix counts are long-tailed but bounded.
        assert!(tail.ases.iter().any(|a| a.v4.len() > 2));
        assert!(tail.ases.iter().all(|a| a.v4.len() <= MAX_PREFIXES_PER_AS));
    }

    #[test]
    fn deterministic_in_seed() {
        let build = |seed| {
            let mut registry = Registry::new();
            let mut rib = Rib::new();
            register_long_tail(&mut registry, &mut rib, seed, 200)
        };
        let (a, b, c) = (build(1), build(1), build(2));
        for (x, y) in a.ases.iter().zip(&b.ases) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.v4, y.v4);
            assert_eq!(x.v6, y.v6);
            assert_eq!(x.v6_share, y.v6_share);
        }
        assert!(a
            .ases
            .iter()
            .zip(&c.ases)
            .any(|(x, y)| x.v6_share != y.v6_share));
    }

    #[test]
    fn weighted_sampling_favors_the_head_of_the_tail() {
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let tail = register_long_tail(&mut registry, &mut rib, 7, 1_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut head = 0usize;
        for _ in 0..10_000 {
            let i = tail.sample_index(&mut rng);
            assert!(i < tail.len());
            if i < 100 {
                head += 1;
            }
        }
        // Zipf s=0.9 over 1000: the first 100 ranks carry roughly half the
        // mass.
        assert!((3_500..7_500).contains(&head), "head draws {head}");
    }
}
