//! The million-subscriber population model.
//!
//! Scaling residences to 1M+ subscribers cannot afford a per-subscriber
//! struct at world-generation time: the model stores only `(count, seed)`
//! and derives each subscriber's profile **on demand** as a pure function
//! of its index — O(1) worldgen cost and O(1) memory regardless of
//! population size. Traffic synthesis walks subscriber indices shard by
//! shard; two walks (any thread layout, any shard order) see identical
//! profiles because nothing is sampled statefully.
//!
//! The profile encodes the paper's non-binary adoption reality at the
//! subscriber grain: a share of subscribers has no IPv6 at all, and the
//! dual-stack rest carry an IPv6 *affinity* — the probability that any
//! given flow of theirs uses IPv6 when the destination offers it — drawn
//! from a spread of partial-adoption tiers rather than a binary toggle.

/// Share of subscribers with IPv6 connectivity at all (the rest are
/// v4-only). Matches the long-tail AS adoption rate so the two layers of
/// the model tell one story.
pub const SUBSCRIBER_V6_RATE: f64 = 0.62;

/// The subscriber population: index space plus derivation seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscribers {
    /// Population size (0 = the subscriber plane is disabled).
    pub count: usize,
    seed: u64,
}

/// One subscriber's derived profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubscriberProfile {
    /// Probability a flow of this subscriber uses IPv6 when the remote
    /// side offers it. Zero for v4-only subscribers.
    pub v6_affinity: f64,
    /// Relative traffic volume weight (mean 1.0, heavy-tailed).
    pub volume_weight: f64,
    /// Whether the subscriber has IPv6 connectivity at all.
    pub dual_stack: bool,
}

/// splitmix64 — the workspace's standard stateless index-derivation mix.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn unit(x: u64) -> f64 {
    // 53 high bits → [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl Subscribers {
    /// An empty (disabled) population.
    #[must_use]
    pub fn none() -> Subscribers {
        Subscribers { count: 0, seed: 0 }
    }

    /// A population of `count` subscribers derived from `seed`.
    #[must_use]
    pub fn new(count: usize, seed: u64) -> Subscribers {
        Subscribers { count, seed }
    }

    /// Derive subscriber `i`'s profile. Pure in `(seed, i)`; `i` may be
    /// any index below `count`.
    #[must_use]
    pub fn profile(&self, i: usize) -> SubscriberProfile {
        let h0 = splitmix(self.seed ^ (i as u64).wrapping_mul(0xd134_2543_de82_ef95));
        let h1 = splitmix(h0);
        let h2 = splitmix(h1);
        let dual_stack = unit(h0) < SUBSCRIBER_V6_RATE;
        // Non-binary adoption: dual-stack subscribers sit in a spread of
        // partial tiers, not at 1.0 — squaring the draw biases toward
        // partial adoption while keeping a heavy fully-adopted head.
        let v6_affinity = if dual_stack {
            let u = unit(h1);
            (0.05 + 0.95 * u * u).min(1.0)
        } else {
            0.0
        };
        // Log-ish heavy tail with mean ≈ 1: exp(σ·z)-style via a cheap
        // two-draw approximation (product of two uniforms is log-biased).
        let volume_weight = {
            let u = unit(h2).max(1e-9);
            // Pareto-ish: weight in [0.25, ~25], median ≈ 0.7.
            0.25 / u.powf(0.6)
        };
        SubscriberProfile {
            v6_affinity,
            volume_weight,
            dual_stack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_pure_functions_of_index() {
        let a = Subscribers::new(1_000_000, 42);
        let b = Subscribers::new(1_000_000, 42);
        for i in [0usize, 1, 999_999, 123_456] {
            assert_eq!(a.profile(i), b.profile(i));
        }
        assert_ne!(a.profile(7), a.profile(8));
    }

    #[test]
    fn seed_changes_profiles() {
        let a = Subscribers::new(100, 1);
        let b = Subscribers::new(100, 2);
        assert_ne!(a.profile(0), b.profile(0));
    }

    #[test]
    fn adoption_rate_and_tiers_are_calibrated() {
        let subs = Subscribers::new(200_000, 7);
        let mut dual = 0usize;
        let mut partial = 0usize;
        let mut volume_sum = 0.0f64;
        for i in 0..subs.count {
            let p = subs.profile(i);
            if p.dual_stack {
                dual += 1;
                assert!(p.v6_affinity > 0.0 && p.v6_affinity <= 1.0);
                if p.v6_affinity < 0.9 {
                    partial += 1;
                }
            } else {
                assert_eq!(p.v6_affinity, 0.0);
            }
            assert!(p.volume_weight > 0.0);
            volume_sum += p.volume_weight;
        }
        let rate = dual as f64 / subs.count as f64;
        assert!((rate - SUBSCRIBER_V6_RATE).abs() < 0.01, "rate {rate}");
        // The non-binary point: most dual-stack subscribers are *partial*.
        assert!(partial as f64 > dual as f64 * 0.5);
        // Heavy-tailed but mean-bounded volume weights.
        let mean = volume_sum / subs.count as f64;
        assert!(mean > 0.4 && mean < 2.5, "mean {mean}");
    }
}
