//! The assembled synthetic Internet.

use crate::calibration::Calibration;
use crate::clientsvc::{register_client_services, ClientServiceRuntime};
use crate::clouds::CloudRuntime;
use crate::web::{generate_web, WebWorld};
use bgpsim::{Registry, Rib};
use dnssim::ZoneDb;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use webmodel::namegen::NameGenerator;
use webmodel::psl::Psl;
use webmodel::toplist::TopList;

/// Configuration for world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every derived structure is a pure function of it.
    pub seed: u64,
    /// Number of top-list sites (the paper crawls 100k).
    pub num_sites: usize,
    /// Number of measurement epochs (the paper has 3).
    pub num_epochs: usize,
    /// Long-tail origin ASes to synthesize beyond the head catalog
    /// (0 = head-only, the historical world; ~100 000 = a routing-table-
    /// scale RIB for the per-AS flow-fraction analyses). Registration is
    /// seeded independently of every other knob, so enabling the tail
    /// never perturbs the head world.
    pub long_tail_ases: usize,
    /// Subscriber population size for million-subscriber worlds
    /// (0 = disabled). The population is modeled lazily — worldgen stores
    /// only `(count, seed)` and profiles derive on demand — so this knob
    /// is O(1) however large it is set.
    pub subscribers: usize,
    /// Calibration targets.
    pub calibration: Calibration,
}

impl WorldConfig {
    /// A small world for tests and examples (2k sites, 3 epochs).
    pub fn small() -> WorldConfig {
        WorldConfig {
            seed: 0x1f6_ad0b,
            num_sites: 2_000,
            num_epochs: 3,
            long_tail_ases: 0,
            subscribers: 0,
            calibration: Calibration::default(),
        }
    }

    /// A mid-size world for the default experiment runs (20k sites).
    pub fn default_scale() -> WorldConfig {
        WorldConfig {
            num_sites: 20_000,
            ..WorldConfig::small()
        }
    }

    /// The paper's full scale (100k sites). Slower; used by `repro --full`.
    pub fn paper_scale() -> WorldConfig {
        WorldConfig {
            num_sites: 100_000,
            ..WorldConfig::small()
        }
    }

    /// Override the seed (for multi-seed robustness runs).
    pub fn with_seed(mut self, seed: u64) -> WorldConfig {
        self.seed = seed;
        self
    }

    /// Enable a long-tail AS population of `n` origin ASes.
    pub fn with_long_tail(mut self, n: usize) -> WorldConfig {
        self.long_tail_ases = n;
        self
    }

    /// Enable a subscriber population of `n` (1M+ is fine — the model is
    /// lazy, so this costs nothing at generation time).
    pub fn with_subscribers(mut self, n: usize) -> WorldConfig {
        self.subscribers = n;
        self
    }
}

/// The synthetic Internet: routing, DNS, web, clouds and client services.
#[derive(Debug)]
pub struct World {
    /// The generating configuration.
    pub config: WorldConfig,
    /// AS/organization registry (CAIDA AS2Org analogue).
    pub registry: Registry,
    /// Global routing table.
    pub rib: Rib,
    /// Public-suffix list used for eTLD+1 analysis.
    pub psl: Psl,
    /// The ranked top list (rank i ↔ `sites[i-1]`).
    pub toplist: TopList,
    /// Websites, third parties and per-epoch DNS.
    pub web: WebWorld,
    /// Cloud org runtime (address pools, Table 3 calibration).
    pub clouds: CloudRuntime,
    /// Client-side service endpoints (Fig 4/Fig 17 catalog).
    pub client_services: Vec<ClientServiceRuntime>,
    /// The client-side DNS view (service endpoints + reverse DNS).
    pub client_zone: ZoneDb,
    /// Provider-side transition plant (NAT64/DNS64 prefix, CGN pools).
    pub transition: crate::xlat::TransitionRuntime,
    /// Long-tail AS population (empty unless `config.long_tail_ases > 0`).
    pub long_tail: crate::longtail::LongTail,
    /// Lazy subscriber population (count 0 unless `config.subscribers > 0`).
    pub subscribers: crate::subs::Subscribers,
}

impl World {
    /// Generate a world from a configuration. Deterministic in
    /// `config.seed` (and the other config fields).
    pub fn generate(config: &WorldConfig) -> World {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let mut namegen = NameGenerator::new();
        let psl = Psl::builtin();

        // Address plan:
        //   clouds:          24.0.0.0/6   and 2600::/13
        //   client services: 100.64.0.0/10 and 2a00::/16
        let mut clouds = CloudRuntime::build(
            &mut registry,
            &mut rib,
            "24.0.0.0/6".parse().expect("static prefix"),
            "2600::/13".parse().expect("static prefix"),
            config.calibration.top_cloud_share,
            config.calibration.service_cname_rate,
        );

        let transition = crate::xlat::register_transition(&mut registry, &mut rib);

        let mut client_zone = ZoneDb::new();
        let client_services = register_client_services(
            &mut registry,
            &mut rib,
            &mut client_zone,
            "100.64.0.0/10".parse().expect("static prefix"),
            "2a00::/16".parse().expect("static prefix"),
        );

        let long_tail = if config.long_tail_ases > 0 {
            crate::longtail::register_long_tail(
                &mut registry,
                &mut rib,
                config.seed,
                config.long_tail_ases,
            )
        } else {
            crate::longtail::LongTail::default()
        };

        let web = generate_web(
            &mut rng,
            &config.calibration,
            config.num_sites,
            config.num_epochs,
            &mut namegen,
            &mut clouds,
        );

        let toplist = TopList::new(web.sites.iter().map(|s| s.domain.clone()).collect());

        // All announcements are in: freeze the RIB into the flattened
        // multibit engine so every attribution pass runs on the fast path.
        // Later churn (the faults plane's RIB timelines mutate a clone)
        // invalidates the frozen tables and falls back to the radix trie.
        rib.compile();

        World {
            config: config.clone(),
            registry,
            rib,
            psl,
            toplist,
            web,
            clouds,
            client_services,
            client_zone,
            transition,
            long_tail,
            // Seeded independently of every other structure, like the long
            // tail: enabling subscribers never perturbs the head world.
            subscribers: crate::subs::Subscribers::new(
                config.subscribers,
                config.seed.wrapping_add(0x5eb5_c21b_ed5a_0d6d),
            ),
        }
    }

    /// Convenience: the DNS zone of one epoch.
    pub fn zone(&self, epoch: usize) -> &ZoneDb {
        &self.web.epochs[epoch].zone
    }

    /// Convenience: the latest (most recent snapshot) epoch index.
    pub fn latest_epoch(&self) -> usize {
        self.web.epochs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::GenClass;

    #[test]
    fn generates_a_consistent_small_world() {
        let world = World::generate(&WorldConfig::small());
        assert_eq!(world.web.sites.len(), 2_000);
        assert_eq!(world.web.epochs.len(), 3);
        assert_eq!(world.toplist.len(), 2_000);
        // Rank mapping is consistent.
        let site5 = &world.web.sites[4];
        assert_eq!(world.toplist.rank_of(&site5.domain), Some(5));
        // Client services registered and routable.
        assert!(!world.client_services.is_empty());
        let svc = &world.client_services[0];
        assert!(world.rib.origin_of(svc.v4[0]).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = World::generate(&WorldConfig::small());
        let b = World::generate(&WorldConfig::small());
        assert_eq!(a.web.sites.len(), b.web.sites.len());
        for (x, y) in a.web.sites.iter().zip(&b.web.sites).take(200) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.pages.len(), y.pages.len());
        }
        for (x, y) in a.web.truth.iter().zip(&b.web.truth).take(500) {
            assert_eq!(x.by_epoch, y.by_epoch);
        }
        let c = World::generate(&WorldConfig::small().with_seed(999));
        assert_ne!(
            a.web.sites[0].domain, c.web.sites[0].domain,
            "different seed, different world"
        );
    }

    #[test]
    fn long_tail_knob_scales_the_rib_without_perturbing_the_head() {
        let plain = World::generate(&WorldConfig::small());
        let tailed = World::generate(&WorldConfig::small().with_long_tail(2_000));
        assert_eq!(tailed.long_tail.len(), 2_000);
        assert_eq!(
            tailed.registry.as_count(),
            plain.registry.as_count() + 2_000
        );
        assert!(tailed.rib.len() > plain.rib.len() + 2_000);
        // The head world is untouched: same sites, same service endpoints,
        // same head-AS symbols (the tail registers after the head).
        assert_eq!(plain.web.sites[0].domain, tailed.web.sites[0].domain);
        for (a, b) in plain.client_services.iter().zip(&tailed.client_services) {
            assert_eq!(a.v4, b.v4);
            assert_eq!(a.v6, b.v6);
        }
        for info in plain.registry.ases() {
            assert_eq!(
                plain.registry.as_sym(info.asn),
                tailed.registry.as_sym(info.asn),
                "head symbol moved for {}",
                info.asn
            );
        }
    }

    #[test]
    fn world_has_all_truth_classes() {
        let world = World::generate(&WorldConfig::small());
        let e = world.latest_epoch();
        for class in [
            GenClass::NxDomain,
            GenClass::V4Only,
            GenClass::Partial,
            GenClass::Full,
        ] {
            assert!(
                world.web.truth.iter().any(|t| t.by_epoch[e] == class),
                "{class:?} missing from generated world"
            );
        }
    }
}
