//! Calibration targets pinned from the paper's published numbers.
//!
//! Every constant here cites the table/figure it reproduces. Values are
//! *fractions of the modelled population*, so the world scales from a quick
//! 2k-site test world to the paper's full 100k without re-tuning.

/// Calibration profile for world generation.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Fig 5: fraction of listed sites that fail with NXDOMAIN
    /// (13,376 / 100,000 in Jul 2025; grows from 12,355 in Oct 2024).
    pub nxdomain_rate: f64,
    /// Fig 5: fraction failing with other loading errors (4,802 / 100,000).
    pub other_failure_rate: f64,
    /// Fig 5 epoch deltas: extra NXDOMAIN per epoch transition
    /// (≈ 500/100k per step).
    pub nxdomain_growth_per_epoch: f64,
    /// Fraction of v4-only sites gaining an apex AAAA per epoch transition
    /// (drives the −0.6% IPv4-only drift Oct→Jul).
    pub apex_aaaa_gain_per_epoch: f64,
    /// Fraction of IPv4-only third-party domains gaining AAAA per epoch.
    pub third_party_gain_per_epoch: f64,

    /// Fig 6 cumulative targets: (rank bound, v4-only share, full share)
    /// among *connected* sites. Partial = 1 − v4only − full.
    pub rank_targets: Vec<(usize, f64, f64)>,

    /// Fig 7: lognormal parameters for the count of IPv4-only resource
    /// fetches on a partial site (median 7, quartiles 3/21).
    pub v4only_fetch_median: f64,
    /// Fig 7 lognormal sigma.
    pub v4only_fetch_sigma: f64,
    /// Fig 7 (blue curve): lognormal parameters for the *fraction* of
    /// fetches that are IPv4-only on a partial site (median 0.21).
    pub v4only_fraction_median: f64,
    /// Fig 7 fraction sigma.
    pub v4only_fraction_sigma: f64,

    /// §4.3: fraction of partial sites that are partial *only because of a
    /// first-party IPv4-only subdomain* (565 / 24,384 ≈ 2.3%).
    pub first_party_partial_rate: f64,

    /// Fraction of resource fetches landing on the main page (the rest are
    /// only discovered by link clicks). Drives the main-page-only ablation
    /// (12.5% → 14.1% IPv6-full).
    pub main_page_fetch_share: f64,

    /// Third-party pool size as a fraction of site count (Fig 8 x-axis:
    /// ~37.5k IPv4-only domains at 100k sites; total pool larger).
    pub third_party_pool_factor: f64,
    /// Fraction of the third-party pool that is IPv6-ready at epoch 0.
    /// (Most *fetches* hit ready domains — the blue curve of Fig 7 — but
    /// most *domains* in the tail are v4-only, per Fig 8.)
    pub third_party_ready_rate: f64,
    /// Number of heavy-hitter domains (span ≥ 100 at 100k scale: 396).
    pub heavy_hitter_count_factor: f64,

    /// §4.2: probability that IPv4 wins the Happy Eyeballs race on a fully
    /// IPv6-ready site (1,189 / 10,277 ≈ 11.6% "Browser Used IPv4").
    pub he_v4_win_rate: f64,

    /// Cloud: fraction of all FQDNs hosted by the top-15 Table 3 orgs (76%).
    pub top_cloud_share: f64,
    /// Cloud: fraction of cloud-hosted FQDNs that CNAME to an identifiable
    /// Table 2 service endpoint.
    pub service_cname_rate: f64,

    /// Mean number of distinct third-party eTLD+1 domains per site.
    pub third_parties_per_site: f64,
    /// Mean number of first-party subdomains per site (www + static + ...).
    pub first_party_subdomains: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            nxdomain_rate: 0.12355,
            other_failure_rate: 0.04457,
            nxdomain_growth_per_epoch: 0.005,
            apex_aaaa_gain_per_epoch: 0.018,
            third_party_gain_per_epoch: 0.015,
            // (rank bound, cumulative v4-only, cumulative full) — Fig 6.
            rank_targets: vec![
                (100, 0.40, 0.301),
                (1_000, 0.50, 0.19),
                (10_000, 0.54, 0.15),
                (usize::MAX, 0.576, 0.126),
            ],
            v4only_fetch_median: 7.0,
            v4only_fetch_sigma: 1.35,
            v4only_fraction_median: 0.21,
            v4only_fraction_sigma: 0.95,
            first_party_partial_rate: 0.023,
            main_page_fetch_share: 0.45,
            third_party_pool_factor: 0.55,
            third_party_ready_rate: 0.35,
            heavy_hitter_count_factor: 0.004,
            he_v4_win_rate: 0.116,
            top_cloud_share: 0.76,
            service_cname_rate: 0.14,
            third_parties_per_site: 7.0,
            first_party_subdomains: 2.4,
        }
    }
}

impl Calibration {
    /// Point (per-site) class probabilities at a given 1-based rank:
    /// `(p_v4_only, p_full)`, among connected sites. Derived from the
    /// cumulative Fig 6 targets so that bucket averages land on the paper's
    /// values.
    pub fn class_point_probs(&self, rank: usize) -> (f64, f64) {
        // Convert cumulative targets to per-bucket point probabilities.
        let mut prev_bound = 0usize;
        let mut prev_v4 = 0.0f64;
        let mut prev_full = 0.0f64;
        for &(bound, cum_v4, cum_full) in &self.rank_targets {
            if rank <= bound {
                let bucket = (bound.min(1_000_000) - prev_bound) as f64;
                let prev_n = prev_bound as f64;
                let bound_n = bound.min(1_000_000) as f64;
                let p_v4 = (cum_v4 * bound_n - prev_v4 * prev_n) / bucket;
                let p_full = (cum_full * bound_n - prev_full * prev_n) / bucket;
                return (p_v4.clamp(0.0, 1.0), p_full.clamp(0.0, 1.0));
            }
            prev_bound = bound;
            prev_v4 = cum_v4;
            prev_full = cum_full;
        }
        let &(_, v4, full) = self.rank_targets.last().expect("non-empty targets");
        (v4, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_probs_reproduce_cumulative_targets() {
        let c = Calibration::default();
        // Integrate point probabilities over the top 100k and compare with
        // the cumulative targets.
        let mut cum_v4 = 0.0;
        let mut cum_full = 0.0;
        let mut checked = 0;
        for rank in 1..=100_000usize {
            let (v4, full) = c.class_point_probs(rank);
            cum_v4 += v4;
            cum_full += full;
            for &(bound, t_v4, t_full) in &c.rank_targets {
                let b = if bound == usize::MAX { 100_000 } else { bound };
                if rank == b {
                    let n = rank as f64;
                    assert!(
                        (cum_v4 / n - t_v4).abs() < 0.005,
                        "v4 cumulative at {rank}: {} vs {t_v4}",
                        cum_v4 / n
                    );
                    assert!(
                        (cum_full / n - t_full).abs() < 0.005,
                        "full cumulative at {rank}: {} vs {t_full}",
                        cum_full / n
                    );
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 4);
    }

    #[test]
    fn probabilities_are_valid_everywhere() {
        let c = Calibration::default();
        for rank in [1, 50, 100, 101, 999, 1000, 5000, 10001, 99999] {
            let (v4, full) = c.class_point_probs(rank);
            assert!(v4 >= 0.0 && full >= 0.0 && v4 + full <= 1.0, "rank {rank}");
        }
    }

    #[test]
    fn failure_rates_match_paper_magnitudes() {
        let c = Calibration::default();
        assert!((c.nxdomain_rate - 0.124).abs() < 0.01);
        assert!((c.other_failure_rate - 0.045).abs() < 0.01);
        assert!(c.he_v4_win_rate > 0.05 && c.he_v4_win_rate < 0.2);
    }
}
