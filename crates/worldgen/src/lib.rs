//! # worldgen — the calibrated synthetic Internet
//!
//! Everything the measurement pipelines observe is generated here, from a
//! single seed, calibrated against the paper's published aggregates:
//!
//! * **Routing & orgs** — ASes, announced prefixes and the AS→Org table for
//!   the paper's client-service ASes (Fig 4), the Table 3 cloud orgs and a
//!   tail of generic hosters ([`clouds`], [`clientsvc`]).
//! * **The web** — a Tranco-like top list of websites with pages, embedded
//!   first-/third-party resources and internal links; per-epoch DNS zones
//!   (Oct 2024 / Apr 2025 / Jul 2025) with NXDOMAIN growth, apex `AAAA`
//!   drift and third-party IPv6 enablement drift ([`web`]).
//! * **Cloud tenancy** — every FQDN's `A`/`AAAA` records are placed in a
//!   cloud org's address space, conditioned on readiness so Fig 11/Table 3
//!   shares reproduce; a subset of FQDNs CNAME to Table 2 service endpoints
//!   ([`clouds`]).
//! * **Client services** — the Fig 4/Fig 17 catalog of services residences
//!   talk to, with per-service IPv6 byte-share targets and endpoint
//!   addresses + reverse DNS ([`clientsvc`]).
//!
//! The generation principle is *inverse generation where the paper pins the
//! answer, emergence everywhere else*: e.g. a site's readiness class is
//! drawn from the rank-calibrated distribution (Fig 6 is a target), but
//! span distributions, what-if curves and cloud pairwise effects emerge
//! from the generated bipartite graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod clientsvc;
pub mod clouds;
pub mod longtail;
pub mod subs;
pub mod web;
pub mod world;
pub mod xlat;

pub use calibration::Calibration;
pub use clientsvc::{ClientService, ServiceKind, CLIENT_AS_CATALOG};
pub use clouds::CloudRuntime;
pub use longtail::{LongTail, LongTailAs};
pub use subs::{SubscriberProfile, Subscribers, SUBSCRIBER_V6_RATE};
pub use web::{EpochState, HttpFailure, SiteClassTruth, ThirdParty};
pub use world::{World, WorldConfig};
pub use xlat::TransitionRuntime;
