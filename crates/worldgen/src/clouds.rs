//! Cloud hosting runtime: orgs, address pools and readiness-conditioned
//! tenancy assignment.
//!
//! §5's measured artifact is *where a domain's A and AAAA records point*:
//! BGP origin → AS → organization. The generator therefore works backwards:
//! the web layer decides a FQDN's readiness (v4-only / dual / rare true
//! AAAA-only), and this module picks a hosting organization **conditioned
//! on that readiness** with weights taken from Table 3
//! (`P(org | readiness) ∝ P(org) · P(readiness | org)`), then allocates
//! addresses from the org's announced space. In expectation this reproduces
//! Fig 11 and Table 3, while pairwise tenant differences (Fig 12) emerge
//! from the assignment randomness.
//!
//! Two of Table 3's oddities are *structural*, not statistical, and are
//! modelled literally:
//!
//! * **Bunnyway ↔ Datacamp**: bunny-CDN tenants get their AAAA from
//!   BUNNYWAY address space and their A from Datacamp space, which is what
//!   makes BUNNYWAY look 99.5% "IPv6-only" and inflates Datacamp's
//!   IPv4-only share.
//! * **Akamai org split**: a slice of Akamai dual-stack tenants serve AAAA
//!   from *Akamai International B.V.* while the A side sits in *Akamai
//!   Technologies, Inc.* — producing B.V.'s 14.9% "IPv6-only" and Inc.'s
//!   96.2% "IPv4-only" rows.
//!
//! Service CNAMEs (Table 2) ride the same conditioning: a dual-stack FQDN
//! on Amazon is far more likely to be a CloudFront distribution than an S3
//! bucket, because S3's measured IPv6 adoption is 0.4%.

use bgpsim::{AsCategory, AsId, OrgId, Registry, Rib};
use cloudmodel::catalog::{paper_orgs, paper_services, CloudOrg, CloudService};
use dnssim::{Name, ZoneDb};
use iputil::alloc::{HostAllocator4, HostAllocator6, SubnetAllocator4, SubnetAllocator6};
use rand::Rng;
use std::net::IpAddr;

/// Readiness of a FQDN, decided by the web layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Readiness {
    /// `A` record only.
    V4Only,
    /// Both `A` and `AAAA`.
    Dual,
    /// `AAAA` only (rare at the FQDN level; most per-org "IPv6-only" rows
    /// come from the structural splits above).
    V6Only,
}

/// Probability that a dual-stack Akamai tenant splits its AAAA to B.V. and
/// its A to Inc. (tuned to B.V.'s 14.9% v6-only vs 50.4% v6-full rows:
/// 14.9 / (14.9 + 50.4)).
const AKAMAI_SPLIT_RATE: f64 = 0.228;

/// A hosting organization at runtime.
#[derive(Debug)]
pub struct OrgRuntime {
    /// Catalog entry (None for generic tail hosters).
    pub catalog: Option<CloudOrg>,
    /// Display name (Table 3 name or a generated hoster name).
    pub display: String,
    /// Pairing group (Fig 12); generic hosters get their own key.
    pub group: String,
    /// Org id in the AS registry.
    pub org_id: OrgId,
    /// The org's (single, synthetic) AS.
    pub as_id: AsId,
    v4_pool: HostAllocator4,
    v6_pool: HostAllocator6,
    /// Relative share of all hosted domains (Table 3 counts; generic
    /// hosters split the remaining 24%).
    pub domain_weight: f64,
    /// P(readiness | org) triple: (v4-only, dual, v6-only).
    pub readiness_mix: (f64, f64, f64),
}

impl OrgRuntime {
    /// Allocate the next IPv4 address in this org's space.
    pub fn next_v4(&mut self) -> IpAddr {
        IpAddr::V4(self.v4_pool.next_host().expect("org v4 pool exhausted"))
    }

    /// Allocate the next IPv6 address in this org's space.
    pub fn next_v6(&mut self) -> IpAddr {
        IpAddr::V6(self.v6_pool.next_host().expect("org v6 pool exhausted"))
    }

    /// Catalog key if this is a Table 3 org.
    pub fn key(&self) -> Option<&'static str> {
        self.catalog.as_ref().map(|c| c.key)
    }
}

/// The assignment outcome for one FQDN.
#[derive(Debug, Clone)]
pub struct Hosting {
    /// Index of the org hosting the A record (None when v6-only).
    pub v4_org: Option<usize>,
    /// Index of the org hosting the AAAA record (None when v4-only).
    pub v6_org: Option<usize>,
    /// Identified service, when the FQDN CNAMEs to a service endpoint.
    pub service_key: Option<&'static str>,
}

/// The cloud hosting runtime.
#[derive(Debug)]
pub struct CloudRuntime {
    /// All orgs: Table 3 first (catalog order), then generic hosters.
    pub orgs: Vec<OrgRuntime>,
    services: Vec<CloudService>,
    /// Fraction of FQDNs that CNAME to an identifiable service.
    pub service_cname_rate: f64,
    cname_counter: u64,
}

/// Number of generic tail hosting orgs sharing the non-top-15 24%.
pub const GENERIC_HOSTER_COUNT: usize = 20;

impl CloudRuntime {
    /// Register all orgs (Table 3 + generic hosters) into the registry/RIB
    /// and carve address pools from the given bases.
    pub fn build(
        registry: &mut Registry,
        rib: &mut Rib,
        v4_base: iputil::prefix::Prefix4,
        v6_base: iputil::prefix::Prefix6,
        top_cloud_share: f64,
        service_cname_rate: f64,
    ) -> CloudRuntime {
        let mut v4_alloc = SubnetAllocator4::new(v4_base, 12);
        let mut v6_alloc = SubnetAllocator6::new(v6_base, 32);
        let mut orgs: Vec<OrgRuntime> = Vec::new();
        let mut next_asn = 64_500u32;

        let catalog = paper_orgs();
        let total_paper_domains: f64 = catalog.iter().map(|o| o.paper_domains as f64).sum();

        let mut register = |registry: &mut Registry,
                            rib: &mut Rib,
                            display: String,
                            group: String,
                            catalog_entry: Option<CloudOrg>,
                            weight: f64,
                            mix: (f64, f64, f64)|
         -> OrgRuntime {
            let key: String = display
                .to_ascii_lowercase()
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect();
            let org_id = OrgId(format!("org-{key}"));
            registry.add_org(org_id.clone(), &display);
            let as_id = AsId(next_asn);
            next_asn += 1;
            registry.add_as(
                as_id,
                &format!("{}-NET", key.to_ascii_uppercase()),
                org_id.clone(),
                AsCategory::Hosting,
            );
            let p4 = v4_alloc.next_subnet().expect("cloud v4 space");
            let p6 = v6_alloc.next_subnet().expect("cloud v6 space");
            rib.announce4(p4, as_id);
            rib.announce6(p6, as_id);
            OrgRuntime {
                catalog: catalog_entry,
                display,
                group,
                org_id,
                as_id,
                v4_pool: HostAllocator4::new(p4),
                v6_pool: HostAllocator6::new(p6.subnet(64, 0).expect("one /64")),
                domain_weight: weight,
                readiness_mix: mix,
            }
        };

        for org in &catalog {
            let weight = top_cloud_share * org.paper_domains as f64 / total_paper_domains;
            let mix = (
                org.paper_pct_v4_only / 100.0,
                org.paper_pct_v6_full / 100.0,
                org.paper_pct_v6_only / 100.0,
            );
            orgs.push(register(
                registry,
                rib,
                org.display.to_string(),
                org.group.to_string(),
                Some(org.clone()),
                weight,
                mix,
            ));
        }
        // Generic tail hosters: collectively (1 − top_cloud_share) of all
        // domains, with low IPv6 adoption (the paper's "smaller clouds tend
        // to have lower adoption").
        for i in 0..GENERIC_HOSTER_COUNT {
            let weight = (1.0 - top_cloud_share) / GENERIC_HOSTER_COUNT as f64;
            orgs.push(register(
                registry,
                rib,
                format!("Tail Hosting {i:02}"),
                format!("tail-{i:02}"),
                None,
                weight,
                (0.86, 0.135, 0.005),
            ));
        }

        CloudRuntime {
            orgs,
            services: paper_services(),
            service_cname_rate,
            cname_counter: 0,
        }
    }

    /// Service catalog in use.
    pub fn services(&self) -> &[CloudService] {
        &self.services
    }

    /// Index of the org with a given catalog key, if any.
    pub fn org_index_by_key(&self, key: &str) -> Option<usize> {
        self.orgs.iter().position(|o| o.key() == Some(key))
    }

    /// Choose a hosting org index conditioned on readiness. For the rare
    /// true-AAAA-only population the structurally-split orgs (Bunnyway,
    /// Akamai B.V.) are excluded — their Table 3 v6-only rows come from the
    /// partnership/split mechanisms, not from AAAA-only FQDNs.
    fn pick_org<R: Rng + ?Sized>(&self, rng: &mut R, readiness: Readiness) -> usize {
        let weight = |o: &OrgRuntime| {
            let p = match readiness {
                Readiness::V4Only => o.readiness_mix.0,
                Readiness::Dual => o.readiness_mix.1,
                Readiness::V6Only => {
                    if o.catalog
                        .as_ref()
                        .map(|c| c.v4_partner_group.is_some() || c.key == "akamai-intl")
                        .unwrap_or(false)
                    {
                        0.0
                    } else {
                        o.readiness_mix.2
                    }
                }
            };
            o.domain_weight * p
        };
        let total: f64 = self.orgs.iter().map(weight).sum();
        debug_assert!(total > 0.0, "no org can host {readiness:?}");
        let mut roll = rng.gen::<f64>() * total;
        for (i, o) in self.orgs.iter().enumerate() {
            roll -= weight(o);
            if roll <= 0.0 {
                return i;
            }
        }
        self.orgs.len() - 1
    }

    /// Choose a Table 2 service conditioned on readiness, or `None` for
    /// direct (serviceless) hosting.
    fn pick_service<R: Rng + ?Sized>(&self, rng: &mut R, readiness: Readiness) -> Option<usize> {
        if readiness == Readiness::V6Only || rng.gen::<f64>() >= self.service_cname_rate {
            return None;
        }
        let weight = |s: &CloudService| match readiness {
            Readiness::Dual => s.paper_ready as f64,
            Readiness::V4Only => (s.paper_total - s.paper_ready) as f64,
            Readiness::V6Only => 0.0,
        };
        let total: f64 = self.services.iter().map(weight).sum();
        if total <= 0.0 {
            return None;
        }
        let mut roll = rng.gen::<f64>() * total;
        for (i, s) in self.services.iter().enumerate() {
            roll -= weight(s);
            if roll <= 0.0 {
                return Some(i);
            }
        }
        None
    }

    /// Host a FQDN: create its `A`/`AAAA` records (possibly behind a service
    /// CNAME) and return the attribution ground truth.
    pub fn host_fqdn<R: Rng + ?Sized>(
        &mut self,
        zone: &mut ZoneDb,
        rng: &mut R,
        fqdn: &Name,
        readiness: Readiness,
    ) -> Hosting {
        self.host_fqdn_pinned(zone, rng, fqdn, readiness, None)
    }

    /// Like [`CloudRuntime::host_fqdn`], but with organizational stickiness:
    /// when `pin` names an org, the FQDN is hosted there with high
    /// probability (75%). Websites mostly co-locate their own subdomains on
    /// one provider; without stickiness nearly every site would count as a
    /// multi-cloud tenant, far above the paper's 21k/100k.
    pub fn host_fqdn_pinned<R: Rng + ?Sized>(
        &mut self,
        zone: &mut ZoneDb,
        rng: &mut R,
        fqdn: &Name,
        readiness: Readiness,
        pin: Option<usize>,
    ) -> Hosting {
        if let Some(org) = pin {
            // Stickiness only applies when the org plausibly hosts this
            // readiness at all (Akamai Technologies, Inc. hosts almost no
            // dual-stack domains; pinning duals there would wash out its
            // Table 3 signature).
            let mix_ok = {
                let m = self.orgs[org].readiness_mix;
                match readiness {
                    Readiness::V4Only => m.0 > 0.05,
                    Readiness::Dual => m.1 > 0.05,
                    Readiness::V6Only => m.2 > 0.05,
                }
            };
            if mix_ok && readiness != Readiness::V6Only && rng.gen::<f64>() < 0.75 {
                let (v4_org, v6_org) = match readiness {
                    Readiness::V4Only => (Some(org), None),
                    _ => (Some(org), Some(org)),
                };
                self.write_records(zone, fqdn, v4_org, v6_org);
                return Hosting {
                    v4_org,
                    v6_org,
                    service_key: None,
                };
            }
        }
        if let Some(si) = self.pick_service(rng, readiness) {
            let key = self.services[si].key;
            return self.host_with_service(zone, rng, fqdn, readiness, key);
        }
        // Direct hosting.
        let (mut v4_org, v6_org) = match readiness {
            Readiness::V4Only => (Some(self.pick_org(rng, readiness)), None),
            Readiness::V6Only => (None, Some(self.pick_org(rng, readiness))),
            Readiness::Dual => {
                let org = self.pick_org(rng, readiness);
                (Some(org), Some(org))
            }
        };
        // Akamai org split for dual tenants.
        if readiness == Readiness::Dual
            && v6_org.and_then(|i| self.orgs[i].key()) == Some("akamai-intl")
            && rng.gen::<f64>() < AKAMAI_SPLIT_RATE
        {
            v4_org = self.org_index_by_key("akamai-us");
        }
        self.write_records(zone, fqdn, v4_org, v6_org);
        Hosting {
            v4_org,
            v6_org,
            service_key: None,
        }
    }

    /// Host a FQDN behind a specific Table 2 service (public for tests and
    /// for the web layer's targeted tenancy generation).
    pub fn host_with_service<R: Rng + ?Sized>(
        &mut self,
        zone: &mut ZoneDb,
        rng: &mut R,
        fqdn: &Name,
        readiness: Readiness,
        service_key: &str,
    ) -> Hosting {
        let service = self
            .services
            .iter()
            .find(|s| s.key == service_key)
            .unwrap_or_else(|| panic!("unknown service {service_key}"))
            .clone();
        self.cname_counter += 1;
        let endpoint = Name::new(&format!(
            "t{:x}.{}",
            self.cname_counter, service.cname_suffix
        ));
        zone.add_cname(fqdn.clone(), endpoint.clone());

        let (v4_org, v6_org) = if service.key.starts_with("bunny-cdn") {
            // Partnership: AAAA in BUNNYWAY space, A in Datacamp space.
            let bunny = self.org_index_by_key("bunnyway").expect("bunnyway");
            let datacamp = self.org_index_by_key("datacamp").expect("datacamp");
            match readiness {
                Readiness::V4Only => (Some(datacamp), None),
                _ => (Some(datacamp), Some(bunny)),
            }
        } else {
            let org = self.pick_group_org(rng, service.provider_group);
            let mut v4 = match readiness {
                Readiness::V6Only => None,
                _ => Some(org),
            };
            let v6 = match readiness {
                Readiness::V4Only => None,
                _ => Some(org),
            };
            // Akamai split also applies behind service CNAMEs.
            if readiness == Readiness::Dual
                && self.orgs[org].key() == Some("akamai-intl")
                && rng.gen::<f64>() < AKAMAI_SPLIT_RATE
            {
                v4 = self.org_index_by_key("akamai-us");
            }
            (v4, v6)
        };

        self.write_records(zone, &endpoint, v4_org, v6_org);
        Hosting {
            v4_org,
            v6_org,
            service_key: self
                .services
                .iter()
                .find(|s| s.key == service.key)
                .map(|s| s.key),
        }
    }

    fn pick_group_org<R: Rng + ?Sized>(&self, rng: &mut R, group: &str) -> usize {
        let members: Vec<usize> = self
            .orgs
            .iter()
            .enumerate()
            .filter(|(_, o)| o.group == group)
            .map(|(i, _)| i)
            .collect();
        assert!(!members.is_empty(), "unknown provider group {group}");
        let total: f64 = members.iter().map(|&i| self.orgs[i].domain_weight).sum();
        let mut roll = rng.gen::<f64>() * total;
        for &i in &members {
            roll -= self.orgs[i].domain_weight;
            if roll <= 0.0 {
                return i;
            }
        }
        members[members.len() - 1]
    }

    fn write_records(
        &mut self,
        zone: &mut ZoneDb,
        name: &Name,
        v4_org: Option<usize>,
        v6_org: Option<usize>,
    ) {
        if let Some(i) = v4_org {
            if let IpAddr::V4(a) = self.orgs[i].next_v4() {
                zone.add_a(name.clone(), a);
            }
        }
        if let Some(i) = v6_org {
            if let IpAddr::V6(a) = self.orgs[i].next_v6() {
                zone.add_aaaa(name.clone(), a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Resolver;
    use iputil::Family;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn runtime() -> (Registry, Rib, CloudRuntime) {
        let mut registry = Registry::new();
        let mut rib = Rib::new();
        let rt = CloudRuntime::build(
            &mut registry,
            &mut rib,
            "24.0.0.0/6".parse().unwrap(),
            "2600::/13".parse().unwrap(),
            0.76,
            0.14,
        );
        (registry, rib, rt)
    }

    #[test]
    fn builds_all_orgs() {
        let (registry, _, rt) = runtime();
        assert_eq!(rt.orgs.len(), 15 + GENERIC_HOSTER_COUNT);
        for o in &rt.orgs {
            assert!(registry.org(&o.org_id).is_some());
            assert!(registry.as_info(o.as_id).is_some());
        }
        let total: f64 = rt.orgs.iter().map(|o| o.domain_weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn readiness_conditioning_reproduces_table3_shape() {
        let (_, rib, mut rt) = runtime();
        let mut zone = ZoneDb::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hosted = Vec::new();
        for i in 0..30_000 {
            let fqdn = Name::new(&format!("host{i}.sites.test"));
            let roll: f64 = rng.gen();
            let readiness = if roll < 0.56 {
                Readiness::V4Only
            } else if roll < 0.995 {
                Readiness::Dual
            } else {
                Readiness::V6Only
            };
            hosted.push((
                i,
                readiness,
                rt.host_fqdn(&mut zone, &mut rng, &fqdn, readiness),
            ));
        }
        // Cloudflare must be v6-full-heavy; Akamai-US v4-heavy. "Dual at an
        // org" means the org hosts BOTH record families (hosting only the A
        // side of a dual domain counts as v4-only at that org, which is how
        // the paper's per-org classification behaves).
        let share = |key: &str| {
            let idx = rt.org_index_by_key(key).unwrap();
            let v4only = hosted
                .iter()
                .filter(|(_, _, h)| h.v4_org == Some(idx) && h.v6_org != Some(idx))
                .count() as f64;
            let dual = hosted
                .iter()
                .filter(|(_, _, h)| h.v4_org == Some(idx) && h.v6_org == Some(idx))
                .count() as f64;
            dual / (dual + v4only).max(1.0)
        };
        assert!(
            share("cloudflare-inc") > 0.7,
            "cloudflare dual share {}",
            share("cloudflare-inc")
        );
        assert!(
            share("akamai-us") < 0.25,
            "akamai-us dual share {}",
            share("akamai-us")
        );
        // Addresses actually route to the assigned org's AS.
        let resolver = Resolver::new(&zone);
        let mut checked = 0;
        for (i, _, h) in hosted.iter().take(500) {
            let fqdn = Name::new(&format!("host{i}.sites.test"));
            if let Some(v4i) = h.v4_org {
                let res = resolver.resolve(&fqdn, Family::V4);
                for addr in res.addresses() {
                    assert_eq!(rib.origin_of(*addr), Some(rt.orgs[v4i].as_id));
                    checked += 1;
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn akamai_split_produces_v6only_at_intl() {
        let (_, _, mut rt) = runtime();
        let mut zone = ZoneDb::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let intl = rt.org_index_by_key("akamai-intl").unwrap();
        let us = rt.org_index_by_key("akamai-us").unwrap();
        let mut split = 0;
        let mut together = 0;
        for i in 0..4_000 {
            let fqdn = Name::new(&format!("ak{i}.sites.test"));
            let h = rt.host_with_service(&mut zone, &mut rng, &fqdn, Readiness::Dual, "akamai-cdn");
            if h.v6_org == Some(intl) {
                if h.v4_org == Some(us) {
                    split += 1;
                } else if h.v4_org == Some(intl) {
                    together += 1;
                }
            }
        }
        let frac = split as f64 / (split + together).max(1) as f64;
        assert!(
            (0.15..0.32).contains(&frac),
            "akamai split fraction {frac} ({split}/{together})"
        );
    }

    #[test]
    fn service_cnames_resolve_through_chain() {
        let (_, _, mut rt) = runtime();
        let mut zone = ZoneDb::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut with_service = 0;
        for i in 0..2_000 {
            let fqdn = Name::new(&format!("svc{i}.sites.test"));
            let h = rt.host_fqdn(&mut zone, &mut rng, &fqdn, Readiness::Dual);
            if h.service_key.is_some() {
                with_service += 1;
                let resolver = Resolver::new(&zone);
                let res = resolver.resolve(&fqdn, Family::V4);
                assert!(res.is_success(), "service CNAME must resolve: {fqdn}");
                if let dnssim::LookupOutcome::Answers(a) = res {
                    assert!(a.chain.len() >= 2, "expected a CNAME chain");
                }
            }
        }
        assert!((150..600).contains(&with_service), "{with_service}");
    }

    #[test]
    fn bunny_partnership_split() {
        let (_, rib, mut rt) = runtime();
        let mut zone = ZoneDb::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let bunny = rt.org_index_by_key("bunnyway").unwrap();
        let datacamp = rt.org_index_by_key("datacamp").unwrap();
        let fqdn = Name::new("cdn.bunnytenant.test");
        let h = rt.host_with_service(&mut zone, &mut rng, &fqdn, Readiness::Dual, "bunny-cdn");
        assert_eq!(h.service_key, Some("bunny-cdn"));
        assert_eq!(h.v6_org, Some(bunny));
        assert_eq!(h.v4_org, Some(datacamp));
        let resolver = Resolver::new(&zone);
        let v6 = resolver.resolve(&fqdn, Family::V6);
        let v4 = resolver.resolve(&fqdn, Family::V4);
        assert!(v6.is_success() && v4.is_success());
        assert_eq!(rib.origin_of(v6.addresses()[0]), Some(rt.orgs[bunny].as_id));
        assert_eq!(
            rib.origin_of(v4.addresses()[0]),
            Some(rt.orgs[datacamp].as_id)
        );
    }

    #[test]
    fn true_v6only_avoids_structural_orgs() {
        let (_, _, mut rt) = runtime();
        let mut zone = ZoneDb::new();
        let mut rng = SmallRng::seed_from_u64(13);
        let bunny = rt.org_index_by_key("bunnyway").unwrap();
        let intl = rt.org_index_by_key("akamai-intl").unwrap();
        for i in 0..300 {
            let fqdn = Name::new(&format!("aaaa{i}.sites.test"));
            let h = rt.host_fqdn(&mut zone, &mut rng, &fqdn, Readiness::V6Only);
            assert!(h.v4_org.is_none());
            let org = h.v6_org.unwrap();
            assert_ne!(org, bunny, "true v6-only must not land on bunnyway");
            assert_ne!(org, intl, "true v6-only must not land on akamai B.V.");
        }
    }
}
