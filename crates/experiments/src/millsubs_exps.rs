//! `million-subs`: the adoption-tier table over a million-subscriber
//! population — the paper's per-subscriber adoption view (§5) pushed to
//! provider scale without provider-scale memory.
//!
//! The producer is [`trafficgen::subs`]: the lazy subscriber model walks
//! in `(day, shard)` tasks, each a pure function of `(seed, day, shard)`,
//! fanned out over the work-stealing pool. The spill path writes each
//! task's records as one sealed [`flowstore`] day-part and replays the
//! part set in canonical order — so peak RSS is bounded by one in-flight
//! day-part per worker, not the run length, and the replay digest must
//! equal the live stream's digest byte for byte. The report is identical
//! with and without `--spill` — the registry tests assert it.

use crate::report::Report;
use crate::session::Session;
use flowmon::sink::FlowSink;
use flowmon::FlowRecord;
use ipv6view_core::report::TextTable;
use serde::Serialize;
use std::path::PathBuf;
use trafficgen::{
    fan_out, num_shards, shard_day_records, subscriber_of_src, synthesize_subscribers_into,
    SubscriberTrafficConfig,
};
use worldgen::{World, WorldConfig};

/// Inputs of one `million-subs` run (all deterministic knobs explicit so
/// tests can shrink them).
#[derive(Debug, Clone)]
pub struct MillionSubsParams {
    /// World seed (the subscriber population and tail derive from it).
    pub seed: u64,
    /// Subscriber population size.
    pub subscribers: usize,
    /// Days of synthesized traffic. Peak memory is independent of this.
    pub days: u32,
    /// Worker threads over the `(day, shard)` task list (output-invariant).
    pub threads: usize,
    /// When set, stream through sealed columnar day-parts under
    /// `<dir>/million-subs` instead of memory (digest-verified replay).
    pub spill: Option<PathBuf>,
}

/// One adoption tier of the subscriber population.
#[derive(Debug, Clone, Serialize)]
pub struct TierRow {
    /// Tier label (`inactive`, `v4-only`, `(0, 0.2)`, …).
    pub tier: String,
    /// Subscribers in the tier.
    pub subscribers: u64,
    /// Share of the population.
    pub share: f64,
}

/// The exportable dataset: run parameters, stream fingerprint and the
/// adoption-tier table.
#[derive(Debug, Clone, Serialize)]
pub struct MillionSubsReport {
    /// Population size.
    pub subscribers: usize,
    /// Days synthesized.
    pub days: u32,
    /// Flow records streamed.
    pub flows: u64,
    /// FNV-1a digest of the emitted stream (spill replays must match it).
    pub stream_digest: String,
    /// Adoption tiers over the whole population.
    pub tiers: Vec<TierRow>,
    /// IPv6 share of all subscriber bytes.
    pub v6_byte_share: f64,
}

/// Per-subscriber `[total bytes, v6 bytes]` totals — the only per-stream
/// state of the run, O(subscribers) and independent of `days`.
struct SubscriberAgg {
    totals: Vec<[u64; 2]>,
    flows: u64,
}

impl SubscriberAgg {
    fn new(subscribers: usize) -> SubscriberAgg {
        SubscriberAgg {
            totals: vec![[0, 0]; subscribers],
            flows: 0,
        }
    }
}

impl FlowSink for SubscriberAgg {
    fn accept(&mut self, record: &FlowRecord) {
        self.flows += 1;
        if let Some(i) = subscriber_of_src(record.key.src) {
            if let Some(t) = self.totals.get_mut(i) {
                let bytes = record.total_bytes();
                t[0] += bytes;
                if record.key.src.is_ipv6() {
                    t[1] += bytes;
                }
            }
        }
    }
}

/// Bucket the per-subscriber totals into the paper's adoption tiers.
fn tier_rows(totals: &[[u64; 2]]) -> Vec<TierRow> {
    let mut counts = [0u64; 6];
    for t in totals {
        let idx = if t[0] == 0 {
            0 // inactive
        } else if t[1] == 0 {
            1 // v4-only
        } else if t[1] == t[0] {
            5 // v6-only
        } else {
            let f = t[1] as f64 / t[0] as f64;
            if f < 0.2 {
                2
            } else if f < 0.8 {
                3
            } else {
                4
            }
        };
        counts[idx] += 1;
    }
    let labels = [
        "inactive",
        "v4-only",
        "(0, 0.2)",
        "[0.2, 0.8)",
        "[0.8, 1)",
        "v6-only",
    ];
    let total = totals.len().max(1) as f64;
    labels
        .iter()
        .zip(counts)
        .map(|(label, n)| TierRow {
            tier: label.to_string(),
            subscribers: n,
            share: n as f64 / total,
        })
        .collect()
}

/// Run the subscriber pipeline — in memory, or spilled through sealed
/// day-parts when `params.spill` is set — and build the report.
pub fn million_subs_report(params: &MillionSubsParams) -> MillionSubsReport {
    let world = World::generate(
        &WorldConfig {
            seed: params.seed,
            num_sites: 200,
            ..WorldConfig::small()
        }
        .with_long_tail((params.subscribers / 100).clamp(1_000, 10_000))
        .with_subscribers(params.subscribers),
    );
    let cfg = SubscriberTrafficConfig {
        seed: params.seed ^ 0x6d69_6c73_7562, // "milsub"
        num_days: params.days,
        threads: params.threads.max(1),
        ..SubscriberTrafficConfig::default()
    };
    let mut agg = SubscriberAgg::new(params.subscribers);
    let digest = match &params.spill {
        None => {
            let mut digest = flowstore::DigestSink::new();
            synthesize_subscribers_into(&world, &cfg, &mut (&mut agg, &mut digest));
            digest
        }
        Some(spill) => spill_run(&world, &cfg, &mut agg, &spill.join("million-subs")),
    };
    let v6_byte_share = {
        let (total, v6) = agg
            .totals
            .iter()
            .fold((0u64, 0u64), |(t, v), x| (t + x[0], v + x[1]));
        v6 as f64 / total.max(1) as f64
    };
    MillionSubsReport {
        subscribers: params.subscribers,
        days: params.days,
        flows: agg.flows,
        stream_digest: format!("{:#018x}", digest.digest()),
        tiers: tier_rows(&agg.totals),
        v6_byte_share,
    }
}

/// The spill path: every `(day, shard)` task becomes one sealed day-part,
/// written in canonical order as workers finish; the aggregator is fed by
/// the **replay**, and the replay digest must match the live stream's.
/// Peak RSS is one in-flight day-part per worker.
fn spill_run(
    world: &World,
    cfg: &SubscriberTrafficConfig,
    agg: &mut SubscriberAgg,
    dir: &std::path::Path,
) -> flowstore::DigestSink {
    if dir.exists() {
        if let Err(e) = std::fs::remove_dir_all(dir) {
            panic!("clearing spill dir {}: {e}", dir.display());
        }
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        panic!("creating spill dir {}: {e}", dir.display());
    }
    let shards = num_shards(world, cfg);
    let tasks: Vec<(u32, usize)> = (0..cfg.num_days)
        .flat_map(|day| (0..shards).map(move |shard| (day, shard)))
        .collect();
    let mut live = flowstore::DigestSink::new();
    let mut metas = Vec::with_capacity(tasks.len());
    // Same chunked fan-out as the in-memory path: one chunk of tasks in
    // flight, flushed (digested + written) in canonical day-major order.
    let chunk = (cfg.threads * 2).max(1);
    for window in tasks.chunks(chunk) {
        let buffers = fan_out(window.to_vec(), cfg.threads, |_, (day, shard)| {
            shard_day_records(world, cfg, day, shard)
        });
        for ((day, shard), records) in window.iter().zip(buffers) {
            live.accept_batch(&records);
            let path = dir.join(flowstore::part_file_name(*shard as u64, *day as u64, 0));
            match flowstore::write_part(&path, *shard as u64, *day as u64, 0, &records) {
                Ok(meta) => metas.push(meta),
                Err(e) => panic!("writing part {}: {e}", path.display()),
            }
        }
    }
    obs::info!(
        "[repro] million-subs spilled {} parts to {}",
        metas.len(),
        dir.display()
    );
    // Replay feeds the aggregator: the report is a function of the parts
    // on disk, and the digests prove the parts are the stream.
    let mut replayed = flowstore::DigestSink::new();
    let stats = match flowstore::PartSet::from_metas(metas).replay_into(&mut (agg, &mut replayed)) {
        Ok(s) => s,
        Err(e) => panic!("replaying spilled parts: {e}"),
    };
    if replayed.digest() != live.digest() {
        panic!(
            "spill replay diverged: live {:#018x} ({} rows) vs replay {:#018x} ({} rows)",
            live.digest(),
            live.count(),
            replayed.digest(),
            stats.rows,
        );
    }
    obs::debug!(
        "[repro] million-subs spill verified: {} parts, {} rows, digest {:#018x}",
        stats.parts,
        stats.rows,
        live.digest(),
    );
    live
}

/// Serialize a report as the exportable dataset (stable field order; same
/// seed ⇒ byte-identical output at any thread count, spilled or not).
pub fn million_subs_json(report: &MillionSubsReport) -> String {
    match serde_json::to_string_pretty(report) {
        Ok(s) => s,
        Err(e) => panic!("serializing million-subs report: {e}"),
    }
}

/// Build the `million-subs` scenario report from explicit params.
fn million_subs_report_for(params: &MillionSubsParams) -> Report {
    let mut r = Report::new("million-subs");
    r.heading("Million subscribers — adoption tiers over a provider-scale population");
    let t0 = std::time::Instant::now(); // tidy:allow(wall-clock): elapsed time feeds the obs::info diagnostic below, never the Report
    let report = million_subs_report(params);
    obs::info!(
        "[repro] streamed {} flows from {} subscribers over {} days in {:.1}s{}",
        report.flows,
        report.subscribers,
        report.days,
        t0.elapsed().as_secs_f64(),
        if params.spill.is_some() {
            " (spilled through columnar day-parts)"
        } else {
            ""
        },
    );
    r.line(format!(
        "{} subscribers, {} days, {} flows, stream digest {}",
        report.subscribers, report.days, report.flows, report.stream_digest
    ));
    let mut t = TextTable::new(vec!["tier", "subscribers", "share"]);
    for row in &report.tiers {
        t.row(vec![
            row.tier.clone(),
            row.subscribers.to_string(),
            format!("{:.4}", row.share),
        ]);
    }
    r.table(t);
    r.line(format!(
        "IPv6 carries {:.1}% of all subscriber bytes; adoption is non-binary \n\
         at provider scale — most active subscribers sit strictly inside (0, 1)",
        report.v6_byte_share * 100.0
    ));
    r.dataset("million_subs.json", million_subs_json(&report));
    r
}

/// `million-subs`: stream a provider-scale subscriber population through
/// the adoption-tier pipeline. `--sites` doubles as the scale knob
/// (50 subscribers per site; the paper-scale run targets 1M+), and
/// `--spill DIR` bounds peak RSS to one in-flight day-part per worker.
pub fn million_subs(s: &mut Session) -> Report {
    let threads = s.config.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1)
    });
    let params = MillionSubsParams {
        seed: s.world.config.seed,
        subscribers: s.world.web.sites.len() * 50,
        days: s.config.days.min(5),
        threads,
        spill: s.config.spill.clone(),
    };
    million_subs_report_for(&params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmon::sink::CollectSink;

    fn params(threads: usize, spill: Option<PathBuf>) -> MillionSubsParams {
        MillionSubsParams {
            seed: 77,
            subscribers: 10_000,
            days: 2,
            threads,
            spill,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("millsubs-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn spill_replay_reproduces_the_in_memory_stream_exactly() {
        let p = params(2, None);
        let world = World::generate(
            &WorldConfig {
                seed: p.seed,
                num_sites: 200,
                ..WorldConfig::small()
            }
            .with_long_tail(1_000)
            .with_subscribers(p.subscribers),
        );
        let cfg = SubscriberTrafficConfig {
            seed: p.seed ^ 0x6d69_6c73_7562,
            num_days: p.days,
            threads: 2,
            ..SubscriberTrafficConfig::default()
        };
        let mut in_memory = CollectSink::new();
        synthesize_subscribers_into(&world, &cfg, &mut in_memory);

        let dir = temp_dir("replay");
        let mut agg = SubscriberAgg::new(p.subscribers);
        spill_run(&world, &cfg, &mut agg, &dir.join("million-subs"));
        let parts = flowstore::PartSet::open(dir.join("million-subs")).expect("open parts");
        let mut replayed = CollectSink::new();
        parts.replay_into(&mut replayed).expect("replay");
        assert_eq!(in_memory.records, replayed.records);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn report_is_byte_identical_spilled_or_not_at_any_thread_count() {
        let dir = temp_dir("report");
        let a = million_subs_json(&million_subs_report(&params(1, None)));
        let b = million_subs_json(&million_subs_report(&params(4, None)));
        assert_eq!(a, b, "thread count must not change the report");
        let c = million_subs_json(&million_subs_report(&params(3, Some(dir.clone()))));
        assert_eq!(a, c, "spilling must not change the report");
        assert!(a.contains("\"stream_digest\""));
        let d = million_subs_json(&million_subs_report(&MillionSubsParams {
            seed: 78,
            ..params(1, None)
        }));
        assert_ne!(a, d, "a different seed produces a different dataset");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn tiers_cover_the_population_and_adoption_is_non_binary() {
        let r = million_subs_report(&params(2, None));
        assert_eq!(r.subscribers, 10_000);
        let counted: u64 = r.tiers.iter().map(|t| t.subscribers).sum();
        assert_eq!(counted, 10_000, "tiers must partition the population");
        assert!(r.flows > 0);
        assert!(r.v6_byte_share > 0.0 && r.v6_byte_share < 1.0);
        // The non-binary picture at provider scale: v4-only subscribers,
        // mid-range dual-stack and near-full adopters all present.
        let by_name = |name: &str| {
            r.tiers
                .iter()
                .find(|t| t.tier == name)
                .map(|t| t.subscribers)
                .unwrap_or(0)
        };
        assert!(by_name("v4-only") > 0);
        assert!(by_name("[0.2, 0.8)") > 0);
        assert!(by_name("[0.8, 1)") + by_name("v6-only") > 0);
    }
}
