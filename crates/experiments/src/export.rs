//! JSON dataset export — the analogue of the paper's published datasets
//! (`https://ant.isi.edu/datasets/ipv6`): server-side and cloud data are
//! exportable; client-side flow logs are exported only in anonymized form,
//! mirroring the paper's IRB constraint.
//!
//! Scenario-owned datasets are not rebuilt here: every registered
//! [`Scenario`](crate::Scenario) with an `export_report` contributes the
//! [`Dataset`](crate::report::Dataset) elements of that report, so the
//! export path consumes the same [`Report`](crate::Report) values that
//! `repro <scenario> --json` emits — one code path, shrunk parameters.

use crate::scenario::registry;
use crate::session::Session;
use flowmon::AnonymizingExporter;
use iputil::anon::{Anonymizer, AnonymizerConfig};
use ipv6view_core::classify::{classify_site, ClassCounts};
use ipv6view_core::cloud::{hosted_fqdns, org_readiness, service_adoption};
use ipv6view_core::influence::InfluenceReport;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct SiteRow {
    rank: usize,
    domain: String,
    class: String,
    resources: usize,
    v4only_resources: usize,
}

/// Write all exportable datasets as JSON files under `out_dir`.
pub fn export_all(session: &mut Session, out_dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    // Serialize straight into a buffered file: no dataset is ever held as
    // one in-memory JSON string. Bytes are identical to the old
    // string-then-write path (the serde_json shim's writer tests pin it).
    let write = |name: &str, value: &dyn erased_ser::Ser| -> std::io::Result<()> {
        use std::io::Write as _;
        let path = out_dir.join(name);
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path)?);
        value.write_json(&mut w)?;
        w.flush()?;
        obs::info!("[export] wrote {}", path.display());
        Ok(())
    };

    // 1. Per-site graded classification (the paper's server-side dataset).
    let e = session.world.latest_epoch();
    session.crawl(e);
    let report = session.crawl_ref(e);
    let sites: Vec<SiteRow> = report
        .sites
        .iter()
        .map(|s| {
            let (resources, v4only) = match &s.outcome {
                Ok(ok) => {
                    let loaded = ok.resources.iter().filter(|r| r.has_a || r.has_aaaa);
                    let v4 = loaded.clone().filter(|r| !r.has_aaaa).count();
                    (ok.resources.len(), v4)
                }
                Err(_) => (0, 0),
            };
            SiteRow {
                rank: s.rank,
                domain: s.domain.to_string(),
                class: format!("{:?}", classify_site(s)),
                resources,
                v4only_resources: v4only,
            }
        })
        .collect();
    write("sites.json", &sites)?;
    write("class_counts.json", &ClassCounts::from_report(report))?;

    // 2. Influence metrics (span / median contribution).
    let influence = InfluenceReport::compute(report, &session.world.psl);
    write("influence_domains.json", &influence.domains)?;

    // 3. Cloud datasets.
    let fqdns = hosted_fqdns(report, &session.world.rib, &session.world.registry);
    write("cloud_org_readiness.json", &org_readiness(&fqdns))?;
    write(
        "cloud_service_adoption.json",
        &service_adoption(&fqdns, &cloudmodel::catalog::ServiceCatalog::paper()),
    )?;

    // 4. Scenario-owned datasets, registry-driven: each scenario's
    //    export-scale Report carries pre-serialized Dataset elements
    //    (deterministic: same seed ⇒ byte-identical files). Currently:
    //    transition_report.json, cgn_sweep.json, as_fractions.json.
    for scenario in registry() {
        let Some(rep) = scenario.export_report(session) else {
            continue;
        };
        for dataset in rep.datasets() {
            let path = out_dir.join(&dataset.name);
            std::fs::write(&path, &dataset.json)?;
            obs::info!("[export] wrote {}", path.display());
        }
    }

    // 5. Client-side: per-residence aggregates plus ANONYMIZED daily logs
    //    (CryptoPAN'd addresses, like the paper's upload pipeline; the raw
    //    logs are deliberately not exported). The anonymized logs are the
    //    one dataset that genuinely needs materialized records. Without
    //    `--spill` the materialized session cache provides them; with it,
    //    each residence spills to columnar day-parts and is replayed —
    //    digest-verified — one residence at a time, so peak memory is one
    //    residence's records instead of all five. The files are
    //    byte-identical either way.
    let exporter = AnonymizingExporter::new(Anonymizer::new(
        *b"dataset-release!",
        AnonymizerConfig::paper(),
    ));
    let write_logs = |ds: &trafficgen::ResidenceDataset| -> std::io::Result<()> {
        let logs = exporter.export(&ds.flows);
        let sample: Vec<_> = logs
            .iter()
            .flat_map(|l| l.records.iter())
            .take(10_000)
            .collect();
        write(
            &format!("residence_{}_flows_anonymized.json", ds.profile.key),
            &sample,
        )
    };
    match session.config.spill.clone() {
        None => {
            session.traffic();
            let analyses: Vec<_> = session
                .traffic_ref()
                .iter()
                .map(ipv6view_core::client::analyze_residence)
                .collect();
            write("residence_analyses.json", &analyses)?;
            for ds in session.traffic_ref() {
                write_logs(ds)?;
            }
        }
        Some(spill) => {
            let dir = spill.join("export");
            if dir.exists() {
                std::fs::remove_dir_all(&dir)?;
            }
            let cfg = session.traffic_config();
            let results = trafficgen::synthesize_profiles_with(
                &session.world,
                trafficgen::paper_residences(),
                &cfg,
                |i, _| {
                    let sink = match flowstore::SpillSink::new(&dir, i as u64) {
                        Ok(s) => s,
                        Err(e) => panic!("opening spill sink {i}: {e}"),
                    };
                    (flowstore::DigestSink::new(), sink)
                },
            );
            let io_err = |e: flowstore::Error| std::io::Error::other(format!("{e}"));
            let mut analyses = Vec::with_capacity(results.len());
            for (summary, (live, spill_sink)) in results {
                let metas = spill_sink.finish().map_err(io_err)?;
                let mut collect = flowmon::CollectSink::new();
                let mut replayed = flowstore::DigestSink::new();
                flowstore::PartSet::from_metas(metas)
                    .replay_into(&mut (&mut collect, &mut replayed))
                    .map_err(io_err)?;
                if replayed.digest() != live.digest() {
                    panic!(
                        "spill replay diverged for residence {}: live {:#018x} vs replay {:#018x}",
                        summary.profile.key,
                        live.digest(),
                        replayed.digest(),
                    );
                }
                let ds = trafficgen::ResidenceDataset {
                    profile: summary.profile,
                    flows: collect.into_records(),
                    scale: summary.scale,
                    num_days: summary.num_days,
                    gateway: summary.gateway,
                    drops: summary.drops,
                };
                analyses.push(ipv6view_core::client::analyze_residence(&ds));
                write_logs(&ds)?;
            }
            write("residence_analyses.json", &analyses)?;
        }
    }
    Ok(())
}

/// Minimal object-safe serialization shim so `write` can take any
/// `Serialize` without generics-in-closures gymnastics.
mod erased_ser {
    pub trait Ser {
        /// Pretty-print into `w` (buffered by the caller); byte-identical
        /// to serializing to a string first.
        fn write_json(&self, w: &mut dyn std::io::Write) -> std::io::Result<()>;
    }
    impl<T: serde::Serialize> Ser for T {
        fn write_json(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
            serde_json::to_writer_pretty(w, self).map_err(|e| std::io::Error::other(format!("{e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{RunConfig, Session};

    #[test]
    fn exports_valid_json() {
        let mut session = Session::new(RunConfig::default().sites(500).seed(77).days(10));
        let dir = std::env::temp_dir().join("ipv6view-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        export_all(&mut session, &dir).expect("export succeeds");
        // Every file parses as JSON and the headline files are non-trivial.
        let mut found = 0;
        for entry in std::fs::read_dir(&dir).expect("dir exists") {
            let path = entry.expect("entry").path();
            let text = std::fs::read_to_string(&path).expect("readable");
            let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
            if path.file_name().unwrap() == "sites.json" {
                assert_eq!(value.as_array().unwrap().len(), 500);
            }
            found += 1;
        }
        assert!(found >= 8, "expected at least 8 dataset files, got {found}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_export_is_byte_identical() {
        let base =
            std::env::temp_dir().join(format!("ipv6view-export-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (dir_a, dir_b, spill) = (base.join("a"), base.join("b"), base.join("spill"));
        let cfg = || RunConfig::default().sites(200).seed(77).days(2);

        let mut plain = Session::new(cfg());
        export_all(&mut plain, &dir_a).expect("in-memory export");
        let mut spilled = Session::new(cfg().threads(3).spill(&spill));
        export_all(&mut spilled, &dir_b).expect("spilled export");

        let names = |dir: &std::path::Path| -> Vec<String> {
            let mut v: Vec<String> = std::fs::read_dir(dir)
                .expect("dir exists")
                .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
                .collect();
            v.sort();
            v
        };
        let files = names(&dir_a);
        assert_eq!(files, names(&dir_b), "spill must not change the file set");
        for name in &files {
            let a = std::fs::read(dir_a.join(name)).expect("readable");
            let b = std::fs::read(dir_b.join(name)).expect("readable");
            assert_eq!(a, b, "{name} differs between in-memory and spilled export");
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}
