//! JSON dataset export — the analogue of the paper's published datasets
//! (`https://ant.isi.edu/datasets/ipv6`): server-side and cloud data are
//! exportable; client-side flow logs are exported only in anonymized form,
//! mirroring the paper's IRB constraint.
//!
//! Scenario-owned datasets are not rebuilt here: every registered
//! [`Scenario`](crate::Scenario) with an `export_report` contributes the
//! [`Dataset`](crate::report::Dataset) elements of that report, so the
//! export path consumes the same [`Report`](crate::Report) values that
//! `repro <scenario> --json` emits — one code path, shrunk parameters.

use crate::scenario::registry;
use crate::session::Session;
use flowmon::AnonymizingExporter;
use iputil::anon::{Anonymizer, AnonymizerConfig};
use ipv6view_core::classify::{classify_site, ClassCounts};
use ipv6view_core::cloud::{hosted_fqdns, org_readiness, service_adoption};
use ipv6view_core::influence::InfluenceReport;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct SiteRow {
    rank: usize,
    domain: String,
    class: String,
    resources: usize,
    v4only_resources: usize,
}

/// Write all exportable datasets as JSON files under `out_dir`.
pub fn export_all(session: &mut Session, out_dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let write = |name: &str, value: &dyn erased_ser::Ser| -> std::io::Result<()> {
        let path = out_dir.join(name);
        let json = value.to_json();
        std::fs::write(&path, json)?;
        obs::info!("[export] wrote {}", path.display());
        Ok(())
    };

    // 1. Per-site graded classification (the paper's server-side dataset).
    let e = session.world.latest_epoch();
    session.crawl(e);
    let report = session.crawl_ref(e);
    let sites: Vec<SiteRow> = report
        .sites
        .iter()
        .map(|s| {
            let (resources, v4only) = match &s.outcome {
                Ok(ok) => {
                    let loaded = ok.resources.iter().filter(|r| r.has_a || r.has_aaaa);
                    let v4 = loaded.clone().filter(|r| !r.has_aaaa).count();
                    (ok.resources.len(), v4)
                }
                Err(_) => (0, 0),
            };
            SiteRow {
                rank: s.rank,
                domain: s.domain.to_string(),
                class: format!("{:?}", classify_site(s)),
                resources,
                v4only_resources: v4only,
            }
        })
        .collect();
    write("sites.json", &sites)?;
    write("class_counts.json", &ClassCounts::from_report(report))?;

    // 2. Influence metrics (span / median contribution).
    let influence = InfluenceReport::compute(report, &session.world.psl);
    write("influence_domains.json", &influence.domains)?;

    // 3. Cloud datasets.
    let fqdns = hosted_fqdns(report, &session.world.rib, &session.world.registry);
    write("cloud_org_readiness.json", &org_readiness(&fqdns))?;
    write(
        "cloud_service_adoption.json",
        &service_adoption(&fqdns, &cloudmodel::catalog::ServiceCatalog::paper()),
    )?;

    // 4. Scenario-owned datasets, registry-driven: each scenario's
    //    export-scale Report carries pre-serialized Dataset elements
    //    (deterministic: same seed ⇒ byte-identical files). Currently:
    //    transition_report.json, cgn_sweep.json, as_fractions.json.
    for scenario in registry() {
        let Some(rep) = scenario.export_report(session) else {
            continue;
        };
        for dataset in rep.datasets() {
            let path = out_dir.join(&dataset.name);
            std::fs::write(&path, &dataset.json)?;
            obs::info!("[export] wrote {}", path.display());
        }
    }

    // 5. Client-side: per-residence aggregates plus ANONYMIZED daily logs
    //    (CryptoPAN'd addresses, like the paper's upload pipeline; the raw
    //    logs are deliberately not exported). The anonymized logs are the
    //    one dataset that genuinely needs materialized records, so this
    //    step synthesizes once and derives the aggregates from the same
    //    records instead of paying for a second streaming pass.
    session.traffic();
    let analyses: Vec<_> = session
        .traffic_ref()
        .iter()
        .map(ipv6view_core::client::analyze_residence)
        .collect();
    write("residence_analyses.json", &analyses)?;
    let exporter = AnonymizingExporter::new(Anonymizer::new(
        *b"dataset-release!",
        AnonymizerConfig::paper(),
    ));
    for ds in session.traffic_ref() {
        let logs = exporter.export(&ds.flows);
        let sample: Vec<_> = logs
            .iter()
            .flat_map(|l| l.records.iter())
            .take(10_000)
            .collect();
        write(
            &format!("residence_{}_flows_anonymized.json", ds.profile.key),
            &sample,
        )?;
    }
    Ok(())
}

/// Minimal object-safe serialization shim so `write` can take any
/// `Serialize` without generics-in-closures gymnastics.
mod erased_ser {
    pub trait Ser {
        fn to_json(&self) -> String;
    }
    impl<T: serde::Serialize> Ser for T {
        fn to_json(&self) -> String {
            serde_json::to_string_pretty(self).expect("serializable")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{RunConfig, Session};

    #[test]
    fn exports_valid_json() {
        let mut session = Session::new(RunConfig::default().sites(500).seed(77).days(10));
        let dir = std::env::temp_dir().join("ipv6view-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        export_all(&mut session, &dir).expect("export succeeds");
        // Every file parses as JSON and the headline files are non-trivial.
        let mut found = 0;
        for entry in std::fs::read_dir(&dir).expect("dir exists") {
            let path = entry.expect("entry").path();
            let text = std::fs::read_to_string(&path).expect("readable");
            let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
            if path.file_name().unwrap() == "sites.json" {
                assert_eq!(value.as_array().unwrap().len(), 500);
            }
            found += 1;
        }
        assert!(found >= 8, "expected at least 8 dataset files, got {found}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
