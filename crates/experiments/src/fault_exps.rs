//! Fault-injection scenarios: the deterministic failure plane exercised
//! end to end.
//!
//! Two scenarios drive [`faults::FaultPlan`] timelines through the full
//! synthesis stack:
//!
//! * [`faults_sweep`] — one fault class at a time against the cohort's
//!   NAT64 line, so each class's casualty signature (drops by cause,
//!   gateway rejections) is visible in isolation against a clean run of
//!   identical demand.
//! * [`adoption_under_stress`] — the combined stress timeline over the
//!   whole five-technology cohort, reporting how each line's
//!   translated/native composition shifts under failures, plus a RIB churn
//!   leg replayed against a clone of the session's routing table.
//!
//! Both scenarios honour the fault plane's determinism contract: every
//! number here is a pure function of `(world seed, days)` and invariant to
//! `--threads` / `--day-threads` — [`adoption_under_stress`] attaches its
//! dataset to the report precisely so that invariance stays testable.

use crate::report::Report;
use crate::session::Session;
use bgpsim::AsId;
use faults::{ChurnOp, DnsFailure, FaultPlan, PoolTarget, Window};
use flowmon::{DropCause, DropCounters};
use iputil::Family;
use ipv6view_core::report::TextTable;
use ipv6view_core::tiers::{analyze_transition_agg, residence_translation_map, TransitionAnalysis};
use serde::Serialize;
use trafficgen::{synthesize_profiles_with, transition_residences, TrafficConfig};
use transition::{AccessTech, GatewayConfig};

/// The combined stress timeline both scenarios derive theirs from: DNS
/// SERVFAIL bursts, a daily business-hours gateway outage, a pool shrink
/// over the back half of the run, IPv6 path degradation, and RIB churn.
/// Windows scale with `days` so the plan bites at any `--days`.
pub fn stress_plan(seed: u64, days: u32) -> FaultPlan {
    let last = days.saturating_sub(1);
    let mid = days / 2;
    FaultPlan::new(seed ^ 0x7374_7265_7373) // "stress"
        .dns_burst(DnsFailure::ServFail, 0.4, Window::days(0, last))
        .gateway_outage(PoolTarget::Both, Window::new(0, last, 9, 15))
        .pool_shrink(0.25, Window::days(mid, last))
        .path_degrade(Family::V6, 60, 0.15, 0.2, Window::days(0, last))
        .rib_churn(40, 0.5, Window::days(0, last))
}

/// One row of the per-class fault sweep: what one fault class did to the
/// NAT64 line relative to the clean run of identical demand.
#[derive(Debug, Clone, Serialize)]
pub struct FaultClassRow {
    /// Fault class label (`clean`, `dns-burst`, ...).
    pub class: String,
    /// Sampled flow records that survived to the log.
    pub flows: usize,
    /// Gateway bindings granted over the run.
    pub granted: u64,
    /// Gateway rejections (pool exhausted or shrunk).
    pub rejected: u64,
    /// Flows lost to the fault plane, by cause.
    pub drops: DropCounters,
}

/// Run the per-class sweep: the cohort's NAT64 line, dense sampling, one
/// fault class per run (plus the clean baseline), identical demand
/// throughout — the same synthesis seed is used for every run, so every
/// delta is attributable to the injected class.
pub fn faults_sweep_rows(s: &Session, days: u32) -> Vec<FaultClassRow> {
    let profile = transition_residences()
        .into_iter()
        .find(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
        .expect("cohort has a NAT64 line");
    let last = days.saturating_sub(1);
    let plan_seed = s.world.config.seed ^ 0x6661_756c_7473; // "faults"
    let classes: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::default()),
        (
            "dns-burst",
            FaultPlan::new(plan_seed).dns_burst(DnsFailure::ServFail, 0.5, Window::days(0, last)),
        ),
        (
            "gateway-outage",
            FaultPlan::new(plan_seed).gateway_outage(PoolTarget::Both, Window::new(0, last, 8, 16)),
        ),
        (
            "pool-shrink",
            FaultPlan::new(plan_seed).pool_shrink(0.25, Window::days(0, last)),
        ),
        (
            "path-degrade",
            FaultPlan::new(plan_seed).path_degrade(Family::V6, 50, 0.1, 0.2, Window::days(0, last)),
        ),
    ];
    classes
        .into_iter()
        .map(|(class, plan)| {
            let cfg = TrafficConfig {
                seed: s.world.config.seed ^ 0x6661_6c74, // "falt"
                num_days: days,
                // Dense sampling + a small pool with CGN-style binding
                // lifetimes: the regime where shrinks and outages actually
                // show up in the counters.
                scale: 1.0 / 50.0,
                gateway: GatewayConfig {
                    capacity: 16,
                    binding_timeout: 3_600 * 1_000_000,
                },
                faults: plan,
                ..s.traffic_config()
            };
            let ds = trafficgen::synthesize_residence(&s.world, profile.clone(), &cfg, 0);
            let gw = ds.gateway.unwrap_or_default();
            FaultClassRow {
                class: class.to_string(),
                flows: ds.flows.len(),
                granted: gw.granted,
                rejected: gw.rejected,
                drops: ds.drops,
            }
        })
        .collect()
}

/// `faults-sweep`: each fault class in isolation against the NAT64 line —
/// the casualty signature (drops by cause, gateway rejections) of DNS
/// bursts, gateway outages, pool shrinks and path degradation.
pub fn faults_sweep(s: &mut Session) -> Report {
    let days = s.config.days.clamp(1, 10);
    let mut r = Report::new("faults-sweep");
    r.heading("Faults — per-class casualty signatures on the NAT64 line");
    let rows = faults_sweep_rows(s, days);
    let mut t = TextTable::new(vec![
        "class",
        "flows",
        "granted",
        "rejected",
        "dns-failure",
        "gw-outage",
        "pool-exhausted",
        "path-loss",
    ]);
    for row in &rows {
        t.row(vec![
            row.class.clone(),
            row.flows.to_string(),
            row.granted.to_string(),
            row.rejected.to_string(),
            row.drops.get(DropCause::DnsFailure).to_string(),
            row.drops.get(DropCause::GatewayOutage).to_string(),
            row.drops.get(DropCause::PoolExhausted).to_string(),
            row.drops.get(DropCause::PathLoss).to_string(),
        ]);
    }
    r.table(t);
    r.line(
        "(identical demand on every row: the clean baseline draws the same flows,\n\
         so each class's drop column is exactly the traffic that class destroyed;\n\
         an empty plan is byte-identical to no plan by the determinism contract)",
    );
    r.dataset(
        "faults_sweep.json",
        serde_json::to_string_pretty(&rows).expect("serializable"),
    );
    r
}

/// One cohort line under the combined stress timeline: clean vs stressed
/// composition, rejections and the fault plane's per-cause casualties.
#[derive(Debug, Clone, Serialize)]
pub struct StressRow {
    /// Residence key.
    pub key: char,
    /// Access-technology label.
    pub tech: String,
    /// Clean-run translated byte share.
    pub clean_translated_bytes: f64,
    /// Stressed translated byte share.
    pub stress_translated_bytes: f64,
    /// Clean-run native IPv6 byte share.
    pub clean_native_v6_bytes: f64,
    /// Stressed native IPv6 byte share.
    pub stress_native_v6_bytes: f64,
    /// Clean-run gateway rejections (0 on gateway-less lines).
    pub clean_rejected: u64,
    /// Stressed gateway rejections.
    pub stress_rejected: u64,
    /// Flows lost to the fault plane, by cause.
    pub drops: DropCounters,
}

/// The RIB churn leg: what replaying the plan's announce/withdraw timeline
/// against a clone of the session RIB did to the routing table.
#[derive(Debug, Clone, Serialize)]
pub struct RibChurnSummary {
    /// Routes before any churn.
    pub baseline_routes: usize,
    /// Routes after the full timeline (withdrawals of the final day's
    /// batch land on the day after the window).
    pub final_routes: usize,
    /// Announcements applied.
    pub announced: u64,
    /// Withdrawals applied.
    pub withdrawn: u64,
}

/// The exportable adoption-under-stress dataset: per-line rows plus the
/// RIB churn summary. Byte-identical at any `--threads` / `--day-threads`.
#[derive(Debug, Clone, Serialize)]
pub struct StressReport {
    /// Days simulated.
    pub days: u32,
    /// Per-residence clean-vs-stressed rows, cohort order.
    pub rows: Vec<StressRow>,
    /// The RIB churn leg.
    pub rib: RibChurnSummary,
}

/// Run the transition cohort under `plan` (empty = clean), streaming every
/// line through a translation aggregator; returns the graded analysis and
/// the fault plane's casualty counters per line.
fn stressed_cohort(
    s: &Session,
    days: u32,
    plan: FaultPlan,
) -> Vec<(TransitionAnalysis, DropCounters)> {
    let cfg = TrafficConfig {
        // Same synthesis seed as the clean `transition` cohort: identical
        // demand, so clean-vs-stress deltas are pure fault effects.
        seed: s.world.config.seed ^ 0x786c_6174, // "xlat"
        num_days: days,
        faults: plan,
        ..s.traffic_config()
    };
    let nat64 = s.world.transition.nat64_prefix.prefix();
    let results = synthesize_profiles_with(&s.world, transition_residences(), &cfg, |_, p| {
        flowmon::sink::TranslationAgg::new(residence_translation_map(p.access_tech, nat64))
    });
    results
        .iter()
        .map(|(summary, agg)| {
            (
                analyze_transition_agg(
                    summary.profile.key,
                    summary.profile.access_tech,
                    summary.scale,
                    agg,
                    summary.gateway,
                ),
                summary.drops,
            )
        })
        .collect()
}

/// Replay the plan's RIB churn timeline against a clone of the session's
/// routing table. Day `days` is included so the final covered day's
/// withdrawals (which land one day later) are applied too.
fn replay_rib_churn(s: &Session, plan: &FaultPlan, days: u32) -> RibChurnSummary {
    let mut rib = s.world.rib.clone();
    let baseline_routes = rib.len();
    let (mut announced, mut withdrawn) = (0u64, 0u64);
    for day in 0..=days {
        for op in plan.churn_for_day(day) {
            match op {
                ChurnOp::Announce(prefix, asn) => {
                    rib.announce(prefix, AsId(asn));
                    announced += 1;
                }
                ChurnOp::Withdraw(prefix) => {
                    rib.withdraw(prefix);
                    withdrawn += 1;
                }
            }
        }
    }
    RibChurnSummary {
        baseline_routes,
        final_routes: rib.len(),
        announced,
        withdrawn,
    }
}

/// Build the adoption-under-stress dataset for a session at `days`.
pub fn adoption_under_stress_data(s: &Session, days: u32) -> StressReport {
    let plan = stress_plan(s.world.config.seed, days);
    let clean = stressed_cohort(s, days, FaultPlan::default());
    let stressed = stressed_cohort(s, days, plan.clone());
    let rows = clean
        .iter()
        .zip(&stressed)
        .map(|((c, _), (x, drops))| StressRow {
            key: c.key,
            tech: c.tech.clone(),
            clean_translated_bytes: c.translated_bytes,
            stress_translated_bytes: x.translated_bytes,
            clean_native_v6_bytes: c.native_v6_bytes,
            stress_native_v6_bytes: x.native_v6_bytes,
            clean_rejected: c.gateway.map(|g| g.rejected).unwrap_or(0),
            stress_rejected: x.gateway.map(|g| g.rejected).unwrap_or(0),
            drops: *drops,
        })
        .collect();
    StressReport {
        days,
        rows,
        rib: replay_rib_churn(s, &plan, days),
    }
}

/// `adoption-under-stress`: the combined stress timeline over the whole
/// five-technology cohort — how each line's adoption picture degrades when
/// DNS, gateways, paths and the RIB all misbehave at once.
pub fn adoption_under_stress(s: &mut Session) -> Report {
    let days = s.config.days.clamp(1, 20);
    let mut r = Report::new("adoption-under-stress");
    r.heading("Adoption under stress — the cohort on a failing infrastructure");
    let data = adoption_under_stress_data(s, days);
    let mut t = TextTable::new(vec![
        "Res",
        "Access tech",
        "translated",
        "native v6",
        "gw rejected",
        "drops (dns/gw/pool/path)",
    ]);
    for row in &data.rows {
        t.row(vec![
            row.key.to_string(),
            row.tech.clone(),
            format!(
                "{:.3} -> {:.3}",
                row.clean_translated_bytes, row.stress_translated_bytes
            ),
            format!(
                "{:.3} -> {:.3}",
                row.clean_native_v6_bytes, row.stress_native_v6_bytes
            ),
            format!("{} -> {}", row.clean_rejected, row.stress_rejected),
            format!(
                "{}/{}/{}/{}",
                row.drops.get(DropCause::DnsFailure),
                row.drops.get(DropCause::GatewayOutage),
                row.drops.get(DropCause::PoolExhausted),
                row.drops.get(DropCause::PathLoss)
            ),
        ]);
    }
    r.table(t);
    r.line(format!(
        "RIB churn: {} routes -> {} ({} announced, {} withdrawn over {} days)",
        data.rib.baseline_routes,
        data.rib.final_routes,
        data.rib.announced,
        data.rib.withdrawn,
        days
    ));
    r.line(
        "(identical demand clean vs stressed: every shift is a fault effect —\n\
         v6-only lines lose translated bytes to DNS bursts and outages while\n\
         dual-stack lines shift races to v4; the dataset is byte-identical at\n\
         any --threads / --day-threads by the determinism contract)",
    );
    r.dataset(
        "adoption_under_stress.json",
        serde_json::to_string_pretty(&data).expect("serializable"),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::RunConfig;

    #[test]
    fn faults_sweep_shows_per_class_casualties() {
        let s = Session::new(RunConfig::default().sites(400).seed(77).days(6));
        let rows = faults_sweep_rows(&s, 6);
        assert_eq!(rows.len(), 5);
        let by_class = |class: &str| rows.iter().find(|r| r.class == class).expect(class);
        let clean = by_class("clean");
        // A small pool rejects (= PoolExhausted drops) even without a
        // plan; what a clean run must never show is an injected cause.
        for cause in [
            DropCause::DnsFailure,
            DropCause::GatewayOutage,
            DropCause::PathLoss,
        ] {
            assert_eq!(clean.drops.get(cause), 0, "clean run shows {cause:?}");
        }
        assert!(
            by_class("dns-burst").drops.get(DropCause::DnsFailure) > 0,
            "a 50% SERVFAIL burst must cost some races"
        );
        assert!(
            by_class("gateway-outage")
                .drops
                .get(DropCause::GatewayOutage)
                > 0,
            "an 8-hour daily outage must refuse some flows"
        );
        assert!(
            by_class("path-degrade").drops.get(DropCause::PathLoss) > 0,
            "a 20% drop-rate degradation must lose some flows"
        );
        let shrink = by_class("pool-shrink");
        assert!(
            shrink.rejected > clean.rejected,
            "a quartered pool must reject more ({} vs {})",
            shrink.rejected,
            clean.rejected
        );
    }

    #[test]
    fn adoption_under_stress_dataset_is_layout_invariant() {
        let base = RunConfig::default().sites(400).seed(77).days(6);
        let s1 = Session::new(base.clone().threads(1).day_threads(1));
        let s2 = Session::new(base.threads(4).day_threads(3));
        let d1 = adoption_under_stress_data(&s1, 6);
        let d2 = adoption_under_stress_data(&s2, 6);
        let j1 = serde_json::to_string_pretty(&d1).expect("serializable");
        let j2 = serde_json::to_string_pretty(&d2).expect("serializable");
        assert_eq!(j1, j2, "stress dataset must be layout-invariant");
        // The stress timeline really bites: some line drops something, and
        // the churn leg moved the cloned RIB.
        assert!(d1.rows.iter().any(|r| !r.drops.is_empty()));
        assert!(d1.rib.announced > 0 && d1.rib.withdrawn > 0);
        assert!(d1.rib.final_routes > d1.rib.baseline_routes);
        // The session's own RIB is untouched by the replay.
        assert_eq!(s1.world.rib.len(), d1.rib.baseline_routes);
    }

    #[test]
    fn stress_session_faults_flow_through_traffic_config() {
        let plan = stress_plan(7, 4);
        let s = Session::new(
            RunConfig::default()
                .sites(200)
                .seed(7)
                .days(4)
                .faults(plan.clone()),
        );
        assert_eq!(s.traffic_config().faults, plan);
        assert!(
            Session::new(RunConfig::default().sites(200).seed(7).days(4))
                .traffic_config()
                .faults
                .is_empty()
        );
    }
}
