//! `repro bench-snapshot` — standing performance probes.
//!
//! Runs two hand-timed probes (criterion lives behind `cargo bench`; this
//! path must work in a plain `cargo build` binary) and **appends** one
//! timestamped snapshot to each standing benchmark ledger:
//!
//! * `BENCH_lpm.json` — the IPv6 LPM attribution hot path: 1000 lookups
//!   against a 50k-prefix table, and the memoized 4k-query duplicate-heavy
//!   batch, mirroring `benches/micro.rs`.
//! * `BENCH_traffic.json` — pipeline throughput: whole-residence streaming
//!   synthesis into aggregate sinks, per-AS attribution of 200k flows
//!   over a 100k-AS long-tail RIB (mirroring `benches/traffic.rs`), and
//!   the flowstore spill/replay halves of the `--spill` path over the
//!   same 200k-record stream.
//!
//! The ledgers are history: existing bytes are never rewritten — the new
//! snapshot is spliced into the `"snapshots"` array (created after the
//! existing keys if absent) and the result is parse-validated before the
//! file is touched. `--check` runs the validation alone and writes nothing.

use flowmon::sink::{CollectSink, FlowStatsAgg};
use flowmon::{FlowSink, Scope, ScopeFamilyAgg};
use ipv6view_core::client::AsAgg;
use std::net::Ipv6Addr;
use std::time::Instant;
use trafficgen::{
    paper_residences, synthesize_long_tail_into, synthesize_residence_into, LongTailTrafficConfig,
    TrafficConfig,
};
use worldgen::{World, WorldConfig};

const LPM_LEDGER: &str = "BENCH_lpm.json";
const TRAFFIC_LEDGER: &str = "BENCH_traffic.json";

/// Entry point for the `bench-snapshot` subcommand. `check` validates the
/// ledger shapes and exits without running probes or writing.
pub fn run(check: bool) {
    if check {
        let mut ok = true;
        ok &= check_ledger(LPM_LEDGER, check_lpm_shape);
        ok &= check_ledger(TRAFFIC_LEDGER, check_traffic_shape);
        if !ok {
            std::process::exit(1);
        }
        println!("bench-snapshot --check: both ledgers well-formed"); // tidy:allow(raw-stderr): CLI-only subcommand result on stdout
        return;
    }
    let date = today_utc();
    obs::info!("[bench-snapshot] running LPM probes ...");
    let lpm = lpm_probe();
    obs::info!("[bench-snapshot] running pipeline probes ...");
    let traffic = traffic_probe();
    append_to_ledger(LPM_LEDGER, &lpm.render(&date));
    append_to_ledger(TRAFFIC_LEDGER, &traffic.render(&date));
    // tidy:allow(raw-stderr): CLI-only subcommand result on stdout
    println!("appended snapshot ({date}) to {LPM_LEDGER} and {TRAFFIC_LEDGER}");
}

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

/// How the probes measure, stamped into every snapshot so a ledger reader
/// can tell probe medians from criterion medians at a glance. This is the
/// criterion shape in miniature: warm the cache/branch state first, size
/// each sample to many iterations so timer overhead amortises, then take
/// the median per-iteration time across samples.
const METHODOLOGY: &str = "warmup then calibrated iters/sample (criterion-shaped); \
     median per-iteration ns over samples";

struct LpmProbe {
    lpm4_1k_ns: u64,
    lpm4_frozen_1k_ns: u64,
    lpm6_1k_ns: u64,
    lpm6_frozen_1k_ns: u64,
    batch_4k_dup_ns: u64,
    batch_4k_unique_ns: u64,
    frozen_batch_4k_unique_ns: u64,
    samples: usize,
}

impl LpmProbe {
    fn render(&self, date: &str) -> String {
        format!(
            "{{\n      \"date\": \"{date}\",\n      \"source\": \"repro bench-snapshot\",\n      \
             \"methodology\": \"{METHODOLOGY}\",\n      \
             \"samples\": {},\n      \
             \"lpm4_longest_match_50k_prefixes_ns\": {},\n      \
             \"lpm4_frozen_longest_match_50k_prefixes_ns\": {},\n      \
             \"lpm6_longest_match_50k_prefixes_ns\": {},\n      \
             \"lpm6_frozen_longest_match_50k_prefixes_ns\": {},\n      \
             \"lpm6_longest_match_many_4k_dup_addrs_ns\": {},\n      \
             \"lpm6_longest_match_many_4k_unique_addrs_ns\": {},\n      \
             \"lpm6_frozen_longest_match_many_4k_unique_addrs_ns\": {}\n    }}",
            self.samples,
            self.lpm4_1k_ns,
            self.lpm4_frozen_1k_ns,
            self.lpm6_1k_ns,
            self.lpm6_frozen_1k_ns,
            self.batch_4k_dup_ns,
            self.batch_4k_unique_ns,
            self.frozen_batch_4k_unique_ns
        )
    }
}

struct TrafficProbe {
    synth_residence_5d_ns: u64,
    per_as_agg_200k_ns: u64,
    per_as_agg_200k_frozen_ns: u64,
    spill_write_200k_ns: u64,
    spill_replay_200k_ns: u64,
    samples: usize,
}

impl TrafficProbe {
    fn render(&self, date: &str) -> String {
        format!(
            "{{\n      \"date\": \"{date}\",\n      \"source\": \"repro bench-snapshot\",\n      \
             \"methodology\": \"{METHODOLOGY}\",\n      \
             \"samples\": {},\n      \"results\": [\n        \
             {{ \"name\": \"synthesize_residence_5d_aggregate_sinks\", \"median_ns\": {} }},\n        \
             {{ \"name\": \"per_as_agg_200k_flows_100k_ases_interned_symvec\", \"median_ns\": {} }},\n        \
             {{ \"name\": \"per_as_agg_200k_flows_100k_ases_frozen_multibit\", \"median_ns\": {} }},\n        \
             {{ \"name\": \"flowstore_spill_200k_flows_columnar_day_parts\", \"median_ns\": {} }},\n        \
             {{ \"name\": \"flowstore_replay_200k_flows_digest_sink\", \"median_ns\": {} }}\n      \
             ]\n    }}",
            self.samples,
            self.synth_residence_5d_ns,
            self.per_as_agg_200k_ns,
            self.per_as_agg_200k_frozen_ns,
            self.spill_write_200k_ns,
            self.spill_replay_200k_ns
        )
    }
}

/// Median per-iteration wall-clock of `f`, measured criterion-style.
///
/// The old probe timed each call once with no warmup, which read ~20% high
/// against `cargo bench` (cold caches/branch predictors on the first
/// samples, and per-call timer overhead on fast probes). This harness
/// matches the criterion shape: run `f` for ~`warmup_ms` first (discarded),
/// calibrate how many iterations fill ~`sample_ms`, then time `samples`
/// batches of that size and report the median per-iteration time.
fn median_ns(samples: usize, warmup_ms: u64, sample_ms: u64, mut f: impl FnMut()) -> u64 {
    let warmup = std::time::Duration::from_millis(warmup_ms);
    let t0 = Instant::now();
    let mut warm_iters = 0u64;
    while t0.elapsed() < warmup {
        f();
        warm_iters += 1;
    }
    let per_iter = (t0.elapsed().as_nanos() as u64 / warm_iters.max(1)).max(1);
    let iters = (sample_ms * 1_000_000 / per_iter).clamp(1, 1_000_000);
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX) / iters
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The attribution hot path, mirroring `benches/micro.rs`: 50k routed-table-
/// shaped prefixes for each family, 1000 half-covered lookup addresses
/// (scalar, trie and frozen), and the memoized batch entry point over a
/// duplicate-heavy and a duplicate-poor (unique) 4k batch.
fn lpm_probe() -> LpmProbe {
    use iputil::prefix::{Prefix4, Prefix6};
    use iputil::trie::{Lpm4, Lpm6};
    use std::net::Ipv4Addr;
    let samples = 15;
    // IPv4: uniform-random prefixes /8..=/24 (the micro.rs shape).
    let mut rng = 1u64;
    let mut table4: Lpm4<u32> = Lpm4::new();
    for i in 0..50_000u32 {
        let bits = splitmix64(&mut rng) as u32;
        let len = 8 + (splitmix64(&mut rng) % 17) as u8;
        table4.insert(Prefix4::new(Ipv4Addr::from(bits), len), i);
    }
    let addrs4: Vec<Ipv4Addr> = (0..1_000)
        .map(|_| Ipv4Addr::from(splitmix64(&mut rng) as u32))
        .collect();
    let frozen4 = table4.freeze();
    let lpm4_1k_ns = median_ns(samples, 300, 20, || {
        let mut hits = 0usize;
        for &a in &addrs4 {
            if table4.longest_match(a).is_some() {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
    });
    let lpm4_frozen_1k_ns = median_ns(samples, 300, 20, || {
        let mut hits = 0usize;
        for &a in &addrs4 {
            if frozen4.longest_match(a).is_some() {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
    });
    // IPv6: routed-table-shaped /20..=/48, addresses half covered.
    let mut rng = 2u64;
    let mut table: Lpm6<u32> = Lpm6::new();
    let mut covered: Vec<u128> = Vec::new();
    for i in 0..50_000u32 {
        let bits: u128 = ((splitmix64(&mut rng) as u32 as u128) << 96)
            | ((splitmix64(&mut rng) as u32 as u128) << 64);
        let len = 20 + (splitmix64(&mut rng) % 29) as u8;
        covered.push(bits);
        table.insert(Prefix6::new(Ipv6Addr::from(bits), len), i);
    }
    let addrs: Vec<Ipv6Addr> = (0..1_000)
        .map(|i| {
            if i % 2 == 0 {
                let base = covered[(splitmix64(&mut rng) as usize) % covered.len()];
                Ipv6Addr::from(base | (splitmix64(&mut rng) as u128 & 0xffff_ffff_ffff_ffff))
            } else {
                Ipv6Addr::from(
                    ((splitmix64(&mut rng) as u32 as u128) << 96)
                        | (splitmix64(&mut rng) as u128 & 0xffff_ffff_ffff_ffff),
                )
            }
        })
        .collect();
    let batch: Vec<Ipv6Addr> = (0..4_000)
        .map(|_| addrs[(splitmix64(&mut rng) as usize) % 64])
        .collect();
    let unique: Vec<Ipv6Addr> = (0..4_000usize)
        .map(|i| {
            let base = covered[(i * 13) % covered.len()];
            Ipv6Addr::from(base | (splitmix64(&mut rng) as u128 & 0xffff_ffff_ffff_ffff))
        })
        .collect();
    let frozen6 = table.freeze();
    let lpm6_1k_ns = median_ns(samples, 300, 20, || {
        let mut hits = 0usize;
        for &a in &addrs {
            if table.longest_match(a).is_some() {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
    });
    let lpm6_frozen_1k_ns = median_ns(samples, 300, 20, || {
        let mut hits = 0usize;
        for &a in &addrs {
            if frozen6.longest_match(a).is_some() {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
    });
    let batch_4k_dup_ns = median_ns(samples, 300, 20, || {
        std::hint::black_box(table.longest_match_many(&batch).len());
    });
    let batch_4k_unique_ns = median_ns(samples, 300, 20, || {
        std::hint::black_box(table.longest_match_many(&unique).len());
    });
    let frozen_batch_4k_unique_ns = median_ns(samples, 300, 20, || {
        std::hint::black_box(frozen6.longest_match_many(&unique).len());
    });
    LpmProbe {
        lpm4_1k_ns,
        lpm4_frozen_1k_ns,
        lpm6_1k_ns,
        lpm6_frozen_1k_ns,
        batch_4k_dup_ns,
        batch_4k_unique_ns,
        frozen_batch_4k_unique_ns,
        samples,
    }
}

/// Pipeline throughput, mirroring `benches/traffic.rs`: 5 days of residence
/// A at 1/200 sampling into aggregate sinks, and 200k long-tail flows
/// attributed over a 100k-AS RIB via the interned [`AsAgg`].
fn traffic_probe() -> TrafficProbe {
    let world = World::generate(&WorldConfig {
        num_sites: 1_000,
        ..WorldConfig::small()
    });
    let profile = paper_residences().remove(0);
    let cfg = TrafficConfig {
        num_days: 5,
        scale: 1.0 / 200.0,
        threads: 1,
        day_threads: 1,
        ..TrafficConfig::default()
    };
    let samples = 9;
    let synth_residence_5d_ns = median_ns(samples, 200, 50, || {
        let mut sink = (ScopeFamilyAgg::new(cfg.num_days), FlowStatsAgg::new());
        synthesize_residence_into(&world, profile.clone(), &cfg, 0, &mut sink);
        std::hint::black_box(sink.0.overall(Scope::External).total_flows());
    });
    let mut tail_world = World::generate(
        &WorldConfig {
            num_sites: 200,
            ..WorldConfig::small()
        }
        .with_long_tail(100_000),
    );
    let compiled_rib = tail_world.rib.clone();
    tail_world.rib.thaw();
    let mut sink = CollectSink::new();
    synthesize_long_tail_into(
        &tail_world,
        &LongTailTrafficConfig {
            num_days: 1,
            flows_per_day: 200_000,
            threads: 1,
            ..LongTailTrafficConfig::default()
        },
        &mut sink,
    );
    let records = sink.into_records();
    let per_as_agg_200k_ns = median_ns(5, 200, 60, || {
        let mut agg = AsAgg::new(&tail_world.rib, &tail_world.registry);
        for r in &records {
            agg.accept(r);
        }
        std::hint::black_box((agg.observed_as_count(), agg.total_bytes()));
    });
    let per_as_agg_200k_frozen_ns = median_ns(5, 200, 60, || {
        let mut agg = AsAgg::new(&compiled_rib, &tail_world.registry);
        for chunk in records.chunks(8_192) {
            agg.accept_batch(chunk);
        }
        std::hint::black_box((agg.observed_as_count(), agg.total_bytes()));
    });
    // Spill/replay throughput over the same 200k-record stream: encode and
    // seal the columnar day-parts, then decode them back through a digest
    // sink — the two halves of the `--spill` path.
    let spill_dir = std::env::temp_dir().join(format!("bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let spill_write_200k_ns = median_ns(5, 200, 60, || {
        let mut sink = match flowstore::SpillSink::new(&spill_dir, 0) {
            Ok(s) => s,
            Err(e) => panic!("spill probe: {e}"),
        };
        sink.accept_batch(&records);
        match sink.finish() {
            Ok(m) => std::hint::black_box(m.len()),
            Err(e) => panic!("spill probe: {e}"),
        };
    });
    let parts = match flowstore::PartSet::open(&spill_dir) {
        Ok(p) => p,
        Err(e) => panic!("spill probe: {e}"),
    };
    let spill_replay_200k_ns = median_ns(5, 200, 60, || {
        let mut digest = flowstore::DigestSink::new();
        if let Err(e) = parts.replay_into(&mut digest) {
            panic!("replay probe: {e}");
        }
        std::hint::black_box(digest.digest());
    });
    let _ = std::fs::remove_dir_all(&spill_dir);
    TrafficProbe {
        synth_residence_5d_ns,
        per_as_agg_200k_ns,
        per_as_agg_200k_frozen_ns,
        spill_write_200k_ns,
        spill_replay_200k_ns,
        samples,
    }
}

// ---------------------------------------------------------------------------
// Ledger append (existing bytes preserved) and --check validation
// ---------------------------------------------------------------------------

/// Splice `snapshot` (a rendered JSON object) into `path`'s `"snapshots"`
/// array, creating the array after the existing keys when absent. The
/// edited text must re-parse before it replaces the file.
fn append_to_ledger(path: &str, snapshot: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fatal(&format!("cannot read {path}: {e}")));
    if serde_json::from_str(&text).is_err() {
        fatal(&format!("{path} is not valid JSON; refusing to append"));
    }
    let edited = splice_snapshot(&text, snapshot)
        .unwrap_or_else(|| fatal(&format!("{path}: cannot locate splice point")));
    if serde_json::from_str(&edited).is_err() {
        fatal(&format!(
            "{path}: edited ledger failed to re-parse; file left untouched"
        ));
    }
    std::fs::write(path, edited).unwrap_or_else(|e| fatal(&format!("cannot write {path}: {e}")));
}

/// The pure splice: returns the edited document, or `None` when the
/// document has no top-level object to extend.
fn splice_snapshot(text: &str, snapshot: &str) -> Option<String> {
    if let Some(key) = text.find("\"snapshots\"") {
        let open = key + text[key..].find('[')?;
        let close = matching_bracket(text, open)?;
        let sep = if text[open + 1..close].trim().is_empty() {
            ""
        } else {
            ","
        };
        let mut out = String::with_capacity(text.len() + snapshot.len() + 16);
        out.push_str(text[..close].trim_end());
        out.push_str(sep);
        out.push_str("\n    ");
        out.push_str(snapshot);
        out.push_str("\n  ");
        out.push_str(&text[close..]);
        Some(out)
    } else {
        let close = text.rfind('}')?;
        let mut out = String::with_capacity(text.len() + snapshot.len() + 32);
        out.push_str(text[..close].trim_end());
        out.push_str(",\n  \"snapshots\": [\n    ");
        out.push_str(snapshot);
        out.push_str("\n  ]\n");
        out.push_str(&text[close..]);
        Some(out)
    }
}

/// Index of the `]`/`}` matching the bracket at `open`, skipping string
/// literals (with escapes) so bracket characters inside notes don't count.
fn matching_bracket(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let (mut depth, mut in_string, mut escaped) = (0i32, false, false);
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_ledger(path: &str, shape: fn(&serde_json::Value) -> Result<(), String>) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            obs::error!("[bench-snapshot] {path}: {e}");
            return false;
        }
    };
    let value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            obs::error!("[bench-snapshot] {path}: invalid JSON: {e:?}");
            return false;
        }
    };
    match shape(&value) {
        Ok(()) => true,
        Err(msg) => {
            obs::error!("[bench-snapshot] {path}: {msg}");
            false
        }
    }
}

/// `BENCH_lpm.json`: a `snapshots` array of objects, each carrying at least
/// one numeric `*_ns` measurement.
fn check_lpm_shape(v: &serde_json::Value) -> Result<(), String> {
    let snaps = v
        .get("snapshots")
        .and_then(|s| s.as_array())
        .ok_or("missing \"snapshots\" array")?;
    for (i, snap) in snaps.iter().enumerate() {
        let obj = snap
            .as_object()
            .ok_or(format!("snapshots[{i}] is not an object"))?;
        let has_ns = obj
            .iter()
            .any(|(k, val)| k.ends_with("_ns") && val.as_f64().is_some());
        if !has_ns {
            return Err(format!("snapshots[{i}] has no numeric *_ns field"));
        }
    }
    Ok(())
}

/// `BENCH_traffic.json`: the historical `results` array (name + median_ns),
/// plus — once `bench-snapshot` has run — a `snapshots` array whose entries
/// each carry a date and their own results.
fn check_traffic_shape(v: &serde_json::Value) -> Result<(), String> {
    let check_results = |results: &serde_json::Value, what: &str| -> Result<(), String> {
        let rows = results
            .as_array()
            .ok_or(format!("{what} is not an array"))?;
        for (i, row) in rows.iter().enumerate() {
            if row.get("name").and_then(|n| n.as_str()).is_none()
                || row.get("median_ns").and_then(|n| n.as_f64()).is_none()
            {
                return Err(format!("{what}[{i}] needs string name + numeric median_ns"));
            }
        }
        Ok(())
    };
    check_results(v.get("results").ok_or("missing \"results\"")?, "results")?;
    if let Some(snaps) = v.get("snapshots") {
        let snaps = snaps.as_array().ok_or("\"snapshots\" is not an array")?;
        for (i, snap) in snaps.iter().enumerate() {
            if snap.get("date").and_then(|d| d.as_str()).is_none() {
                return Err(format!("snapshots[{i}] missing string date"));
            }
            check_results(
                snap.get("results")
                    .ok_or(format!("snapshots[{i}] missing results"))?,
                &format!("snapshots[{i}].results"),
            )?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Timestamp (no chrono in the tree: hand-rolled civil-date conversion)
// ---------------------------------------------------------------------------

/// Today as `YYYY-MM-DD` (UTC).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    civil_date(secs)
}

/// Unix seconds to `YYYY-MM-DD` via the classic days-to-civil conversion
/// (Howard Hinnant's algorithm).
fn civil_date(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn fatal(msg: &str) -> ! {
    obs::error!("[bench-snapshot] {msg}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_into_existing_snapshots_array() {
        let doc = "{\n  \"description\": \"x [not a real bracket]\",\n  \"snapshots\": [\n    {\n      \"pr\": 1\n    }\n  ]\n}\n";
        let out = splice_snapshot(doc, "{ \"date\": \"2026-08-08\" }").expect("spliced");
        let v: serde_json::Value = serde_json::from_str(&out).expect("still valid JSON");
        let snaps = v.get("snapshots").unwrap().as_array().unwrap();
        assert_eq!(snaps.len(), 2);
        assert_eq!(
            snaps[1].get("date").and_then(|d| d.as_str()),
            Some("2026-08-08")
        );
        assert!(
            out.contains("\"description\": \"x [not a real bracket]\""),
            "existing bytes preserved"
        );
    }

    #[test]
    fn splice_creates_snapshots_array_when_absent() {
        let doc = "{\n  \"bench\": \"traffic\",\n  \"results\": [\n    { \"name\": \"a\", \"median_ns\": 1.5 }\n  ]\n}\n";
        let out = splice_snapshot(
            doc,
            "{ \"date\": \"2026-08-08\", \"results\": [ { \"name\": \"b\", \"median_ns\": 2 } ] }",
        )
        .expect("spliced");
        let v: serde_json::Value = serde_json::from_str(&out).expect("still valid JSON");
        assert!(v.get("results").is_some(), "historical results kept");
        let snaps = v.get("snapshots").unwrap().as_array().unwrap();
        assert_eq!(snaps.len(), 1);
        // Splicing again lands in the array just created.
        let again = splice_snapshot(&out, "{ \"date\": \"2026-08-09\", \"results\": [] }").unwrap();
        let v2: serde_json::Value =
            serde_json::from_str(&again).expect("valid after second splice");
        assert_eq!(v2.get("snapshots").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn real_ledgers_accept_the_rendered_snapshots() {
        let lpm = LpmProbe {
            lpm4_1k_ns: 7_000,
            lpm4_frozen_1k_ns: 6_000,
            lpm6_1k_ns: 16_000,
            lpm6_frozen_1k_ns: 11_000,
            batch_4k_dup_ns: 24_000,
            batch_4k_unique_ns: 107_000,
            frozen_batch_4k_unique_ns: 76_000,
            samples: 15,
        };
        let traffic = TrafficProbe {
            synth_residence_5d_ns: 800_000,
            per_as_agg_200k_ns: 59_000_000,
            per_as_agg_200k_frozen_ns: 12_000_000,
            spill_write_200k_ns: 30_000_000,
            spill_replay_200k_ns: 20_000_000,
            samples: 9,
        };
        for rendered in [lpm.render("2026-08-08"), traffic.render("2026-08-08")] {
            let v: serde_json::Value = serde_json::from_str(&rendered).expect("snapshot is JSON");
            assert_eq!(v.get("date").and_then(|d| d.as_str()), Some("2026-08-08"));
        }
    }

    #[test]
    fn shape_checks_match_the_ledger_formats() {
        let lpm: serde_json::Value =
            serde_json::from_str("{ \"snapshots\": [ { \"pr\": 1, \"lpm6_x_ns\": 5 } ] }").unwrap();
        assert!(check_lpm_shape(&lpm).is_ok());
        let bad: serde_json::Value =
            serde_json::from_str("{ \"snapshots\": [ { \"pr\": 1 } ] }").unwrap();
        assert!(check_lpm_shape(&bad).is_err());
        let traffic: serde_json::Value = serde_json::from_str(
            "{ \"results\": [ { \"name\": \"a\", \"median_ns\": 1 } ], \"snapshots\": [ { \"date\": \"d\", \"results\": [] } ] }",
        )
        .unwrap();
        assert!(check_traffic_shape(&traffic).is_ok());
        let missing_date: serde_json::Value =
            serde_json::from_str("{ \"results\": [], \"snapshots\": [ { \"results\": [] } ] }")
                .unwrap();
        assert!(check_traffic_shape(&missing_date).is_err());
    }

    #[test]
    fn civil_date_conversion_is_correct() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(951_782_400), "2000-02-29");
        assert_eq!(civil_date(1_786_147_200), "2026-08-08");
    }
}
