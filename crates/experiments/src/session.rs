//! [`RunConfig`] and [`Session`]: the shared state every scenario runs in.
//!
//! A `Session` owns the synthetic world plus lazily-built caches of the
//! expensive derived artifacts (crawls, traffic runs, streaming aggregate
//! passes), so a sequence of scenarios — `repro all`, a registry sweep in a
//! test, or an embedding application — pays for each artifact once.
//!
//! Flow-derived experiments come in two flavors. The *streaming* caches
//! ([`Session::client_analyses`], [`Session::as_rows`],
//! [`Session::domain_rows`], [`Session::hourly_aggs`],
//! [`Session::flow_sketches`]) run one synthesis pass with composite
//! [`FlowSink`](flowmon::FlowSink) aggregators — peak memory is
//! O(residences × aggregator),
//! independent of `days`, which is what lets `--full` runs scale.
//! [`Session::traffic`] still materializes every record, but only the
//! anonymized-log export needs it (raw flow logs are the one artifact that
//! *is* the records).

use crawlsim::{crawl_epoch, CrawlConfig, CrawlReport};
use dnssim::Name;
use faults::FaultPlan;
use flowmon::sink::FlowStatsAgg;
use flowmon::{Scope, ScopeFamilyAgg};
use ipv6view_core::client::{
    analyze_agg, domain_fractions_from, AsAgg, AsFraction, DomainAgg, HourlyAgg, ResidenceAnalysis,
};
use trafficgen::{
    paper_residences, synthesize_all, synthesize_profiles_with, ResidenceDataset, TrafficConfig,
};
use worldgen::{World, WorldConfig};

/// Typed run parameters: what the `repro` flags used to thread positionally.
///
/// Build one with the chainable setters and hand it to [`Session::new`]:
///
/// ```
/// use experiments::{RunConfig, Session};
/// let session = Session::new(RunConfig::default().sites(200).seed(7).days(2));
/// assert_eq!(session.world.web.sites.len(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Crawl-list size (the paper's full scale is 100 000).
    pub sites: usize,
    /// World seed; every derived artifact is a pure function of it.
    pub seed: u64,
    /// Traffic duration in days (the paper observes ~273).
    pub days: u32,
    /// `--threads` override for every synthesis pass (`None` = default).
    pub threads: Option<usize>,
    /// `--day-threads` override (`None` = default).
    pub day_threads: Option<usize>,
    /// Fault timeline injected into every synthesis pass of the session
    /// (empty by default — an empty plan is byte-identical to no plan).
    pub faults: FaultPlan,
    /// Enable the telemetry plane (`crates/obs`) for this session. Off by
    /// default; when on, [`Session::new`] resets and enables the global
    /// plane so [`Session::metrics`] returns this session's activity.
    pub metrics: bool,
    /// Use the compiled (frozen multibit) LPM engine for RIB lookups. On by
    /// default; turning it off thaws every world back to the radix trie.
    /// Output is byte-identical either way — the registry tests assert it —
    /// so this exists for differential testing and perf comparison, not
    /// correctness.
    pub compiled_lpm: bool,
    /// Spill directory for flow streams (`--spill DIR`). When set, the
    /// flow-producing passes write sorted columnar day-parts
    /// ([`flowstore`]) instead of holding records, and every replay is
    /// digest-verified against the live stream. Scenario reports stay
    /// byte-identical to in-memory runs — the registry tests assert it —
    /// so this trades disk for peak RSS, never answers.
    pub spill: Option<std::path::PathBuf>,
}

impl Default for RunConfig {
    /// The `repro` defaults: a 20k-site world (1/5th of the paper's scale),
    /// the reference seed, and the paper's nine-month duration.
    fn default() -> RunConfig {
        RunConfig {
            sites: 20_000,
            seed: 0x1f6_ad0b,
            days: 273,
            threads: None,
            day_threads: None,
            faults: FaultPlan::default(),
            metrics: false,
            compiled_lpm: true,
            spill: None,
        }
    }
}

impl RunConfig {
    /// Set the crawl-list size.
    pub fn sites(mut self, sites: usize) -> RunConfig {
        self.sites = sites;
        self
    }

    /// Set the world seed.
    pub fn seed(mut self, seed: u64) -> RunConfig {
        self.seed = seed;
        self
    }

    /// Set the traffic duration in days.
    pub fn days(mut self, days: u32) -> RunConfig {
        self.days = days;
        self
    }

    /// Fan synthesis passes over `threads` workers (output-invariant).
    pub fn threads(mut self, threads: usize) -> RunConfig {
        self.threads = Some(threads);
        self
    }

    /// Additionally fan the days inside one residence (output-invariant).
    pub fn day_threads(mut self, day_threads: usize) -> RunConfig {
        self.day_threads = Some(day_threads);
        self
    }

    /// Inject a deterministic fault timeline into every synthesis pass.
    pub fn faults(mut self, faults: FaultPlan) -> RunConfig {
        self.faults = faults;
        self
    }

    /// Record telemetry (spans, counters, histograms) for this session.
    /// Scenario output stays byte-identical — the plane observes, never
    /// perturbs. Read the snapshot with [`Session::metrics`].
    pub fn metrics(mut self, on: bool) -> RunConfig {
        self.metrics = on;
        self
    }

    /// Toggle the compiled (frozen multibit) LPM engine for this session's
    /// worlds. Scenario output stays byte-identical — only lookup speed
    /// changes.
    pub fn compiled_lpm(mut self, on: bool) -> RunConfig {
        self.compiled_lpm = on;
        self
    }

    /// Spill flow streams to sorted columnar day-parts under `dir`. Every
    /// replay is digest-verified against the live stream and scenario
    /// output stays byte-identical to in-memory runs.
    pub fn spill(mut self, dir: impl Into<std::path::PathBuf>) -> RunConfig {
        self.spill = Some(dir.into());
        self
    }

    /// The paper's full 100k-site scale.
    pub fn full(mut self) -> RunConfig {
        self.sites = 100_000;
        self
    }
}

/// Everything the client-side figures read, computed in one streaming
/// synthesis pass (no flow record survives its push).
pub struct StreamedClient {
    /// Per-residence Table 1 rows + daily series, profile order.
    pub analyses: Vec<ResidenceAnalysis>,
    /// Per-(AS, residence) fraction rows (Fig 3/4), residence-major,
    /// ASN-sorted within a residence. Computed at the paper's 0.01%
    /// volume floor.
    pub as_rows: Vec<AsFraction>,
    /// Per-domain fraction rows (Fig 17), at the paper's thresholds
    /// (≥ 10 kB sampled volume, ≥ 3 residences).
    pub domains: Vec<(Name, Vec<f64>)>,
    /// Per-residence flow duration/size sketches.
    pub sketches: Vec<(char, FlowStatsAgg)>,
}

/// Lazily-built shared state for all scenarios of one invocation.
pub struct Session {
    /// The synthetic Internet.
    pub world: World,
    /// The run parameters this session was built with.
    pub config: RunConfig,
    crawls: Vec<Option<CrawlReport>>,
    crawl_mainpage_only: Option<CrawlReport>,
    traffic: Option<Vec<ResidenceDataset>>,
    streamed: Option<StreamedClient>,
    hourly: Option<Vec<(char, HourlyAgg)>>,
}

impl Session {
    /// Generate the world (this is the expensive step, done eagerly so the
    /// user sees progress immediately).
    pub fn new(config: RunConfig) -> Session {
        if config.metrics {
            // Fresh plane per session: drop whatever a previous session
            // recorded so `metrics()` reflects exactly this session.
            obs::set_enabled(true);
            obs::reset();
        }
        let (sites, seed) = (config.sites, config.seed);
        obs::info!("[repro] generating world: {sites} sites, seed {seed:#x} ...");
        let t0 = std::time::Instant::now();
        let world_config = WorldConfig {
            seed,
            num_sites: sites,
            num_epochs: 3,
            long_tail_ases: 0,
            subscribers: 0,
            calibration: worldgen::Calibration::default(),
        };
        let mut world = {
            let _span = obs::span!("world-gen");
            World::generate(&world_config)
        };
        if !config.compiled_lpm {
            // Differential mode: drop the frozen engines worldgen compiled,
            // forcing every lookup back through the radix authority.
            world.rib.thaw();
        }
        obs::info!(
            "[repro] world ready in {:.1}s ({} third-party domains, {} zone names in Jul 2025)",
            t0.elapsed().as_secs_f64(),
            world.web.third_parties.len(),
            world.zone(world.latest_epoch()).name_count(),
        );
        let epochs = world.web.epochs.len();
        Session {
            world,
            config,
            crawls: (0..epochs).map(|_| None).collect(),
            crawl_mainpage_only: None,
            traffic: None,
            streamed: None,
            hourly: None,
        }
    }

    /// The scale factor relative to the paper's 100k-site crawl; used to
    /// scale absolute thresholds like "span ≥ 100".
    pub fn site_scale(&self) -> f64 {
        self.world.web.sites.len() as f64 / 100_000.0
    }

    /// The base synthesis configuration of this session: `days` plus the
    /// `threads` / `day_threads` overrides. Scenarios that need different
    /// seeds/scales start from this and override fields.
    pub fn traffic_config(&self) -> TrafficConfig {
        let mut cfg = TrafficConfig {
            num_days: self.config.days,
            faults: self.config.faults.clone(),
            ..TrafficConfig::default()
        };
        if let Some(t) = self.config.threads {
            cfg.threads = t.max(1);
        }
        if let Some(t) = self.config.day_threads {
            cfg.day_threads = t.max(1);
        }
        cfg
    }

    /// Crawl (cached) of one epoch.
    pub fn crawl(&mut self, epoch: usize) -> &CrawlReport {
        if self.crawls[epoch].is_none() {
            obs::info!("[repro] crawling epoch {epoch} ...");
            let t0 = std::time::Instant::now();
            let _span = obs::span!("crawl", epoch = epoch);
            let report = crawl_epoch(&self.world, epoch, &CrawlConfig::default());
            drop(_span);
            obs::info!("[repro] crawl done in {:.1}s", t0.elapsed().as_secs_f64());
            self.crawls[epoch] = Some(report);
        }
        self.crawls[epoch].as_ref().expect("just filled")
    }

    /// Crawl of the latest epoch (Jul 2025).
    pub fn latest_crawl(&mut self) -> &CrawlReport {
        let e = self.world.latest_epoch();
        self.crawl(e)
    }

    /// Shared-reference accessor for an already-run crawl (panics if the
    /// epoch has not been crawled yet — call [`Session::crawl`] first).
    /// Exists so call sites can borrow the crawl and `world` fields
    /// together.
    pub fn crawl_ref(&self, epoch: usize) -> &CrawlReport {
        self.crawls[epoch]
            .as_ref()
            .expect("crawl(epoch) must run before crawl_ref(epoch)")
    }

    /// Shared-reference accessor for already-synthesized traffic.
    pub fn traffic_ref(&self) -> &[ResidenceDataset] {
        self.traffic
            .as_ref()
            .expect("traffic() must run before traffic_ref()")
    }

    /// Main-page-only ablation crawl of the latest epoch.
    pub fn mainpage_crawl(&mut self) -> &CrawlReport {
        if self.crawl_mainpage_only.is_none() {
            obs::info!("[repro] crawling latest epoch (main-page-only ablation) ...");
            let cfg = CrawlConfig {
                click_links: false,
                ..CrawlConfig::default()
            };
            let _span = obs::span!("crawl-mainpage");
            let report = crawl_epoch(&self.world, self.world.latest_epoch(), &cfg);
            self.crawl_mainpage_only = Some(report);
        }
        self.crawl_mainpage_only.as_ref().expect("just filled")
    }

    /// The nine-month traffic run at 1/1000 sampling, fully materialized.
    /// Only the anonymized-flow-log export should need this; every
    /// aggregate analysis reads the streaming caches instead.
    pub fn traffic(&mut self) -> &[ResidenceDataset] {
        if self.traffic.is_none() {
            obs::info!(
                "[repro] synthesizing {}-day traffic for 5 residences (materialized) ...",
                self.config.days
            );
            let t0 = std::time::Instant::now();
            let cfg = self.traffic_config();
            let _span = obs::span!("traffic");
            let ds = synthesize_all(&self.world, &cfg);
            drop(_span);
            let flows: usize = ds.iter().map(|d| d.flows.len()).sum();
            obs::info!(
                "[repro] traffic done in {:.1}s ({flows} sampled flow records)",
                t0.elapsed().as_secs_f64()
            );
            self.traffic = Some(ds);
        }
        self.traffic.as_ref().expect("just filled")
    }

    /// The streaming client pass: same seed and sampling as
    /// [`Session::traffic`], but every record dies in its aggregators. One
    /// pass feeds Table 1, Fig 1/3/4/14–17 and the flow-shape sketches.
    ///
    /// The composite per-residence sink is a plain 4-tuple of aggregators —
    /// the [`FlowSink`](flowmon::FlowSink) tuple combinators replace the
    /// bespoke struct this pass once needed.
    pub fn streamed(&mut self) -> &StreamedClient {
        if self.streamed.is_none() {
            obs::info!(
                "[repro] synthesizing {}-day traffic for 5 residences (streaming aggregators) ...",
                self.config.days
            );
            let t0 = std::time::Instant::now();
            let _span = obs::span!("streaming");
            let cfg = self.traffic_config();
            let world = &self.world;
            let make_aggs = || {
                (
                    ScopeFamilyAgg::new(cfg.num_days),
                    FlowStatsAgg::new(),
                    AsAgg::new(&world.rib, &world.registry),
                    DomainAgg::new(&world.client_zone, &world.psl),
                )
            };
            let results = match self.config.spill.clone() {
                None => {
                    synthesize_profiles_with(world, paper_residences(), &cfg, |_, _| make_aggs())
                }
                Some(spill) => {
                    // Spill mode: tee every residence's stream into a
                    // columnar day-part writer alongside the aggregators,
                    // then replay the sealed parts and insist the replay
                    // digest matches the live stream byte for byte.
                    let dir = spill.join("residences");
                    if dir.exists() {
                        if let Err(e) = std::fs::remove_dir_all(&dir) {
                            panic!("clearing spill dir {}: {e}", dir.display());
                        }
                    }
                    let with_spill =
                        synthesize_profiles_with(world, paper_residences(), &cfg, |i, _| {
                            let spill_sink = match flowstore::SpillSink::new(&dir, i as u64) {
                                Ok(s) => s,
                                Err(e) => panic!("opening spill sink {i}: {e}"),
                            };
                            (make_aggs(), (flowstore::DigestSink::new(), spill_sink))
                        });
                    let mut results = Vec::with_capacity(with_spill.len());
                    for (summary, (aggs, (live, spill_sink))) in with_spill {
                        let metas = match spill_sink.finish() {
                            Ok(m) => m,
                            Err(e) => panic!("sealing spill parts: {e}"),
                        };
                        let mut replayed = flowstore::DigestSink::new();
                        let stats = match flowstore::PartSet::from_metas(metas)
                            .replay_into(&mut replayed)
                        {
                            Ok(s) => s,
                            Err(e) => panic!("replaying spilled parts: {e}"),
                        };
                        if replayed.digest() != live.digest() {
                            panic!(
                                "spill replay diverged for residence {}: live {:#018x} ({} rows) vs replay {:#018x} ({} rows)",
                                summary.profile.key,
                                live.digest(),
                                live.count(),
                                replayed.digest(),
                                stats.rows,
                            );
                        }
                        obs::debug!(
                            "[repro] spill verified: residence {} — {} parts, {} rows, digest {:#018x}",
                            summary.profile.key,
                            stats.parts,
                            stats.rows,
                            live.digest(),
                        );
                        results.push((summary, aggs));
                    }
                    results
                }
            };
            let mut analyses = Vec::with_capacity(results.len());
            let mut as_rows = Vec::new();
            let mut sketches = Vec::with_capacity(results.len());
            let mut domain_aggs = Vec::with_capacity(results.len());
            for (summary, (scope, stats, as_agg, domains)) in results {
                let key = summary.profile.key;
                analyses.push(analyze_agg(key, summary.scale, &scope));
                as_rows.extend(as_agg.fractions(key, 0.0001));
                sketches.push((key, stats));
                domain_aggs.push(domains);
            }
            let domains = domain_fractions_from(&domain_aggs, 10_000, 3);
            drop(_span);
            obs::info!(
                "[repro] streaming pass done in {:.1}s",
                t0.elapsed().as_secs_f64()
            );
            self.streamed = Some(StreamedClient {
                analyses,
                as_rows,
                domains,
                sketches,
            });
        }
        self.streamed.as_ref().expect("just filled")
    }

    /// Per-residence Table 1 analyses (streaming).
    pub fn client_analyses(&mut self) -> &[ResidenceAnalysis] {
        &self.streamed().analyses
    }

    /// Per-(AS, residence) fraction rows (streaming).
    pub fn as_rows(&mut self) -> &[AsFraction] {
        &self.streamed().as_rows
    }

    /// Per-domain fraction rows (streaming).
    pub fn domain_rows(&mut self) -> &[(Name, Vec<f64>)] {
        &self.streamed().domains
    }

    /// Per-residence flow duration/size sketches (streaming).
    pub fn flow_sketches(&mut self) -> &[(char, FlowStatsAgg)] {
        &self.streamed().sketches
    }

    /// Dense (1/20 sampling) hourly aggregates for the MSTL figures: one
    /// external-scope [`HourlyAgg`] per residence over the first
    /// `min(days, 35)` days, streamed — the dense run's records are never
    /// held either.
    pub fn hourly_aggs(&mut self) -> &[(char, HourlyAgg)] {
        if self.hourly.is_none() {
            obs::info!("[repro] synthesizing dense traffic (hourly analyses, streaming) ...");
            let _span = obs::span!("hourly");
            let cfg = TrafficConfig {
                num_days: self.config.days.min(63),
                scale: 1.0 / 20.0,
                ..self.traffic_config()
            };
            let range = 0..cfg.num_days.min(35);
            let results =
                synthesize_profiles_with(&self.world, paper_residences(), &cfg, |_, _| {
                    HourlyAgg::new(Scope::External, range.clone())
                });
            self.hourly = Some(
                results
                    .into_iter()
                    .map(|(summary, agg)| (summary.profile.key, agg))
                    .collect(),
            );
        }
        self.hourly.as_ref().expect("just filled")
    }

    /// Snapshot of the telemetry plane: stage spans, pipeline counters, and
    /// flow-shape histograms accumulated since this session started. Empty
    /// unless the session was built with [`RunConfig::metrics`] (or the
    /// caller enabled `obs` directly). Counts are cumulative across every
    /// scenario the session has run — the caches mean an artifact is built
    /// (and therefore counted) once.
    pub fn metrics(&self) -> obs::MetricsReport {
        obs::snapshot()
    }
}
