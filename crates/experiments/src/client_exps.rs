//! Client-side scenarios: Table 1, Fig 1–4 and appendix Figs 13–17.
//!
//! Everything here reads the streaming caches of [`Session`] — one
//! synthesis pass with composite aggregator sinks feeds every figure, and
//! no flow record is ever materialized on this path.

use crate::report::Report;
use crate::session::Session;
use ipv6view_core::client::{common_ases, daily_fraction_series, Metric};
use ipv6view_core::report::{render_box_row, render_cdf, TextTable};
use ipv6view_core::seasonal;
use netstats::{BoxplotStats, Ecdf};

/// Table 1: per-residence traffic volume, flow counts and IPv6 fractions.
pub fn table1(s: &mut Session) -> Report {
    let mut r = Report::new("table1");
    r.heading("Table 1 — per-residence IPv6 traffic (external & internal)");
    let profiles = trafficgen::paper_residences();
    let stats = s.client_analyses().to_vec();
    // Paper volumes cover ~273 days; scale them to the simulated duration.
    let day_scale = s.config.days as f64 / 273.0;
    let mut t = TextTable::new(vec![
        "Res",
        "Scope",
        "GB (meas)",
        "GB (paper)",
        "v6B meas",
        "v6B paper",
        "Flows M",
        "v6F meas",
        "v6F paper",
        "daily μ(σ)",
    ]);
    for (a, p) in stats.iter().zip(&profiles) {
        t.row(vec![
            p.key.to_string(),
            "External".into(),
            format!("{:.0}", a.external.total_gb),
            format!("{:.0}", p.paper_ext_gb * day_scale),
            format!("{:.3}", a.external.v6_byte_fraction),
            format!("{:.3}", p.paper_ext_v6_bytes),
            format!("{:.1}", a.external.flows_m),
            format!("{:.3}", a.external.v6_flow_fraction),
            format!("{:.3}", p.paper_ext_v6_flows),
            format!(
                "{:.3} ({:.3})",
                a.external.daily_byte_mean, a.external.daily_byte_sd
            ),
        ]);
        t.row(vec![
            String::new(),
            "Internal".into(),
            format!("{:.2}", a.internal.total_gb),
            format!("{:.2}", p.paper_int_gb * day_scale),
            format!("{:.3}", a.internal.v6_byte_fraction),
            format!("{:.3}", p.paper_int_v6_bytes),
            format!("{:.2}", a.internal.flows_m),
            format!("{:.3}", a.internal.v6_flow_fraction),
            "-".into(),
            format!(
                "{:.3} ({:.3})",
                a.internal.daily_byte_mean, a.internal.daily_byte_sd
            ),
        ]);
    }
    r.table(t);
    for (a, p) in stats.iter().zip(&profiles) {
        r.compare(
            format!("Residence {} external IPv6 byte fraction", a.key),
            p.paper_ext_v6_bytes,
            a.external.v6_byte_fraction,
        );
    }
    // Flow-shape sketches from the same streaming pass (netstats
    // LogHistogram: ≈9% relative quantile error, O(1) memory per
    // residence).
    for (key, sketch) in s.flow_sketches() {
        let q = |h: &netstats::LogHistogram, p: f64| h.quantile(p).unwrap_or(0.0);
        r.line(format!(
            "residence {key}: flow size p50 {:.0} B / p99 {:.0} B, duration p50 {:.0}s / p99 {:.0}s",
            q(&sketch.size_bytes, 0.5),
            q(&sketch.size_bytes, 0.99),
            q(&sketch.duration_us, 0.5) / 1e6,
            q(&sketch.duration_us, 0.99) / 1e6,
        ));
    }
    r
}

/// Fig 1: CDFs of daily IPv6 byte/flow fractions at residences A, B, C.
pub fn fig1(s: &mut Session) -> Report {
    let mut r = Report::new("fig1");
    r.heading("Fig 1 — daily IPv6 fraction CDFs (residences A, B, C)");
    let stats = s.client_analyses();
    for key in ['A', 'B', 'C'] {
        let a = stats.iter().find(|a| a.key == key).expect("residence");
        let ext_b: Vec<f64> = a.daily.iter().filter_map(|d| d.ext_bytes).collect();
        let ext_f: Vec<f64> = a.daily.iter().filter_map(|d| d.ext_flows).collect();
        let int_b: Vec<f64> = a.daily.iter().filter_map(|d| d.int_bytes).collect();
        r.raw(render_cdf(
            &format!("{key} external bytes"),
            &Ecdf::new(ext_b),
            5,
        ));
        r.raw(render_cdf(
            &format!("{key} external flows"),
            &Ecdf::new(ext_f),
            5,
        ));
        r.raw(render_cdf(
            &format!("{key} internal bytes"),
            &Ecdf::new(int_b),
            5,
        ));
    }
    r.line(
        "(paper: byte-fraction CDFs rise near-linearly with heavy-hitter tails;\n\
         flow-fraction CDFs rise sharply — flows are stabler than bytes)",
    );
    // Quantify the paper's flows-stabler-than-bytes claim.
    let stats = s.client_analyses();
    for key in ['A', 'B', 'C'] {
        let a = stats.iter().find(|a| a.key == key).expect("residence");
        r.line(format!(
            "residence {key}: daily byte sd {:.3} vs daily flow sd {:.3}",
            a.external.daily_byte_sd, a.external.daily_flow_sd
        ));
    }
    r
}

/// Fig 2: MSTL of the hourly IPv6 byte fraction at residence A (March 2025).
pub fn fig2(s: &mut Session) -> Report {
    let mut r = Report::new("fig2");
    r.heading("Fig 2 — MSTL of hourly IPv6 byte fraction, residence A");
    mstl_hourly(&mut r, s, 'A', Metric::Bytes);
    r
}

/// Fig 13 (appendix): MSTL of the hourly IPv6 *flow* fraction, residence A.
pub fn fig13(s: &mut Session) -> Report {
    let mut r = Report::new("fig13");
    r.heading("Fig 13 — MSTL of hourly IPv6 flow fraction, residence A");
    mstl_hourly(&mut r, s, 'A', Metric::Flows);
    r
}

fn mstl_hourly(r: &mut Report, s: &mut Session, key: char, metric: Metric) {
    let agg = s
        .hourly_aggs()
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, agg)| agg)
        .expect("residence");
    let series = agg.series(metric);
    match seasonal::decompose_hourly(&series) {
        Ok(fit) => {
            let strengths = seasonal::seasonal_strengths(&fit);
            for st in &strengths {
                r.line(format!(
                    "period {:>3}h: strength {:.2}, mean-cycle amplitude {:.3}",
                    st.period, st.strength, st.amplitude
                ));
            }
            if let Some(peak) = seasonal::daily_peak_hour(&fit) {
                r.line(format!(
                    "daily component peaks at hour {peak} (paper: evening rise to midnight)"
                ));
            }
            let trend_mean = fit.trend.iter().sum::<f64>() / fit.trend.len() as f64;
            r.line(format!(
                "trend mean {:.3} over {} hours",
                trend_mean,
                fit.trend.len()
            ));
            let spark: String = fit
                .seasonal(24)
                .expect("daily seasonal")
                .iter()
                .take(48)
                .map(|v| {
                    let blocks = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                    let idx = (((v + 0.3) / 0.6) * 7.0).clamp(0.0, 7.0) as usize;
                    blocks[idx]
                })
                .collect();
            r.line(format!("daily component, first 48h: {spark}"));
        }
        Err(e) => {
            r.line(format!("decomposition failed: {e}"));
        }
    }
}

/// Fig 14/15 (appendix): MSTL of daily byte fractions at residences B and C.
pub fn fig14(s: &mut Session) -> Report {
    let mut r = Report::new("fig14");
    r.heading("Fig 14 — MSTL of daily IPv6 byte fraction, residence B");
    mstl_daily(&mut r, s, 'B');
    r
}

/// Fig 15 (appendix).
pub fn fig15(s: &mut Session) -> Report {
    let mut r = Report::new("fig15");
    r.heading("Fig 15 — MSTL of daily IPv6 byte fraction, residence C");
    mstl_daily(&mut r, s, 'C');
    r
}

fn mstl_daily(r: &mut Report, s: &mut Session, key: char) {
    let stats = s.client_analyses();
    let a = stats.iter().find(|a| a.key == key).expect("residence");
    let series = daily_fraction_series(a);
    match seasonal::decompose_daily(&series) {
        Ok(fit) => {
            let strengths = seasonal::seasonal_strengths(&fit);
            for st in &strengths {
                r.line(format!(
                    "period {:>3}d: strength {:.2}, mean-cycle amplitude {:.3}",
                    st.period, st.strength, st.amplitude
                ));
            }
            let trend_min = fit.trend.iter().cloned().fold(f64::INFINITY, f64::min);
            let trend_max = fit.trend.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            r.line(format!(
                "trend range [{trend_min:.3}, {trend_max:.3}] over {} days \
                 (paper: no long-term direction)",
                fit.trend.len()
            ));
        }
        Err(e) => {
            r.line(format!("decomposition failed: {e}"));
        }
    }
}

/// Fig 3: CDF of per-AS IPv6 byte fractions for common ASes.
pub fn fig3(s: &mut Session) -> Report {
    let mut r = Report::new("fig3");
    r.heading("Fig 3 — CDF of per-AS IPv6 byte fractions (ASes at ≥3 residences)");
    let fr = s.as_rows();
    let common = common_ases(fr, 3);
    r.line(format!(
        "{} ASes observed at 3+ residences (paper: 35)",
        common.len()
    ));
    for key in ['A', 'B', 'C', 'D', 'E'] {
        let fractions: Vec<f64> = fr
            .iter()
            .filter(|f| f.residence == key && common.iter().any(|(asn, ..)| *asn == f.asn))
            .map(|f| f.fraction)
            .collect();
        if fractions.is_empty() {
            continue;
        }
        let zero_share =
            fractions.iter().filter(|&&f| f == 0.0).count() as f64 / fractions.len() as f64;
        let max = fractions.iter().cloned().fold(0.0f64, f64::max);
        r.raw(render_cdf(
            &format!("residence {key}"),
            &Ecdf::new(fractions),
            5,
        ));
        r.line(format!(
            "    v4-only ASes: {:.0}%  max AS fraction: {max:.2}",
            zero_share * 100.0
        ));
    }
    r.line("(paper: ≥25% of ASes are IPv4-only everywhere; residence C capped near 0.4)");
    r
}

/// Fig 4: per-category AS boxplots.
pub fn fig4(s: &mut Session) -> Report {
    let mut r = Report::new("fig4");
    r.heading("Fig 4 — IPv6 byte fraction by AS, grouped by category");
    let fr = s.as_rows();
    let common = common_ases(fr, 3);
    for cat in bgpsim::AsCategory::all() {
        let mut rows: Vec<(String, BoxplotStats)> = common
            .iter()
            .filter(|(_, _, c, _)| *c == cat)
            .filter_map(|(asn, name, _, fracs)| {
                BoxplotStats::of(fracs).map(|b| (format!("{name} ({asn})"), b))
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        rows.sort_by(|a, b| b.1.median.partial_cmp(&a.1.median).expect("finite"));
        r.line(format!("-- {} --", cat.label()));
        for (label, b) in rows {
            r.raw(render_box_row(&label, &b, 0.0, 1.0));
        }
    }
    r.line("(paper: ISP medians ≤ 0.2; Web/Social medians > 0.9 except ByteDance)");
    r
}

/// Fig 16 (appendix): daily fraction CDFs at residences D and E.
pub fn fig16(s: &mut Session) -> Report {
    let mut r = Report::new("fig16");
    r.heading("Fig 16 — daily IPv6 fraction CDFs (residences D, E)");
    let stats = s.client_analyses();
    for key in ['D', 'E'] {
        let a = stats.iter().find(|a| a.key == key).expect("residence");
        let ext_b: Vec<f64> = a.daily.iter().filter_map(|d| d.ext_bytes).collect();
        let ext_f: Vec<f64> = a.daily.iter().filter_map(|d| d.ext_flows).collect();
        r.raw(render_cdf(
            &format!("{key} external bytes"),
            &Ecdf::new(ext_b),
            5,
        ));
        r.raw(render_cdf(
            &format!("{key} external flows"),
            &Ecdf::new(ext_f),
            5,
        ));
        r.line(format!(
            "residence {key}: overall {:.3} vs daily mean {:.3} (sd {:.3}) — \
             paper E: 0.066 overall vs 0.459 daily mean",
            a.external.v6_byte_fraction, a.external.daily_byte_mean, a.external.daily_byte_sd
        ));
    }
    r
}

/// Fig 17 (appendix): per-domain IPv6 fraction boxplots via reverse DNS.
pub fn fig17(s: &mut Session) -> Report {
    let mut r = Report::new("fig17");
    r.heading("Fig 17 — per-domain (eTLD+1) IPv6 fractions via reverse DNS");
    let domains = s.domain_rows();
    r.line(format!(
        "{} domains at 3+ residences above the volume floor",
        domains.len()
    ));
    let mut rows: Vec<(String, BoxplotStats)> = domains
        .iter()
        .filter_map(|(d, fracs)| BoxplotStats::of(fracs).map(|b| (d.to_string(), b)))
        .collect();
    rows.sort_by(|a, b| a.1.median.partial_cmp(&b.1.median).expect("finite"));
    for (label, b) in &rows {
        r.raw(render_box_row(label, b, 0.0, 1.0));
    }
    let zero: Vec<&str> = rows
        .iter()
        .filter(|(_, b)| b.median == 0.0 && b.q3 == 0.0)
        .map(|(l, _)| l.as_str())
        .collect();
    r.line(format!(
        "IPv4-only laggards: {} (paper names zoom.us, github.com, usc.edu, justin.tv, wp.com)",
        zero.join(", ")
    ));
    r
}
