//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--sites N] [--seed S] [--days D] [--full]
//!                    [--threads N] [--day-threads N]
//!
//! experiments:
//!   table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!   fig11 fig12 table2 table3 fig13 fig14 fig15 fig16 fig17 fig18
//!   ablation-mainpage ablation-firstparty ablation-he ablation-policy
//!   transition nat64-exhaustion cgn-sweep  (transition-technology scenarios)
//!   as-fractions (per-AS flow fractions over a ~100k-AS long-tail RIB)
//!   all          (everything above, in paper order)
//! ```
//!
//! Every experiment prints the paper's reported value next to the measured
//! reproduction and the relative error. Defaults run a 20k-site world
//! (1/5th of the paper's 100k) and scale rank-dependent thresholds
//! accordingly; `--full` switches to the paper's full scale.
//!
//! `--threads` fans residences (and ISPs in sweeps) over worker threads;
//! `--day-threads` additionally fans the days inside one residence. Output
//! is byte-identical at any combination — the flags only trade memory
//! (day buffers) for wall-clock.

mod asfrac_exps;
mod client_exps;
mod cloud_exps;
mod context;
mod export;
mod server_exps;
mod transition_exps;

use context::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut sites = 20_000usize;
    let mut seed = 0x1f6_ad0bu64;
    let mut days = 273u32;
    let mut threads: Option<usize> = None;
    let mut day_threads: Option<usize> = None;
    let mut positional_seen = false;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sites" => {
                sites = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sites needs a number"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--days" => {
                days = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--days needs a number"));
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs a number")),
                );
            }
            "--day-threads" => {
                day_threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--day-threads needs a number")),
                );
            }
            "--full" => sites = 100_000,
            "--help" | "-h" => {
                usage("");
            }
            other if !other.starts_with('-') && !positional_seen => {
                experiment = other.to_string();
                positional_seen = true;
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    let mut ctx = Ctx::new(sites, seed, days);
    ctx.threads = threads;
    ctx.day_threads = day_threads;
    run(&mut ctx, &experiment);
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: repro <experiment> [--sites N] [--seed S] [--days D] [--full]\n\
         \x20                      [--threads N] [--day-threads N]\n\
         experiments: table1 fig1..fig18 table2 table3 export robustness \
         ablation-mainpage ablation-firstparty ablation-he ablation-policy \
         transition nat64-exhaustion cgn-sweep as-fractions all\n\
         --threads fans residences/ISPs over N workers, --day-threads fans\n\
         days inside a residence; output is identical at any combination"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn run(ctx: &mut Ctx, experiment: &str) {
    match experiment {
        "table1" => client_exps::table1(ctx),
        "fig1" => client_exps::fig1(ctx),
        "fig2" => client_exps::fig2(ctx),
        "fig3" => client_exps::fig3(ctx),
        "fig4" => client_exps::fig4(ctx),
        "fig13" => client_exps::fig13(ctx),
        "fig14" => client_exps::fig14(ctx),
        "fig15" => client_exps::fig15(ctx),
        "fig16" => client_exps::fig16(ctx),
        "fig17" => client_exps::fig17(ctx),
        "fig5" => server_exps::fig5(ctx),
        "fig6" => server_exps::fig6(ctx),
        "fig7" => server_exps::fig7(ctx),
        "fig8" => server_exps::fig8(ctx),
        "fig9" => server_exps::fig9(ctx),
        "fig10" => server_exps::fig10(ctx),
        "fig18" => server_exps::fig18(ctx),
        "ablation-mainpage" => server_exps::ablation_mainpage(ctx),
        "ablation-firstparty" => server_exps::ablation_firstparty(ctx),
        "ablation-he" => server_exps::ablation_he(ctx),
        "fig11" => cloud_exps::fig11(ctx),
        "fig12" => cloud_exps::fig12(ctx),
        "table2" => cloud_exps::table2(ctx),
        "table3" => cloud_exps::table3(ctx),
        "ablation-policy" => cloud_exps::ablation_policy(ctx),
        "as-fractions" => asfrac_exps::as_fractions(ctx),
        "transition" => transition_exps::transition_report(ctx),
        "nat64-exhaustion" => transition_exps::nat64_exhaustion(ctx),
        "cgn-sweep" => transition_exps::cgn_sweep(ctx),
        "robustness" => {
            let sites = ctx.world.web.sites.len().min(5_000);
            server_exps::robustness(sites, ctx.world.config.seed);
        }
        "export" => {
            let dir = std::path::PathBuf::from("datasets");
            export::export_all(ctx, &dir).expect("dataset export");
        }
        "all" => {
            for e in [
                "table1",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "table2",
                "table3",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "ablation-mainpage",
                "ablation-firstparty",
                "ablation-he",
                "ablation-policy",
                "transition",
                "nat64-exhaustion",
                "cgn-sweep",
                "as-fractions",
            ] {
                run(ctx, e);
            }
        }
        other => usage(&format!("unknown experiment: {other}")),
    }
}
