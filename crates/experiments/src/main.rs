//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <scenario> [--sites N] [--seed S] [--days D] [--full] [--json]
//!                  [--threads N] [--day-threads N] [--spill DIR]
//! repro list       # enumerate the scenario registry (name<TAB>description)
//! repro all        # every registered scenario, in paper order
//! repro export     # write every exportable dataset as JSON
//! ```
//!
//! The binary is a thin CLI over the `experiments` library: scenarios come
//! from [`experiments::registry`], run against one shared
//! [`experiments::Session`], and return structured
//! [`experiments::Report`]s — rendered as text by default, emitted as JSON
//! with `--json`.
//!
//! Every scenario prints the paper's reported value next to the measured
//! reproduction and the relative error. Defaults run a 20k-site world
//! (1/5th of the paper's 100k) and scale rank-dependent thresholds
//! accordingly; `--full` switches to the paper's full scale.
//!
//! `--threads` fans residences (and ISPs in sweeps) over worker threads;
//! `--day-threads` additionally fans the days inside one residence. Output
//! is byte-identical at any combination — the flags only trade memory
//! (day buffers) for wall-clock. Numeric flags accept both `--sites N`
//! and `--sites=N`.

use experiments::{append_metrics, export_all, find, registry, Report, RunConfig, Session};

mod bench_snapshot;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut config = RunConfig::default();
    let mut json = false;
    let mut metrics = false;
    let mut metrics_json = false;
    let mut bench_check = false;
    let mut positional_seen = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        // One parsing path for every numeric flag: `--flag N` and
        // `--flag=N` are both accepted. The `=` split only applies to
        // flags — a positional like `list=x` must stay an error, and
        // value-less flags reject an inline value instead of dropping it.
        let (flag, inline) = match (arg.starts_with("--"), arg.split_once('=')) {
            (true, Some((flag, value))) => (flag, Some(value)),
            _ => (arg.as_str(), None),
        };
        let no_value = |flag: &str| {
            if inline.is_some() {
                usage(&format!("{flag} takes no value"));
            }
        };
        match flag {
            "--sites" => config.sites = num_value(flag, inline, &mut it),
            "--seed" => config.seed = num_value(flag, inline, &mut it),
            "--days" => config.days = num_value(flag, inline, &mut it),
            "--threads" => config.threads = Some(num_value(flag, inline, &mut it)),
            "--day-threads" => config.day_threads = Some(num_value(flag, inline, &mut it)),
            "--spill" => config.spill = Some(str_value(flag, inline, &mut it).into()),
            "--full" => {
                no_value("--full");
                config = config.full();
            }
            "--json" => {
                no_value("--json");
                json = true;
            }
            "--metrics" => {
                no_value("--metrics");
                metrics = true;
            }
            "--metrics-json" => {
                no_value("--metrics-json");
                metrics_json = true;
            }
            // Differential escape hatch: run on the radix trie instead of
            // the compiled multibit engine. Output must be byte-identical —
            // this flag exists so that claim stays checkable from the CLI.
            "--no-compiled-lpm" => {
                no_value("--no-compiled-lpm");
                config.compiled_lpm = false;
            }
            "--check" => {
                no_value("--check");
                bench_check = true;
            }
            "--help" | "-h" => usage(""),
            other if !other.starts_with('-') && !positional_seen => {
                experiment = other.to_string();
                positional_seen = true;
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    config.metrics = config.metrics || metrics || metrics_json;

    match experiment.as_str() {
        // `list` never generates a world: the registry is static.
        "list" => {
            for scenario in registry() {
                println!("{}\t{}", scenario.name(), scenario.describe());
            }
        }
        // Standing perf probes; appends snapshots to BENCH_*.json unless
        // `--check` (validate shapes only).
        "bench-snapshot" => bench_snapshot::run(bench_check),
        "export" => {
            let mut session = Session::new(config);
            let dir = std::path::PathBuf::from("datasets");
            export_all(&mut session, &dir).expect("dataset export");
        }
        "all" => {
            let mut session = Session::new(config);
            // Text mode renders and drops each report as it completes;
            // only --json (one array of every report) needs them retained.
            let mut reports: Vec<Report> = Vec::new();
            // One panicking scenario must not cost the rest of the run:
            // catch it, keep going, and report every failure at the end
            // (the session is only reused on success — a scenario that
            // panicked mid-cache-fill could leave it torn).
            let mut failed: Vec<&str> = Vec::new();
            for scenario in registry().iter().filter(|s| s.in_all()) {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _span = obs::span!(scenario.name());
                    scenario.run(&mut session)
                }));
                match result {
                    Ok(report) => {
                        if json {
                            reports.push(report);
                        } else {
                            print!("{}", report.render());
                        }
                    }
                    Err(_) => {
                        obs::error!("[repro] scenario {} panicked; continuing", scenario.name());
                        failed.push(scenario.name());
                    }
                }
            }
            // One cumulative Telemetry report for the whole sweep — the
            // shared session builds (and counts) each artifact once.
            if metrics_json {
                println!("{}", metrics_to_json(&session));
            } else if metrics {
                let mut telemetry = Report::new("telemetry");
                append_metrics(&mut telemetry, &session.metrics());
                if json {
                    reports.push(telemetry);
                } else {
                    print!("{}", telemetry.render());
                }
            }
            if json && !metrics_json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&reports).expect("serializable")
                );
            }
            if !failed.is_empty() {
                obs::error!(
                    "[repro] {} scenario(s) failed: {}",
                    failed.len(),
                    failed.join(", ")
                );
                std::process::exit(1);
            }
        }
        name => match find(name) {
            Some(scenario) => {
                let mut session = Session::new(config);
                let mut report = {
                    let _span = obs::span!(scenario.name());
                    scenario.run(&mut session)
                };
                if metrics {
                    append_metrics(&mut report, &session.metrics());
                }
                if metrics_json {
                    // Machine-readable metrics only: the one JSON document
                    // on stdout is the raw MetricsReport.
                    println!("{}", metrics_to_json(&session));
                } else if json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render());
                }
            }
            None => unknown_experiment(name),
        },
    }
}

/// The session's telemetry snapshot as pretty-printed JSON (`--metrics-json`).
fn metrics_to_json(session: &Session) -> String {
    serde_json::to_string_pretty(&session.metrics()).expect("metrics serialize")
}

/// Parse one numeric flag value, taken inline (`--flag=N`) or from the next
/// argument (`--flag N`).
fn num_value<'a, T: std::str::FromStr>(
    flag: &str,
    inline: Option<&str>,
    it: &mut impl Iterator<Item = &'a String>,
) -> T {
    inline
        .map(str::to_string)
        .or_else(|| it.next().cloned())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

/// Take one string flag value, inline (`--flag=V`) or from the next
/// argument (`--flag V`).
fn str_value<'a>(
    flag: &str,
    inline: Option<&str>,
    it: &mut impl Iterator<Item = &'a String>,
) -> String {
    inline
        .map(str::to_string)
        .or_else(|| it.next().cloned())
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        obs::error!("error: {msg}\n");
    }
    obs::error!(
        "usage: repro <scenario> [--sites N] [--seed S] [--days D] [--full] [--json]\n\
         \x20                    [--threads N] [--day-threads N] [--metrics] [--metrics-json]\n\
         \x20                    [--no-compiled-lpm] [--spill DIR]\n\
         \x20      repro list | all | export | bench-snapshot [--check]\n\
         `repro list` prints every registered scenario; `all` runs them in\n\
         paper order; `export` writes the JSON datasets; `bench-snapshot`\n\
         runs the standing perf probes and appends timestamped snapshots to\n\
         BENCH_*.json (--check validates the files without writing). Numeric\n\
         flags accept `--flag N` and `--flag=N`. --threads fans\n\
         residences/ISPs over N workers, --day-threads fans days inside a\n\
         residence; output is identical at any combination. --json emits the\n\
         structured report. --metrics appends a telemetry section (stage\n\
         spans, pipeline counters, flow-shape histograms); --metrics-json\n\
         prints only the raw metrics snapshot as JSON. --no-compiled-lpm\n\
         runs RIB lookups on the radix trie instead of the compiled multibit\n\
         engine (output is byte-identical; differential debugging only).\n\
         --spill DIR streams flow records through sorted columnar day-parts\n\
         under DIR instead of memory; replays are digest-verified and\n\
         reports stay byte-identical. REPRO_LOG=off|error|\n\
         warn|info|debug|trace filters progress diagnostics on stderr."
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// An unknown scenario name prints the registry so the valid names are
/// always discoverable from the error itself.
fn unknown_experiment(name: &str) -> ! {
    obs::error!("error: unknown experiment: {name}\n\nregistered scenarios:");
    for scenario in registry() {
        obs::error!("  {:<20} {}", scenario.name(), scenario.describe());
    }
    obs::error!("  {:<20} every scenario above, in paper order", "all");
    obs::error!("  {:<20} print the scenario registry", "list");
    obs::error!("  {:<20} write every exportable dataset as JSON", "export");
    obs::error!(
        "  {:<20} run/append the standing perf probes",
        "bench-snapshot"
    );
    std::process::exit(2);
}
