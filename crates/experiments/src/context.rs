//! Shared experiment context: the world, cached crawls and traffic runs.

use crawlsim::{crawl_epoch, CrawlConfig, CrawlReport};
use trafficgen::{synthesize_all, ResidenceDataset, TrafficConfig};
use worldgen::{World, WorldConfig};

/// Lazily-built shared state for all experiments of one invocation.
pub struct Ctx {
    /// The synthetic Internet.
    pub world: World,
    /// Requested traffic duration (days).
    pub days: u32,
    crawls: Vec<Option<CrawlReport>>,
    crawl_mainpage_only: Option<CrawlReport>,
    traffic: Option<Vec<ResidenceDataset>>,
    traffic_dense: Option<Vec<ResidenceDataset>>,
}

impl Ctx {
    /// Generate the world (this is the expensive step, done eagerly so the
    /// user sees progress immediately).
    pub fn new(sites: usize, seed: u64, days: u32) -> Ctx {
        eprintln!("[repro] generating world: {sites} sites, seed {seed:#x} ...");
        let t0 = std::time::Instant::now();
        let config = WorldConfig {
            seed,
            num_sites: sites,
            num_epochs: 3,
            calibration: worldgen::Calibration::default(),
        };
        let world = World::generate(&config);
        eprintln!(
            "[repro] world ready in {:.1}s ({} third-party domains, {} zone names in Jul 2025)",
            t0.elapsed().as_secs_f64(),
            world.web.third_parties.len(),
            world.zone(world.latest_epoch()).name_count(),
        );
        let epochs = world.web.epochs.len();
        Ctx {
            world,
            days,
            crawls: (0..epochs).map(|_| None).collect(),
            crawl_mainpage_only: None,
            traffic: None,
            traffic_dense: None,
        }
    }

    /// The scale factor relative to the paper's 100k-site crawl; used to
    /// scale absolute thresholds like "span ≥ 100".
    pub fn site_scale(&self) -> f64 {
        self.world.web.sites.len() as f64 / 100_000.0
    }

    /// Crawl (cached) of one epoch.
    pub fn crawl(&mut self, epoch: usize) -> &CrawlReport {
        if self.crawls[epoch].is_none() {
            eprintln!("[repro] crawling epoch {epoch} ...");
            let t0 = std::time::Instant::now();
            let report = crawl_epoch(&self.world, epoch, &CrawlConfig::default());
            eprintln!("[repro] crawl done in {:.1}s", t0.elapsed().as_secs_f64());
            self.crawls[epoch] = Some(report);
        }
        self.crawls[epoch].as_ref().expect("just filled")
    }

    /// Crawl of the latest epoch (Jul 2025).
    pub fn latest_crawl(&mut self) -> &CrawlReport {
        let e = self.world.latest_epoch();
        self.crawl(e)
    }

    /// Shared-reference accessor for an already-run crawl (panics if the
    /// epoch has not been crawled yet — call [`Ctx::crawl`] first). Exists
    /// so call sites can borrow the crawl and `world` fields together.
    pub fn crawl_ref(&self, epoch: usize) -> &CrawlReport {
        self.crawls[epoch]
            .as_ref()
            .expect("crawl(epoch) must run before crawl_ref(epoch)")
    }

    /// Shared-reference accessor for already-synthesized traffic.
    pub fn traffic_ref(&self) -> &[ResidenceDataset] {
        self.traffic
            .as_ref()
            .expect("traffic() must run before traffic_ref()")
    }

    /// Main-page-only ablation crawl of the latest epoch.
    pub fn mainpage_crawl(&mut self) -> &CrawlReport {
        if self.crawl_mainpage_only.is_none() {
            eprintln!("[repro] crawling latest epoch (main-page-only ablation) ...");
            let cfg = CrawlConfig {
                click_links: false,
                ..CrawlConfig::default()
            };
            let report = crawl_epoch(&self.world, self.world.latest_epoch(), &cfg);
            self.crawl_mainpage_only = Some(report);
        }
        self.crawl_mainpage_only.as_ref().expect("just filled")
    }

    /// The nine-month traffic run at 1/1000 sampling (Table 1, Fig 1, ...).
    pub fn traffic(&mut self) -> &[ResidenceDataset] {
        if self.traffic.is_none() {
            eprintln!(
                "[repro] synthesizing {}-day traffic for 5 residences ...",
                self.days
            );
            let t0 = std::time::Instant::now();
            let cfg = TrafficConfig {
                num_days: self.days,
                ..TrafficConfig::default()
            };
            let ds = synthesize_all(&self.world, &cfg);
            let flows: usize = ds.iter().map(|d| d.flows.len()).sum();
            eprintln!(
                "[repro] traffic done in {:.1}s ({flows} sampled flow records)",
                t0.elapsed().as_secs_f64()
            );
            self.traffic = Some(ds);
        }
        self.traffic.as_ref().expect("just filled")
    }

    /// A dense (1/20 sampling) shorter traffic run for the hourly MSTL
    /// figures, which need many flows per hour.
    pub fn traffic_dense(&mut self) -> &[ResidenceDataset] {
        if self.traffic_dense.is_none() {
            eprintln!("[repro] synthesizing dense traffic (hourly analyses) ...");
            let cfg = TrafficConfig {
                num_days: self.days.min(63),
                scale: 1.0 / 20.0,
                ..TrafficConfig::default()
            };
            self.traffic_dense = Some(synthesize_all(&self.world, &cfg));
        }
        self.traffic_dense.as_ref().expect("just filled")
    }
}
