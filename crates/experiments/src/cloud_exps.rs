//! Cloud scenarios: Fig 11, Fig 12, Table 2, Table 3 and the policy
//! ablation.

use crate::report::Report;
use crate::session::Session;
use cloudmodel::catalog::{paper_orgs, ServiceCatalog};
use ipv6view_core::cloud::{
    default_groups, ease_adoption_correlation, hosted_fqdns, multicloud_tenant_count,
    org_readiness, pairwise_comparison, service_adoption, HostedFqdn,
};
use ipv6view_core::report::TextTable;

fn fqdns(s: &mut Session) -> Vec<HostedFqdn> {
    // Borrow discipline: populate the crawl cache first (needs &mut), then
    // borrow the report and the routing tables together.
    let e = s.world.latest_epoch();
    s.crawl(e);
    hosted_fqdns(s.crawl_ref(e), &s.world.rib, &s.world.registry)
}

/// Fig 11: readiness breakdown of the top 15 clouds.
pub fn fig11(s: &mut Session) -> Report {
    let mut r = Report::new("fig11");
    r.heading("Fig 11 — IPv6 readiness of the top 15 clouds");
    let hosted = fqdns(s);
    r.line(format!(
        "{} unique FQDNs attributed (paper: 265,248 at 100k scale)",
        hosted.len()
    ));
    let orgs = org_readiness(&hosted);
    let catalog = paper_orgs();
    let mut t = TextTable::new(vec![
        "Cloud",
        "domains",
        "v4-only %",
        "v6-full %",
        "v6-only %",
        "paper v6-full %",
    ]);
    for paper_org in &catalog {
        let Some(o) = orgs.iter().find(|o| o.org == paper_org.display) else {
            continue;
        };
        t.row(vec![
            o.org.clone(),
            o.total.to_string(),
            format!("{:.1}", o.pct(o.v4_only)),
            format!("{:.1}", o.pct(o.v6_full)),
            format!("{:.1}", o.pct(o.v6_only)),
            format!("{:.1}", paper_org.paper_pct_v6_full),
        ]);
    }
    r.table(t);
    for key in ["Cloudflare, Inc.", "Amazon.com, Inc.", "Google LLC"] {
        let paper_org = catalog
            .iter()
            .find(|o| o.display == key)
            .expect("in catalog");
        if let Some(o) = orgs.iter().find(|o| o.org == key) {
            r.compare(
                format!("{key} v6-full %"),
                paper_org.paper_pct_v6_full,
                o.pct(o.v6_full),
            );
        }
    }
    r
}

/// Table 3 (appendix F): full per-cloud breakdown including the overall row.
pub fn table3(s: &mut Session) -> Report {
    let mut r = Report::new("table3");
    r.heading("Table 3 — per-cloud domain counts (appendix F)");
    let scale = s.site_scale();
    let hosted = fqdns(s);
    let orgs = org_readiness(&hosted);
    let catalog = paper_orgs();
    let (mut tot, mut v4, mut full, mut v6o) = (0usize, 0usize, 0usize, 0usize);
    for o in &orgs {
        tot += o.total;
        v4 += o.v4_only;
        full += o.v6_full;
        v6o += o.v6_only;
    }
    let mut t = TextTable::new(vec![
        "Cloud",
        "meas domains",
        "paper (scaled)",
        "v4only %",
        "v6full %",
        "v6only %",
    ]);
    t.row(vec![
        "Overall".to_string(),
        tot.to_string(),
        format!("{:.0}", 272_964.0 * scale),
        format!("{:.1}", 100.0 * v4 as f64 / tot as f64),
        format!("{:.1}", 100.0 * full as f64 / tot as f64),
        format!("{:.1}", 100.0 * v6o as f64 / tot as f64),
    ]);
    for paper_org in &catalog {
        let Some(o) = orgs.iter().find(|o| o.org == paper_org.display) else {
            continue;
        };
        t.row(vec![
            o.org.clone(),
            o.total.to_string(),
            format!("{:.0}", paper_org.paper_domains as f64 * scale),
            format!("{:.1}", o.pct(o.v4_only)),
            format!("{:.1}", o.pct(o.v6_full)),
            format!("{:.1}", o.pct(o.v6_only)),
        ]);
    }
    r.table(t);
    r.compare("overall v6-full %", 41.9, 100.0 * full as f64 / tot as f64);
    r.compare("overall v6-only %", 1.7, 100.0 * v6o as f64 / tot as f64);
    r
}

/// Fig 12: pairwise Wilcoxon comparison of clouds over multi-cloud tenants.
pub fn fig12(s: &mut Session) -> Report {
    let mut r = Report::new("fig12");
    r.heading("Fig 12 — pairwise cloud comparison (Wilcoxon, Holm-Bonferroni)");
    let scale = s.site_scale();
    let hosted = fqdns(s);
    let groups = default_groups();
    let tenants = multicloud_tenant_count(&hosted, &s.world.psl, &groups);
    r.compare(
        "multi-cloud tenants (scaled)",
        21_314.0 * scale,
        tenants as f64,
    );
    let m = pairwise_comparison(&hosted, &s.world.psl, &groups, 2);
    r.line(format!(
        "{} comparable pairs, {} with too few shared tenants (paper: 67 of 78)",
        m.cells.len(),
        m.insufficient_pairs
    ));
    r.line(format!(
        "group ranking (most IPv6-leading first): {}",
        m.groups.join(" > ")
    ));
    let mut t = TextTable::new(vec![
        "cloud A", "cloud B", "n", "effect r", "p (raw)", "signif",
    ]);
    let mut cells = m.cells.clone();
    cells.sort_by(|a, b| b.effect.abs().partial_cmp(&a.effect.abs()).expect("finite"));
    for c in cells.iter().take(20) {
        t.row(vec![
            c.a.clone(),
            c.b.clone(),
            c.n.to_string(),
            format!("{:+.2}", c.effect),
            format!("{:.4}", c.p_raw),
            if c.significant { "*" } else { "" }.to_string(),
        ]);
    }
    r.table(t);
    r.line(
        "(paper: Cloudflare/Akamai groups lead with r ≈ +0.9 vs laggards; \
         Google/Amazon/Microsoft mid-field; DigitalOcean & co at the bottom)",
    );
    r
}

/// Table 2: service-level adoption via CNAME identification.
pub fn table2(s: &mut Session) -> Report {
    let mut r = Report::new("table2");
    r.heading("Table 2 — IPv6 adoption by cloud service");
    let hosted = fqdns(s);
    let catalog = ServiceCatalog::paper();
    let services = service_adoption(&hosted, &catalog);
    let mut t = TextTable::new(vec![
        "Provider", "Service", "Policy", "ready", "total", "meas %", "paper %",
    ]);
    for svc in &services {
        t.row(vec![
            svc.provider.clone(),
            svc.service.clone(),
            svc.policy.label().to_string(),
            svc.ready.to_string(),
            svc.total.to_string(),
            format!("{:.1}", 100.0 * svc.adoption()),
            format!("{:.1}", 100.0 * svc.paper_adoption),
        ]);
    }
    r.table(t);
    if let Some(rho) = ease_adoption_correlation(&services) {
        r.compare("ease↔adoption Spearman ρ (paper: positive)", 0.8, rho);
    }
    for (service, paper_pct) in [("Amazon S3", 0.4), ("Amazon CloudFront CDN", 71.1)] {
        if let Some(svc) = services.iter().find(|x| x.service == service) {
            r.compare(
                format!("{service} adoption %"),
                paper_pct,
                100.0 * svc.adoption(),
            );
        }
    }
    r
}

/// Ablation: force default-on everywhere (§5.3's recommendation).
pub fn ablation_policy(s: &mut Session) -> Report {
    let mut r = Report::new("ablation-policy");
    r.heading("Ablation — §5.3 recommendation: default-on for every service");
    // Re-measure Table 2 from the real crawl, then model the counterfactual:
    // every service's tenants adopt at the default-on empirical rate (the
    // rate measured for services that are default-on today).
    let hosted = fqdns(s);
    let catalog = ServiceCatalog::paper();
    let services = service_adoption(&hosted, &catalog);
    let default_on_rates: Vec<f64> = services
        .iter()
        .filter(|svc| {
            matches!(
                svc.policy,
                cloudmodel::Ipv6Policy::AlwaysOn
                    | cloudmodel::Ipv6Policy::DefaultOn
                    | cloudmodel::Ipv6Policy::DefaultOnOptOut
            )
        })
        .map(|svc| svc.adoption())
        .collect();
    let default_on_mean = netstats::mean(&default_on_rates).unwrap_or(0.7);
    let current_ready: usize = services.iter().map(|svc| svc.ready).sum();
    let total: usize = services.iter().map(|svc| svc.total).sum();
    let counterfactual_ready: f64 = services
        .iter()
        .map(|svc| {
            let rate = svc.adoption().max(default_on_mean);
            rate * svc.total as f64
        })
        .sum();
    r.line(format!("service-attached domains:         {total}"));
    r.line(format!(
        "IPv6-ready today:                 {current_ready} ({:.1}%)",
        100.0 * current_ready as f64 / total as f64
    ));
    r.line(format!(
        "IPv6-ready if all default-on:     {counterfactual_ready:.0} ({:.1}%)",
        100.0 * counterfactual_ready / total as f64
    ));
    r.line(format!(
        "(mean adoption across default-on services today: {:.1}% — the paper argues\n\
         opt-in and code-change policies cap adoption at single digits)",
        100.0 * default_on_mean
    ));
    r
}
