//! # `experiments` — the library-first experiment engine behind `repro`.
//!
//! This crate packages the paper's methodology — one synthetic Internet
//! interrogated from client, server, cloud and transition-technology
//! vantage points — as an embeddable library. The `repro` binary is a thin
//! CLI over three public pieces:
//!
//! * [`Session`] — the shared state scenarios run in: a world generated
//!   from a typed [`RunConfig`] (sites / seed / days / thread fan-out),
//!   plus lazily-built caches of the expensive derived artifacts (crawls,
//!   materialized traffic, streaming aggregate passes). A sequence of
//!   scenarios pays for each artifact once.
//! * [`Scenario`] — a named, describable experiment:
//!   `run(&mut Session) -> Report`. The static [`registry`] holds every
//!   built-in scenario in paper order and is the single source of truth
//!   for dispatch, `repro list`, `repro all` and the CI smoke loop.
//! * [`Report`] — the structured result: typed elements (headings, tables,
//!   paper-vs-measured comparisons, exportable datasets) consumed by all
//!   three output paths — stdout rendering ([`Report::render`]), `--json`
//!   (`Report` is `Serialize`), and `repro export`
//!   ([`export::export_all`] writes the [`Element::Dataset`] members).
//!
//! ## Embedding
//!
//! ```
//! use experiments::{find, registry, RunConfig, Session};
//!
//! // Scenarios are values: enumerate them, or look one up by name.
//! assert!(registry().len() >= 30);
//! let scenario = find("fig6").expect("registered");
//!
//! // A tiny world; scale the same code up with `.full()`.
//! let mut session = Session::new(RunConfig::default().sites(200).seed(7).days(2));
//! let report = scenario.run(&mut session);
//! assert_eq!(report.scenario, "fig6");
//! assert!(!report.render().is_empty());
//! ```
//!
//! Custom experiments implement [`Scenario`] and drive the same `Session`;
//! everything the built-ins use ([`Session::crawl`],
//! [`Session::client_analyses`], [`Session::traffic_config`], …) is public.

#![forbid(unsafe_code)]

pub mod asfrac_exps;
pub mod client_exps;
pub mod cloud_exps;
pub mod export;
pub mod fault_exps;
pub mod millsubs_exps;
pub mod report;
pub mod scenario;
pub mod server_exps;
pub mod session;
pub mod telemetry;
pub mod transition_exps;

pub use export::export_all;
pub use report::{Comparison, Dataset, Element, Report};
pub use scenario::{find, registry, Scenario};
pub use session::{RunConfig, Session, StreamedClient};
pub use telemetry::append_metrics;
