//! Rendering the telemetry snapshot as [`Report`] elements.
//!
//! `repro <scenario> --metrics` appends this section to the scenario's
//! report, so the stage table rides the same three output paths as every
//! other element: stdout text, `--json` (the `metrics.json` dataset carries
//! the raw [`obs::MetricsReport`]), and `repro export`.

use crate::report::Report;
use ipv6view_core::report::TextTable;

/// Append a "Telemetry" section — stage span table, counter table, and
/// histogram summaries — plus a `metrics.json` dataset to `report`.
/// Appends nothing but the heading and a note when the snapshot is empty
/// (plane disabled), so the section is always visibly present.
pub fn append_metrics(report: &mut Report, metrics: &obs::MetricsReport) {
    report.heading("Telemetry");
    if metrics.is_empty() {
        report.line("telemetry plane disabled: nothing recorded");
        return;
    }
    if !metrics.spans.is_empty() {
        let mut t = TextTable::new(vec![
            "stage", "count", "total_ms", "mean_ms", "min_ms", "max_ms",
        ]);
        let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
        for s in &metrics.spans {
            t.row(vec![
                s.path.clone(),
                s.count.to_string(),
                ms(s.total_ns),
                ms(s.total_ns / s.count.max(1)),
                ms(s.min_ns),
                ms(s.max_ns),
            ]);
        }
        report.table(t);
    }
    if !metrics.counters.is_empty() || !metrics.gauges.is_empty() {
        let mut t = TextTable::new(vec!["counter", "value"]);
        for c in &metrics.counters {
            t.row(vec![c.name.clone(), c.value.to_string()]);
        }
        for g in &metrics.gauges {
            t.row(vec![format!("{} (max)", g.name), g.value.to_string()]);
        }
        report.table(t);
    }
    if !metrics.histograms.is_empty() {
        let mut t = TextTable::new(vec![
            "distribution",
            "count",
            "p50",
            "p90",
            "p99",
            "min",
            "max",
        ]);
        for h in &metrics.histograms {
            t.row(vec![
                h.name.clone(),
                h.count.to_string(),
                h.p50.to_string(),
                h.p90.to_string(),
                h.p99.to_string(),
                h.min.to_string(),
                h.max.to_string(),
            ]);
        }
        report.table(t);
    }
    report.dataset(
        "metrics.json",
        serde_json::to_string_pretty(metrics).expect("metrics serialize"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_a_note() {
        let mut r = Report::new("demo");
        let empty = obs::MetricsReport {
            spans: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        append_metrics(&mut r, &empty);
        let text = r.render();
        assert!(text.contains("=== Telemetry ==="));
        assert!(text.contains("nothing recorded"));
        assert_eq!(r.datasets().count(), 0);
    }

    #[test]
    fn populated_snapshot_renders_tables_and_dataset() {
        let mut r = Report::new("demo");
        let m = obs::MetricsReport {
            spans: vec![obs::SpanStat {
                path: "traffic/synthesize".into(),
                count: 5,
                total_ns: 10_000_000,
                min_ns: 1_000_000,
                max_ns: 4_000_000,
            }],
            counters: vec![obs::CounterStat {
                name: "synth.flows_emitted".into(),
                value: 1234,
            }],
            gauges: vec![obs::GaugeStat {
                name: "gateway.pool_peak_active".into(),
                value: 17,
            }],
            histograms: vec![obs::HistStat {
                name: "synth.flow_bytes".into(),
                count: 1234,
                sum: 99_000,
                min: 40,
                max: 9_000,
                p50: 300,
                p90: 2_000,
                p99: 8_000,
            }],
        };
        append_metrics(&mut r, &m);
        let text = r.render();
        assert!(text.contains("traffic/synthesize"));
        assert!(text.contains("synth.flows_emitted"));
        assert!(text.contains("gateway.pool_peak_active (max)"));
        assert!(text.contains("synth.flow_bytes"));
        let ds = r.datasets().next().expect("metrics.json attached");
        assert_eq!(ds.name, "metrics.json");
        let v: serde_json::Value = serde_json::from_str(&ds.json).expect("valid JSON");
        let counter = v
            .get("counters")
            .and_then(|c| c.get("0"))
            .and_then(|c| c.get("value"))
            .and_then(|c| c.as_u64());
        assert_eq!(counter, Some(1234), "raw snapshot survives the round-trip");
    }
}
