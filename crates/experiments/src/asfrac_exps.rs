//! `as-fractions`: the per-AS flow-fraction table at routing-table scale —
//! the paper's non-binary per-AS view (§3.4, Fig 3/4) extended from the
//! ~40-AS head catalog to a ~100k-AS long-tail RIB.
//!
//! The pipeline is the whole point: a long-tail world
//! (`WorldConfig::long_tail_ases`) announces the tail into the real RIB,
//! `trafficgen::synthesize_long_tail_into` streams flow records through the
//! [`FlowSink`](flowmon::FlowSink) machinery, and a dense
//! [`AsAgg`] (a `SymVec` keyed by the registry's interned AS symbols)
//! attributes every record via LPM — so peak memory is O(ASes), independent
//! of `--days`, and the emitted table is byte-identical at any
//! `--threads` count.

use crate::report::Report;
use crate::session::Session;
use ipv6view_core::client::{AsAgg, AsFraction};
use ipv6view_core::report::{render_cdf, TextTable};
use netstats::Ecdf;
use serde::Serialize;
use trafficgen::{synthesize_long_tail_into, LongTailTrafficConfig};
use worldgen::{World, WorldConfig};

/// The paper's per-AS volume floor: 0.01% of attributed bytes, inclusive.
pub const MIN_SHARE: f64 = 0.0001;

/// Inputs of one `as-fractions` run (all deterministic knobs explicit so
/// tests and the export path can shrink them).
#[derive(Debug, Clone)]
pub struct AsFractionsParams {
    /// World seed (tail registration and traffic derive from it).
    pub seed: u64,
    /// Long-tail AS count (the paper-scale run uses ~100 000).
    pub ases: usize,
    /// Days of synthesized traffic.
    pub days: u32,
    /// Flow records per day.
    pub flows_per_day: usize,
    /// Day-level worker threads (output is invariant to this).
    pub threads: usize,
    /// Attribute through the compiled (frozen multibit) LPM engine. Output
    /// is byte-identical either way; the registry's engine-on/off guard
    /// flips this through [`RunConfig`](crate::RunConfig)`::compiled_lpm`.
    pub compiled_lpm: bool,
    /// When set, tee the stream into sealed [`flowstore`] day-parts under
    /// `<dir>/as-fractions` and digest-verify the replay. The report is
    /// byte-identical either way.
    pub spill: Option<std::path::PathBuf>,
}

/// The exportable dataset: run parameters plus every kept per-AS row.
#[derive(Debug, Clone, Serialize)]
pub struct AsFractionsReport {
    /// Long-tail AS count of the world.
    pub ases: usize,
    /// Days synthesized.
    pub days: u32,
    /// Applied volume floor (inclusive).
    pub min_share: f64,
    /// Flow records streamed.
    pub flows: u64,
    /// Distinct ASes observed in the stream.
    pub observed_ases: usize,
    /// Rows at or above the floor, sorted by ASN.
    pub rows: Vec<AsFraction>,
}

/// Run the streaming pipeline and build the report. One [`AsAgg`] is the
/// only per-AS state — the record stream dies in it.
pub fn as_fractions_report(params: &AsFractionsParams) -> AsFractionsReport {
    // A routing-table-scale world: the web side stays tiny (the crawl is
    // irrelevant here), the RIB carries the tail.
    let mut world = World::generate(
        &WorldConfig {
            seed: params.seed,
            num_sites: 200,
            ..WorldConfig::small()
        }
        .with_long_tail(params.ases),
    );
    if !params.compiled_lpm {
        world.rib.thaw();
    }
    let cfg = LongTailTrafficConfig {
        seed: params.seed ^ 0x6173_6672_6163, // "asfrac"
        num_days: params.days,
        flows_per_day: params.flows_per_day,
        threads: params.threads.max(1),
    };
    let mut agg = AsAgg::new(&world.rib, &world.registry);
    match &params.spill {
        None => synthesize_long_tail_into(&world, &cfg, &mut agg),
        Some(spill) => {
            // Spill mode: same stream, teed into a day-part writer and a
            // live digest; the replayed parts must reproduce the stream
            // byte for byte before the report is trusted.
            let dir = spill.join("as-fractions");
            if dir.exists() {
                if let Err(e) = std::fs::remove_dir_all(&dir) {
                    panic!("clearing spill dir {}: {e}", dir.display());
                }
            }
            let mut live = flowstore::DigestSink::new();
            let mut spill_sink = match flowstore::SpillSink::new(&dir, 0) {
                Ok(s) => s,
                Err(e) => panic!("opening spill sink: {e}"),
            };
            synthesize_long_tail_into(&world, &cfg, &mut (&mut agg, &mut live, &mut spill_sink));
            let metas = match spill_sink.finish() {
                Ok(m) => m,
                Err(e) => panic!("sealing spill parts: {e}"),
            };
            let mut replayed = flowstore::DigestSink::new();
            let stats = match flowstore::PartSet::from_metas(metas).replay_into(&mut replayed) {
                Ok(s) => s,
                Err(e) => panic!("replaying spilled parts: {e}"),
            };
            if replayed.digest() != live.digest() {
                panic!(
                    "spill replay diverged: live {:#018x} vs replay {:#018x} ({} rows)",
                    live.digest(),
                    replayed.digest(),
                    stats.rows,
                );
            }
            obs::debug!(
                "[repro] as-fractions spill verified: {} parts, {} rows, digest {:#018x}",
                stats.parts,
                stats.rows,
                live.digest(),
            );
        }
    }
    let rows = agg.fractions('T', MIN_SHARE);
    AsFractionsReport {
        ases: params.ases,
        days: params.days,
        min_share: MIN_SHARE,
        flows: params.days as u64 * params.flows_per_day as u64,
        observed_ases: agg.observed_as_count(),
        rows,
    }
}

/// Serialize a report as the exportable dataset (stable field order; same
/// seed ⇒ byte-identical output at any thread count).
pub fn as_fractions_json(report: &AsFractionsReport) -> String {
    serde_json::to_string_pretty(report).expect("serializable")
}

/// Build the `as-fractions` scenario report from explicit params.
fn as_fractions_report_for(params: &AsFractionsParams) -> Report {
    let mut r = Report::new("as-fractions");
    r.heading("AS fractions — per-AS IPv6 flow fractions at routing-table scale");
    let t0 = std::time::Instant::now(); // tidy:allow(wall-clock): elapsed time feeds the obs::info diagnostic below, never the Report
    let report = as_fractions_report(params);
    obs::info!(
        "[repro] streamed {} flows over {} tail ASes in {:.1}s (per-AS state: dense SymVec, O(ASes))",
        report.flows,
        params.ases,
        t0.elapsed().as_secs_f64()
    );
    r.line(format!(
        "{} ASes observed, {} at or above the {:.2}% floor (inclusive)",
        report.observed_ases,
        report.rows.len(),
        report.min_share * 100.0
    ));

    // The Table 1 shape, per AS: volume, share, byte and flow fractions.
    let mut top: Vec<&AsFraction> = report.rows.iter().collect();
    top.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.asn.cmp(&b.asn)));
    let mut t = TextTable::new(vec![
        "ASN", "category", "GB", "share", "v6 bytes", "v6 flows",
    ]);
    for row in top.iter().take(15) {
        t.row(vec![
            format!("AS{}", row.asn),
            format!("{:?}", row.category),
            format!("{:.2}", row.bytes as f64 / 1e9),
            format!("{:.4}", row.share),
            format!("{:.3}", row.fraction),
            format!("{:.3}", row.flow_fraction),
        ]);
    }
    r.table(t);

    // The floor CDF: how per-AS traffic shares distribute — what moving
    // `min_share` would keep or drop.
    let shares: Vec<f64> = report.rows.iter().map(|row| row.share).collect();
    r.raw(render_cdf(
        "per-AS share of attributed bytes",
        &Ecdf::new(shares),
        5,
    ));
    // The non-binary adoption view over the kept population.
    let fracs: Vec<f64> = report.rows.iter().map(|row| row.fraction).collect();
    let v4_only = fracs.iter().filter(|&&f| f == 0.0).count();
    r.raw(render_cdf(
        "per-AS IPv6 byte fraction",
        &Ecdf::new(fracs),
        5,
    ));
    r.line(format!(
        "{v4_only} of {} kept ASes are IPv4-only; the rest spread over (0, 1) — \n\
         the long tail is where fraction-of-traffic diverges from binary adoption",
        report.rows.len()
    ));
    r.dataset("as_fractions.json", as_fractions_json(&report));
    r
}

/// `as-fractions`: stream a long-tail world through the per-AS pipeline
/// and print the Table 1-shaped per-AS fraction table plus the floor and
/// adoption CDFs.
pub fn as_fractions(s: &mut Session) -> Report {
    // `--sites` doubles as the tail-scale knob (100k sites = the paper's
    // crawl scale = a full routing table's origin-AS count).
    let ases = s.world.web.sites.len();
    let params = AsFractionsParams {
        seed: s.world.config.seed,
        ases,
        days: s.config.days.min(30),
        flows_per_day: (ases * 10).clamp(20_000, 600_000),
        threads: s.config.threads.unwrap_or(1),
        compiled_lpm: s.config.compiled_lpm,
        spill: s.config.spill.clone(),
    };
    as_fractions_report_for(&params)
}

/// The export-scale `as-fractions` report (300-AS tail, 3-day cap,
/// matching the published dataset's parameters).
pub fn as_fractions_export_report(s: &mut Session) -> Report {
    let params = AsFractionsParams {
        seed: s.world.config.seed,
        ases: 300,
        days: s.config.days.min(3),
        flows_per_day: 10_000,
        threads: s.config.threads.unwrap_or(1),
        compiled_lpm: s.config.compiled_lpm,
        spill: s.config.spill.clone(),
    };
    as_fractions_report_for(&params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(threads: usize) -> AsFractionsParams {
        AsFractionsParams {
            seed: 77,
            ases: 400,
            days: 3,
            flows_per_day: 5_000,
            threads,
            compiled_lpm: true,
            spill: None,
        }
    }

    #[test]
    fn export_is_byte_identical_across_thread_counts() {
        let a = as_fractions_json(&as_fractions_report(&params(1)));
        let b = as_fractions_json(&as_fractions_report(&params(4)));
        assert_eq!(a, b, "thread count must not change the exported table");
        let thawed = as_fractions_json(&as_fractions_report(&AsFractionsParams {
            compiled_lpm: false,
            ..params(1)
        }));
        assert_eq!(a, thawed, "LPM engine choice must not change the table");
        assert!(a.contains("\"min_share\""));
        // A different seed produces a different dataset.
        let c = as_fractions_json(&as_fractions_report(&AsFractionsParams {
            seed: 78,
            ..params(1)
        }));
        assert_ne!(a, c);
    }

    #[test]
    fn spilling_does_not_change_the_table() {
        let dir = std::env::temp_dir().join(format!("asfrac-test-{}", std::process::id()));
        let a = as_fractions_json(&as_fractions_report(&params(1)));
        let b = as_fractions_json(&as_fractions_report(&AsFractionsParams {
            spill: Some(dir.clone()),
            ..params(2)
        }));
        assert_eq!(a, b, "spilling must not change the exported table");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn report_shows_a_non_binary_tail() {
        let r = as_fractions_report(&params(1));
        assert!(r.observed_ases > 300, "observed {}", r.observed_ases);
        assert!(!r.rows.is_empty());
        // Rows are ASN-sorted and floored inclusively.
        for w in r.rows.windows(2) {
            assert!(w[0].asn < w[1].asn);
        }
        assert!(r.rows.iter().all(|x| x.share >= MIN_SHARE));
        // The non-binary picture: v4-only ASes, mid-range ASes and
        // near-full adopters all present among the kept population.
        let v4_only = r.rows.iter().filter(|x| x.fraction == 0.0).count();
        let mid = r
            .rows
            .iter()
            .filter(|x| x.fraction > 0.2 && x.fraction < 0.8)
            .count();
        let high = r.rows.iter().filter(|x| x.fraction >= 0.8).count();
        assert!(v4_only > 0 && mid > 0 && high > 0, "{v4_only}/{mid}/{high}");
        // Peak memory is O(ASes): more days, same per-AS state — assert the
        // row population (not the state size) is what days change.
        let longer = as_fractions_report(&AsFractionsParams {
            days: 6,
            ..params(1)
        });
        assert!(longer.observed_ases >= r.observed_ases);
    }
}
