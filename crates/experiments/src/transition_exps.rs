//! Transition-technology scenarios (new scenarios beyond the paper):
//! the access-technology cohort, NAT64 pool exhaustion, and the
//! provider-shared CGN pool-size sweep.
//!
//! The cohort and sweep scenarios attach their exportable datasets to the
//! [`Report`] they return; `repro export` writes the same datasets from a
//! deliberately shrunk run ([`transition_export_report`],
//! [`cgn_sweep_export_report`]) so the published files stay deterministic
//! and cheap at any `--days`.

use crate::report::Report;
use crate::session::Session;
use ipv6view_core::report::{render_cdf, TextTable};
use ipv6view_core::tiers::{analyze_transition_agg, residence_translation_map, TransitionAnalysis};
use netstats::Ecdf;
use serde::Serialize;
use trafficgen::{
    isp_cohort, synthesize_isps, synthesize_profiles_with, transition_residences, IspSpec,
    TrafficConfig,
};
use transition::GatewayConfig;

/// Synthesize the five-technology cohort and grade each line, streaming
/// every residence through a translation aggregator (no record is
/// materialized). Deterministic in `(world seed, days)`; the cohort seed
/// derives from the world seed so `--seed` reruns are independent end to
/// end.
pub fn cohort_analyses(s: &Session, days: u32) -> Vec<TransitionAnalysis> {
    let cfg = TrafficConfig {
        seed: s.world.config.seed ^ 0x786c_6174, // "xlat"
        num_days: days,
        ..s.traffic_config()
    };
    let nat64 = s.world.transition.nat64_prefix.prefix();
    let results = synthesize_profiles_with(&s.world, transition_residences(), &cfg, |_, p| {
        flowmon::sink::TranslationAgg::new(residence_translation_map(p.access_tech, nat64))
    });
    results
        .iter()
        .map(|(summary, agg)| {
            analyze_transition_agg(
                summary.profile.key,
                summary.profile.access_tech,
                summary.scale,
                agg,
                summary.gateway,
            )
        })
        .collect()
}

/// Serialize cohort analyses as the exportable transition dataset (stable
/// field order; same seed ⇒ byte-identical output).
pub fn cohort_json(analyses: &[TransitionAnalysis]) -> String {
    serde_json::to_string_pretty(analyses).expect("serializable")
}

/// Build the `transition` report over a cohort run of `days` days.
fn transition_report_for_days(s: &Session, days: u32) -> Report {
    let mut r = Report::new("transition");
    r.heading("Transition — translated vs native traffic by access technology");
    let analyses = cohort_analyses(s, days);
    let mut t = TextTable::new(vec![
        "Res",
        "Access tech",
        "GB",
        "native v6",
        "translated",
        "tunneled v4",
        "native v4",
        "xlat flows",
        "gw grant/rej",
        "tier",
    ]);
    for a in &analyses {
        t.row(vec![
            a.key.to_string(),
            a.tech.clone(),
            format!("{:.0}", a.total_gb),
            format!("{:.3}", a.native_v6_bytes),
            format!("{:.3}", a.translated_bytes),
            format!("{:.3}", a.tunneled_v4_bytes),
            format!("{:.3}", a.native_v4_bytes),
            format!("{:.3}", a.translated_flows),
            a.gateway
                .map(|g| format!("{}/{}", g.granted, g.rejected))
                .unwrap_or_else(|| "-".into()),
            a.tier.label().to_string(),
        ]);
    }
    r.table(t);
    r.line(format!(
        "(identical demand on every line: the translated share is the byte mass the\n\
         binary view misattributes — v6-only lines carry IPv4-only services' bytes\n\
         as IPv6 flows towards {}, and DS-Lite hides native-looking v4 in a tunnel)",
        s.world.transition.nat64_prefix
    ));
    r.dataset("transition_report.json", cohort_json(&analyses));
    r
}

/// `transition`: translated vs native traffic share per access technology,
/// over an identical-demand residence cohort (IPv6-only, 464XLAT, DS-Lite,
/// dual-stack and v4-only lines).
pub fn transition_report(s: &mut Session) -> Report {
    let days = s.config.days.min(60);
    transition_report_for_days(s, days)
}

/// The export-scale `transition` report (30-day cap, matching the
/// published dataset's parameters).
pub fn transition_export_report(s: &mut Session) -> Report {
    let days = s.config.days.min(30);
    transition_report_for_days(s, days)
}

/// `nat64-exhaustion`: fix the cohort's IPv6-only line, sweep the gateway's
/// binding capacity, and report grant/reject dynamics under load.
pub fn nat64_exhaustion(s: &mut Session) -> Report {
    let mut r = Report::new("nat64-exhaustion");
    r.heading("NAT64 — binding-pool exhaustion under residential load");
    let profile = transition_residences()
        .into_iter()
        .find(|p| p.access_tech == transition::AccessTech::Ipv6OnlyNat64)
        .expect("cohort has a NAT64 line");
    let days = s.config.days.min(15);
    let mut t = TextTable::new(vec![
        "capacity",
        "granted",
        "rejected",
        "reject rate",
        "peak active",
    ]);
    for capacity in [2usize, 4, 8, 16, 64] {
        let cfg = TrafficConfig {
            seed: s.world.config.seed ^ 0x6e61_7436, // "nat6"
            num_days: days,
            // Dense sampling: each record stands for ~50 real flows, so the
            // binding table sees per-subscriber concurrency a CGN actually
            // carries, not the 1/1000 shadow of it.
            scale: 1.0 / 50.0,
            gateway: GatewayConfig {
                capacity,
                // A generous CGN-style binding lifetime keeps pressure on
                // the pool (the exhaustion regime the trade-off studies
                // warn about).
                binding_timeout: 1_800 * 1_000_000,
            },
            ..s.traffic_config()
        };
        let ds = trafficgen::synthesize_residence(&s.world, profile.clone(), &cfg, 0);
        let gw = ds.gateway.expect("NAT64 line reports stats");
        t.row(vec![
            capacity.to_string(),
            gw.granted.to_string(),
            gw.rejected.to_string(),
            format!("{:.3}", gw.rejection_rate()),
            gw.peak_active.to_string(),
        ]);
    }
    r.table(t);
    r.line(
        "(every flow rejected here is a connection failure the subscriber sees;\n\
              sizing the pool is the deployment cost NAT64 trades for IPv6-only access)",
    );
    r
}

/// One row of the provider-shared CGN sweep: a pool size and what the
/// shared gateway did with the cohort's whole-run demand.
#[derive(Debug, Clone, Serialize)]
pub struct CgnSweepRow {
    /// Bindings per shared pool (NAT64 and AFTR each).
    pub capacity: usize,
    /// Translated/tunneled records offered over the run.
    pub offered: u64,
    /// Bindings granted.
    pub granted: u64,
    /// Records rejected (connection failures subscribers saw).
    pub rejected: u64,
    /// Overall rejection rate.
    pub rejection_rate: f64,
    /// Peak simultaneous bindings (larger pool).
    pub peak_active: usize,
    /// Per-day rejection rates, day order — the CDF input.
    pub daily_rejection_rates: Vec<f64>,
}

/// Run the pool-size sweep: one ISP (shared, cross-day gateway) per
/// capacity, identical subscriber demand, fanned out via the shared
/// [`trafficgen::fan_out`] machinery inside [`synthesize_isps`].
/// Deterministic in `(world seed, days, subscribers)` and invariant to
/// `--threads` / `--day-threads`.
pub fn cgn_sweep_rows(
    s: &Session,
    subscribers: usize,
    days: u32,
    capacities: &[usize],
) -> Vec<CgnSweepRow> {
    let cfg = TrafficConfig {
        seed: s.world.config.seed ^ 0x6367_6e73, // "cgns"
        num_days: days,
        // Dense sampling, as in the exhaustion experiment: the shared pool
        // must see CGN-realistic per-subscriber concurrency.
        scale: 1.0 / 50.0,
        ..s.traffic_config()
    };
    let specs: Vec<IspSpec> = capacities
        .iter()
        .map(|&capacity| IspSpec {
            name: format!("pool-{capacity}"),
            profiles: isp_cohort(subscribers),
            gateway: GatewayConfig {
                capacity,
                // Two-hour bindings: the long-timeout CGN regime where
                // cross-midnight persistence actually bites (day-local
                // gateways under-reject most here).
                binding_timeout: 7_200 * 1_000_000,
            },
        })
        .collect();
    synthesize_isps(&s.world, specs, &cfg)
        .into_iter()
        .map(|run| {
            let offered = run.daily.iter().map(|d| d.offered).sum();
            CgnSweepRow {
                capacity: run.gateway_config.capacity,
                offered,
                granted: run.gateway.granted,
                rejected: run.gateway.rejected,
                rejection_rate: run.gateway.rejection_rate(),
                peak_active: run.gateway.peak_active,
                daily_rejection_rates: run.daily.iter().map(|d| d.rejection_rate()).collect(),
            }
        })
        .collect()
}

/// Serialize sweep rows as the exportable dataset (stable field order;
/// same seed ⇒ byte-identical output).
pub fn cgn_sweep_json(rows: &[CgnSweepRow]) -> String {
    serde_json::to_string_pretty(rows).expect("serializable")
}

/// Build the `cgn-sweep` report for one cohort/pool-size grid.
fn cgn_sweep_report_with(
    s: &Session,
    subscribers: usize,
    days: u32,
    capacities: &[usize],
) -> Report {
    let mut r = Report::new("cgn-sweep");
    r.heading("CGN sweep — shared provider gateway: pool size vs rejection rate");
    let rows = cgn_sweep_rows(s, subscribers, days, capacities);
    let mut t = TextTable::new(vec![
        "capacity",
        "offered",
        "granted",
        "rejected",
        "reject rate",
        "peak active",
    ]);
    for row in &rows {
        t.row(vec![
            row.capacity.to_string(),
            row.offered.to_string(),
            row.granted.to_string(),
            row.rejected.to_string(),
            format!("{:.3}", row.rejection_rate),
            row.peak_active.to_string(),
        ]);
    }
    r.table(t);
    for row in &rows {
        if row.daily_rejection_rates.iter().any(|&x| x > 0.0) {
            r.raw(render_cdf(
                &format!("daily rejection rate, pool {}", row.capacity),
                &Ecdf::new(row.daily_rejection_rates.clone()),
                5,
            ));
        }
    }
    r.line(format!(
        "({} subscribers share each pool; unlike the per-residence lower bound,\n\
         bindings persist across midnight, so long CGN timeouts keep yesterday's\n\
         ports occupied — the sizing curve a provider actually faces)",
        subscribers
    ));
    r.dataset("cgn_sweep.json", cgn_sweep_json(&rows));
    r
}

/// `cgn-sweep`: provider-shared CGN sizing — one gateway per pool size
/// serving a whole subscriber cohort, bindings persisted across days, and
/// the per-day rejection-rate CDF each pool size implies.
pub fn cgn_sweep(s: &mut Session) -> Report {
    let days = s.config.days.min(12);
    cgn_sweep_report_with(s, 12, days, &[32, 64, 128, 256, 512])
}

/// The export-scale `cgn-sweep` report (small deterministic cohort,
/// matching the published dataset's parameters).
pub fn cgn_sweep_export_report(s: &mut Session) -> Report {
    let days = s.config.days.min(8);
    cgn_sweep_report_with(s, 6, days, &[32, 128, 512])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::RunConfig;

    fn session(seed: u64) -> Session {
        Session::new(RunConfig::default().sites(400).seed(seed).days(10))
    }

    #[test]
    fn cohort_export_is_byte_identical_across_runs() {
        let s = session(77);
        let a = cohort_json(&cohort_analyses(&s, 10));
        let b = cohort_json(&cohort_analyses(&s, 10));
        assert_eq!(a, b, "same seed must export byte-identical JSON");
        assert!(a.contains("\"tech\""));
        // A different seed produces a different dataset.
        let s2 = session(78);
        let c = cohort_json(&cohort_analyses(&s2, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn cohort_covers_all_five_techs() {
        let s = session(77);
        let analyses = cohort_analyses(&s, 8);
        let techs: Vec<&str> = analyses.iter().map(|a| a.tech.as_str()).collect();
        assert_eq!(
            techs,
            vec![
                "dual-stack",
                "v4-only",
                "v6only+nat64",
                "464xlat",
                "ds-lite"
            ]
        );
        // The headline number: v6-only lines carry a real translated share.
        let nat64 = &analyses[2];
        assert!(nat64.translated_bytes > 0.02);
    }

    #[test]
    fn cgn_sweep_export_is_byte_identical_and_monotone() {
        let s = Session::new(RunConfig::default().sites(400).seed(77).days(6));
        let rows = cgn_sweep_rows(&s, 4, 4, &[16, 256, 100_000]);
        let a = cgn_sweep_json(&rows);
        let b = cgn_sweep_json(&cgn_sweep_rows(&s, 4, 4, &[16, 256, 100_000]));
        assert_eq!(a, b, "same seed must export byte-identical JSON");
        // Identical demand across pool sizes; rejection falls as the pool
        // grows and a practically-unbounded pool rejects nothing.
        assert_eq!(rows[0].offered, rows[1].offered);
        assert_eq!(rows[1].offered, rows[2].offered);
        assert!(rows[0].rejection_rate >= rows[1].rejection_rate);
        assert!(rows[1].rejection_rate >= rows[2].rejection_rate);
        assert_eq!(rows[2].rejected, 0);
        assert!(
            rows[0].rejected > 0,
            "a 16-binding pool under 4 subscribers × dense load must reject"
        );
        assert_eq!(rows[0].daily_rejection_rates.len(), 4);
    }

    #[test]
    fn run_and_export_reports_attach_the_datasets() {
        let mut s = Session::new(RunConfig::default().sites(400).seed(77).days(4));
        let run = transition_report(&mut s);
        let names: Vec<&str> = run.datasets().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["transition_report.json"]);
        // At days ≤ 30 the run and export datasets coincide (same cap).
        let export = transition_export_report(&mut s);
        assert_eq!(
            run.datasets().next().unwrap().json,
            export.datasets().next().unwrap().json
        );
        let sweep = cgn_sweep_export_report(&mut s);
        assert_eq!(sweep.datasets().next().unwrap().name, "cgn_sweep.json");
        assert!(sweep
            .datasets()
            .next()
            .unwrap()
            .json
            .contains("\"capacity\""));
    }
}
