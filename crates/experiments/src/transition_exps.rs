//! Transition-technology experiments (new scenarios beyond the paper):
//! the access-technology cohort, NAT64 pool exhaustion, and the
//! provider-shared CGN pool-size sweep.

use crate::context::Ctx;
use ipv6view_core::report::{heading, render_cdf, TextTable};
use ipv6view_core::tiers::{analyze_transition_agg, residence_translation_map, TransitionAnalysis};
use netstats::Ecdf;
use serde::Serialize;
use trafficgen::{
    isp_cohort, synthesize_isps, synthesize_profiles_with, transition_residences, IspSpec,
    TrafficConfig,
};
use transition::GatewayConfig;

/// Synthesize the five-technology cohort and grade each line, streaming
/// every residence through a translation aggregator (no record is
/// materialized). Deterministic in `(world seed, days)`; the cohort seed
/// derives from the world seed so `--seed` reruns are independent end to
/// end.
pub fn cohort_analyses(ctx: &Ctx, days: u32) -> Vec<TransitionAnalysis> {
    let cfg = TrafficConfig {
        seed: ctx.world.config.seed ^ 0x786c_6174, // "xlat"
        num_days: days,
        ..ctx.traffic_config()
    };
    let nat64 = ctx.world.transition.nat64_prefix.prefix();
    let results = synthesize_profiles_with(&ctx.world, transition_residences(), &cfg, |_, p| {
        flowmon::sink::TranslationAgg::new(residence_translation_map(p.access_tech, nat64))
    });
    results
        .iter()
        .map(|(summary, agg)| {
            analyze_transition_agg(
                summary.profile.key,
                summary.profile.access_tech,
                summary.scale,
                agg,
                summary.gateway,
            )
        })
        .collect()
}

/// Serialize cohort analyses as the exportable transition dataset (stable
/// field order; same seed ⇒ byte-identical output).
pub fn cohort_json(analyses: &[TransitionAnalysis]) -> String {
    serde_json::to_string_pretty(analyses).expect("serializable")
}

/// `transition`: translated vs native traffic share per access technology,
/// over an identical-demand residence cohort (IPv6-only, 464XLAT, DS-Lite,
/// dual-stack and v4-only lines).
pub fn transition_report(ctx: &mut Ctx) {
    print!(
        "{}",
        heading("Transition — translated vs native traffic by access technology")
    );
    let days = ctx.days.min(60);
    let analyses = cohort_analyses(ctx, days);
    let mut t = TextTable::new(vec![
        "Res",
        "Access tech",
        "GB",
        "native v6",
        "translated",
        "tunneled v4",
        "native v4",
        "xlat flows",
        "gw grant/rej",
        "tier",
    ]);
    for a in &analyses {
        t.row(vec![
            a.key.to_string(),
            a.tech.clone(),
            format!("{:.0}", a.total_gb),
            format!("{:.3}", a.native_v6_bytes),
            format!("{:.3}", a.translated_bytes),
            format!("{:.3}", a.tunneled_v4_bytes),
            format!("{:.3}", a.native_v4_bytes),
            format!("{:.3}", a.translated_flows),
            a.gateway
                .map(|g| format!("{}/{}", g.granted, g.rejected))
                .unwrap_or_else(|| "-".into()),
            a.tier.label().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(identical demand on every line: the translated share is the byte mass the\n\
         binary view misattributes — v6-only lines carry IPv4-only services' bytes\n\
         as IPv6 flows towards {}, and DS-Lite hides native-looking v4 in a tunnel)",
        ctx.world.transition.nat64_prefix
    );
}

/// `nat64-exhaustion`: fix the cohort's IPv6-only line, sweep the gateway's
/// binding capacity, and report grant/reject dynamics under load.
pub fn nat64_exhaustion(ctx: &mut Ctx) {
    print!(
        "{}",
        heading("NAT64 — binding-pool exhaustion under residential load")
    );
    let profile = transition_residences()
        .into_iter()
        .find(|p| p.access_tech == transition::AccessTech::Ipv6OnlyNat64)
        .expect("cohort has a NAT64 line");
    let days = ctx.days.min(15);
    let mut t = TextTable::new(vec![
        "capacity",
        "granted",
        "rejected",
        "reject rate",
        "peak active",
    ]);
    for capacity in [2usize, 4, 8, 16, 64] {
        let cfg = TrafficConfig {
            seed: ctx.world.config.seed ^ 0x6e61_7436, // "nat6"
            num_days: days,
            // Dense sampling: each record stands for ~50 real flows, so the
            // binding table sees per-subscriber concurrency a CGN actually
            // carries, not the 1/1000 shadow of it.
            scale: 1.0 / 50.0,
            gateway: GatewayConfig {
                capacity,
                // A generous CGN-style binding lifetime keeps pressure on
                // the pool (the exhaustion regime the trade-off studies
                // warn about).
                binding_timeout: 1_800 * 1_000_000,
            },
            ..ctx.traffic_config()
        };
        let ds = trafficgen::synthesize_residence(&ctx.world, profile.clone(), &cfg, 0);
        let gw = ds.gateway.expect("NAT64 line reports stats");
        t.row(vec![
            capacity.to_string(),
            gw.granted.to_string(),
            gw.rejected.to_string(),
            format!("{:.3}", gw.rejection_rate()),
            gw.peak_active.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(every flow rejected here is a connection failure the subscriber sees;\n\
              sizing the pool is the deployment cost NAT64 trades for IPv6-only access)"
    );
}

/// One row of the provider-shared CGN sweep: a pool size and what the
/// shared gateway did with the cohort's whole-run demand.
#[derive(Debug, Clone, Serialize)]
pub struct CgnSweepRow {
    /// Bindings per shared pool (NAT64 and AFTR each).
    pub capacity: usize,
    /// Translated/tunneled records offered over the run.
    pub offered: u64,
    /// Bindings granted.
    pub granted: u64,
    /// Records rejected (connection failures subscribers saw).
    pub rejected: u64,
    /// Overall rejection rate.
    pub rejection_rate: f64,
    /// Peak simultaneous bindings (larger pool).
    pub peak_active: usize,
    /// Per-day rejection rates, day order — the CDF input.
    pub daily_rejection_rates: Vec<f64>,
}

/// Run the pool-size sweep: one ISP (shared, cross-day gateway) per
/// capacity, identical subscriber demand, fanned out via the shared
/// [`trafficgen::fan_out`] machinery inside [`synthesize_isps`].
/// Deterministic in `(world seed, days, subscribers)` and invariant to
/// `--threads` / `--day-threads`.
pub fn cgn_sweep_rows(
    ctx: &Ctx,
    subscribers: usize,
    days: u32,
    capacities: &[usize],
) -> Vec<CgnSweepRow> {
    let cfg = TrafficConfig {
        seed: ctx.world.config.seed ^ 0x6367_6e73, // "cgns"
        num_days: days,
        // Dense sampling, as in the exhaustion experiment: the shared pool
        // must see CGN-realistic per-subscriber concurrency.
        scale: 1.0 / 50.0,
        ..ctx.traffic_config()
    };
    let specs: Vec<IspSpec> = capacities
        .iter()
        .map(|&capacity| IspSpec {
            name: format!("pool-{capacity}"),
            profiles: isp_cohort(subscribers),
            gateway: GatewayConfig {
                capacity,
                // Two-hour bindings: the long-timeout CGN regime where
                // cross-midnight persistence actually bites (day-local
                // gateways under-reject most here).
                binding_timeout: 7_200 * 1_000_000,
            },
        })
        .collect();
    synthesize_isps(&ctx.world, specs, &cfg)
        .into_iter()
        .map(|run| {
            let offered = run.daily.iter().map(|d| d.offered).sum();
            CgnSweepRow {
                capacity: run.gateway_config.capacity,
                offered,
                granted: run.gateway.granted,
                rejected: run.gateway.rejected,
                rejection_rate: run.gateway.rejection_rate(),
                peak_active: run.gateway.peak_active,
                daily_rejection_rates: run.daily.iter().map(|d| d.rejection_rate()).collect(),
            }
        })
        .collect()
}

/// Serialize sweep rows as the exportable dataset (stable field order;
/// same seed ⇒ byte-identical output).
pub fn cgn_sweep_json(rows: &[CgnSweepRow]) -> String {
    serde_json::to_string_pretty(rows).expect("serializable")
}

/// `cgn-sweep`: provider-shared CGN sizing — one gateway per pool size
/// serving a whole subscriber cohort, bindings persisted across days, and
/// the per-day rejection-rate CDF each pool size implies.
pub fn cgn_sweep(ctx: &mut Ctx) {
    print!(
        "{}",
        heading("CGN sweep — shared provider gateway: pool size vs rejection rate")
    );
    let days = ctx.days.min(12);
    let subscribers = 12;
    let capacities = [32usize, 64, 128, 256, 512];
    let rows = cgn_sweep_rows(ctx, subscribers, days, &capacities);
    let mut t = TextTable::new(vec![
        "capacity",
        "offered",
        "granted",
        "rejected",
        "reject rate",
        "peak active",
    ]);
    for r in &rows {
        t.row(vec![
            r.capacity.to_string(),
            r.offered.to_string(),
            r.granted.to_string(),
            r.rejected.to_string(),
            format!("{:.3}", r.rejection_rate),
            r.peak_active.to_string(),
        ]);
    }
    print!("{}", t.render());
    for r in &rows {
        if r.daily_rejection_rates.iter().any(|&x| x > 0.0) {
            print!(
                "{}",
                render_cdf(
                    &format!("daily rejection rate, pool {}", r.capacity),
                    &Ecdf::new(r.daily_rejection_rates.clone()),
                    5
                )
            );
        }
    }
    println!(
        "({} subscribers share each pool; unlike the per-residence lower bound,\n\
         bindings persist across midnight, so long CGN timeouts keep yesterday's\n\
         ports occupied — the sizing curve a provider actually faces)",
        subscribers
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_export_is_byte_identical_across_runs() {
        let ctx = Ctx::new(400, 77, 10);
        let a = cohort_json(&cohort_analyses(&ctx, 10));
        let b = cohort_json(&cohort_analyses(&ctx, 10));
        assert_eq!(a, b, "same seed must export byte-identical JSON");
        assert!(a.contains("\"tech\""));
        // A different seed produces a different dataset.
        let ctx2 = Ctx::new(400, 78, 10);
        let c = cohort_json(&cohort_analyses(&ctx2, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn cohort_covers_all_five_techs() {
        let ctx = Ctx::new(400, 77, 10);
        let analyses = cohort_analyses(&ctx, 8);
        let techs: Vec<&str> = analyses.iter().map(|a| a.tech.as_str()).collect();
        assert_eq!(
            techs,
            vec![
                "dual-stack",
                "v4-only",
                "v6only+nat64",
                "464xlat",
                "ds-lite"
            ]
        );
        // The headline number: v6-only lines carry a real translated share.
        let nat64 = &analyses[2];
        assert!(nat64.translated_bytes > 0.02);
    }

    #[test]
    fn cgn_sweep_export_is_byte_identical_and_monotone() {
        let ctx = Ctx::new(400, 77, 6);
        let rows = cgn_sweep_rows(&ctx, 4, 4, &[16, 256, 100_000]);
        let a = cgn_sweep_json(&rows);
        let b = cgn_sweep_json(&cgn_sweep_rows(&ctx, 4, 4, &[16, 256, 100_000]));
        assert_eq!(a, b, "same seed must export byte-identical JSON");
        // Identical demand across pool sizes; rejection falls as the pool
        // grows and a practically-unbounded pool rejects nothing.
        assert_eq!(rows[0].offered, rows[1].offered);
        assert_eq!(rows[1].offered, rows[2].offered);
        assert!(rows[0].rejection_rate >= rows[1].rejection_rate);
        assert!(rows[1].rejection_rate >= rows[2].rejection_rate);
        assert_eq!(rows[2].rejected, 0);
        assert!(
            rows[0].rejected > 0,
            "a 16-binding pool under 4 subscribers × dense load must reject"
        );
        assert_eq!(rows[0].daily_rejection_rates.len(), 4);
    }
}
