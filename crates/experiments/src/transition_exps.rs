//! Transition-technology experiments (new scenarios beyond the paper):
//! the access-technology cohort and NAT64 pool exhaustion.

use crate::context::Ctx;
use ipv6view_core::report::{heading, TextTable};
use ipv6view_core::tiers::{analyze_transition, TransitionAnalysis};
use trafficgen::{synthesize_profiles, transition_residences, TrafficConfig};
use transition::GatewayConfig;

/// Synthesize the five-technology cohort and grade each line. Deterministic
/// in `(world seed, days)`; the cohort seed derives from the world seed so
/// `--seed` reruns are independent end to end.
pub fn cohort_analyses(ctx: &Ctx, days: u32) -> Vec<TransitionAnalysis> {
    let cfg = TrafficConfig {
        seed: ctx.world.config.seed ^ 0x786c_6174, // "xlat"
        num_days: days,
        ..TrafficConfig::default()
    };
    let datasets = synthesize_profiles(&ctx.world, transition_residences(), &cfg);
    let nat64 = ctx.world.transition.nat64_prefix.prefix();
    datasets
        .iter()
        .map(|ds| analyze_transition(ds, nat64))
        .collect()
}

/// Serialize cohort analyses as the exportable transition dataset (stable
/// field order; same seed ⇒ byte-identical output).
pub fn cohort_json(analyses: &[TransitionAnalysis]) -> String {
    serde_json::to_string_pretty(analyses).expect("serializable")
}

/// `transition`: translated vs native traffic share per access technology,
/// over an identical-demand residence cohort (IPv6-only, 464XLAT, DS-Lite,
/// dual-stack and v4-only lines).
pub fn transition_report(ctx: &mut Ctx) {
    print!(
        "{}",
        heading("Transition — translated vs native traffic by access technology")
    );
    let days = ctx.days.min(60);
    let analyses = cohort_analyses(ctx, days);
    let mut t = TextTable::new(vec![
        "Res",
        "Access tech",
        "GB",
        "native v6",
        "translated",
        "tunneled v4",
        "native v4",
        "xlat flows",
        "gw grant/rej",
        "tier",
    ]);
    for a in &analyses {
        t.row(vec![
            a.key.to_string(),
            a.tech.clone(),
            format!("{:.0}", a.total_gb),
            format!("{:.3}", a.native_v6_bytes),
            format!("{:.3}", a.translated_bytes),
            format!("{:.3}", a.tunneled_v4_bytes),
            format!("{:.3}", a.native_v4_bytes),
            format!("{:.3}", a.translated_flows),
            a.gateway
                .map(|g| format!("{}/{}", g.granted, g.rejected))
                .unwrap_or_else(|| "-".into()),
            a.tier.label().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(identical demand on every line: the translated share is the byte mass the\n\
         binary view misattributes — v6-only lines carry IPv4-only services' bytes\n\
         as IPv6 flows towards {}, and DS-Lite hides native-looking v4 in a tunnel)",
        ctx.world.transition.nat64_prefix
    );
}

/// `nat64-exhaustion`: fix the cohort's IPv6-only line, sweep the gateway's
/// binding capacity, and report grant/reject dynamics under load.
pub fn nat64_exhaustion(ctx: &mut Ctx) {
    print!(
        "{}",
        heading("NAT64 — binding-pool exhaustion under residential load")
    );
    let profile = transition_residences()
        .into_iter()
        .find(|p| p.access_tech == transition::AccessTech::Ipv6OnlyNat64)
        .expect("cohort has a NAT64 line");
    let days = ctx.days.min(15);
    let mut t = TextTable::new(vec![
        "capacity",
        "granted",
        "rejected",
        "reject rate",
        "peak active",
    ]);
    for capacity in [2usize, 4, 8, 16, 64] {
        let cfg = TrafficConfig {
            seed: ctx.world.config.seed ^ 0x6e61_7436, // "nat6"
            num_days: days,
            // Dense sampling: each record stands for ~50 real flows, so the
            // binding table sees per-subscriber concurrency a CGN actually
            // carries, not the 1/1000 shadow of it.
            scale: 1.0 / 50.0,
            gateway: GatewayConfig {
                capacity,
                // A generous CGN-style binding lifetime keeps pressure on
                // the pool (the exhaustion regime the trade-off studies
                // warn about).
                binding_timeout: 1_800 * 1_000_000,
            },
            ..TrafficConfig::default()
        };
        let ds = trafficgen::synthesize_residence(&ctx.world, profile.clone(), &cfg, 0);
        let gw = ds.gateway.expect("NAT64 line reports stats");
        t.row(vec![
            capacity.to_string(),
            gw.granted.to_string(),
            gw.rejected.to_string(),
            format!("{:.3}", gw.rejection_rate()),
            gw.peak_active.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(every flow rejected here is a connection failure the subscriber sees;\n\
              sizing the pool is the deployment cost NAT64 trades for IPv6-only access)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_export_is_byte_identical_across_runs() {
        let ctx = Ctx::new(400, 77, 10);
        let a = cohort_json(&cohort_analyses(&ctx, 10));
        let b = cohort_json(&cohort_analyses(&ctx, 10));
        assert_eq!(a, b, "same seed must export byte-identical JSON");
        assert!(a.contains("\"tech\""));
        // A different seed produces a different dataset.
        let ctx2 = Ctx::new(400, 78, 10);
        let c = cohort_json(&cohort_analyses(&ctx2, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn cohort_covers_all_five_techs() {
        let ctx = Ctx::new(400, 77, 10);
        let analyses = cohort_analyses(&ctx, 8);
        let techs: Vec<&str> = analyses.iter().map(|a| a.tech.as_str()).collect();
        assert_eq!(
            techs,
            vec![
                "dual-stack",
                "v4-only",
                "v6only+nat64",
                "464xlat",
                "ds-lite"
            ]
        );
        // The headline number: v6-only lines carry a real translated share.
        let nat64 = &analyses[2];
        assert!(nat64.translated_bytes > 0.02);
    }
}
