//! The [`Scenario`] trait and the static scenario registry.
//!
//! A scenario is a first-class value: it has a stable registry name, a
//! one-line description, and a `run` that turns a [`Session`] into a
//! structured [`Report`]. The registry is the single source of truth for
//! dispatch — `repro <name>`, `repro list`, `repro all`, the CI smoke loop
//! and the registry tests all iterate the same static slice, so adding a
//! scenario is one `scenarios!` macro entry and nothing else.

use crate::report::Report;
use crate::session::Session;

/// A named, describable, runnable experiment.
///
/// Implementations are registered in [`registry`]; embedding applications
/// can also implement the trait for their own scenarios and drive them with
/// the same [`Session`].
pub trait Scenario: Sync {
    /// Stable registry name (`repro <name>`).
    fn name(&self) -> &'static str;

    /// One-line description for `repro list` and error messages.
    fn describe(&self) -> &'static str;

    /// Run against a session, producing the structured report.
    fn run(&self, session: &mut Session) -> Report;

    /// The shrunk-scale report whose datasets `repro export` writes
    /// (`None` when the scenario exports nothing). Kept separate from
    /// [`Scenario::run`] because exports deliberately shrink the run so the
    /// published datasets stay deterministic and cheap at any `--days`.
    fn export_report(&self, _session: &mut Session) -> Option<Report> {
        None
    }

    /// Whether `repro all` includes this scenario (multi-world sweeps like
    /// `robustness` opt out).
    fn in_all(&self) -> bool {
        true
    }
}

/// Define scenario unit structs, implement [`Scenario`] for each, and build
/// the static registry in declaration order (= the paper's figure order).
macro_rules! scenarios {
    ($(
        $(#[$meta:meta])*
        $ty:ident {
            name: $name:literal,
            describe: $desc:literal,
            run: $run:path
            $(, export: $export:path)?
            $(, in_all: $in_all:literal)?
        }
    ),+ $(,)?) => {
        $(
            $(#[$meta])*
            #[derive(Debug, Clone, Copy)]
            pub struct $ty;

            impl Scenario for $ty {
                fn name(&self) -> &'static str {
                    $name
                }
                fn describe(&self) -> &'static str {
                    $desc
                }
                fn run(&self, session: &mut Session) -> Report {
                    $run(session)
                }
                $(
                    fn export_report(&self, session: &mut Session) -> Option<Report> {
                        Some($export(session))
                    }
                )?
                $(
                    fn in_all(&self) -> bool {
                        $in_all
                    }
                )?
            }
        )+

        static REGISTRY: &[&dyn Scenario] = &[$(&$ty),+];
    };
}

scenarios! {
    /// Table 1: per-residence traffic volumes and IPv6 fractions.
    Table1 {
        name: "table1",
        describe: "per-residence IPv6 traffic volumes and fractions (external & internal)",
        run: crate::client_exps::table1
    },
    /// Fig 1: daily IPv6 fraction CDFs at residences A–C.
    Fig1 {
        name: "fig1",
        describe: "daily IPv6 fraction CDFs at residences A, B, C",
        run: crate::client_exps::fig1
    },
    /// Fig 2: MSTL of the hourly IPv6 byte fraction at residence A.
    Fig2 {
        name: "fig2",
        describe: "MSTL decomposition of hourly IPv6 byte fraction, residence A",
        run: crate::client_exps::fig2
    },
    /// Fig 3: per-AS IPv6 byte-fraction CDFs for common ASes.
    Fig3 {
        name: "fig3",
        describe: "CDF of per-AS IPv6 byte fractions (ASes seen at 3+ residences)",
        run: crate::client_exps::fig3
    },
    /// Fig 4: per-category AS boxplots.
    Fig4 {
        name: "fig4",
        describe: "IPv6 byte fraction by AS, grouped by category",
        run: crate::client_exps::fig4
    },
    /// Fig 5: graded classification across epochs.
    Fig5 {
        name: "fig5",
        describe: "graded server-side classification across the three epochs",
        run: crate::server_exps::fig5
    },
    /// Fig 6: readiness by popularity bucket.
    Fig6 {
        name: "fig6",
        describe: "IPv6 readiness of top-N sites by popularity bucket",
        run: crate::server_exps::fig6
    },
    /// Fig 7: IPv4-only resources per IPv6-partial site.
    Fig7 {
        name: "fig7",
        describe: "IPv4-only resource counts and fractions per IPv6-partial site",
        run: crate::server_exps::fig7
    },
    /// Fig 8: span and median contribution of IPv4-only domains.
    Fig8 {
        name: "fig8",
        describe: "span & median contribution of IPv4-only third-party domains",
        run: crate::server_exps::fig8
    },
    /// Fig 9: categories of heavy-hitter IPv4-only domains.
    Fig9 {
        name: "fig9",
        describe: "categories of high-span IPv4-only domains",
        run: crate::server_exps::fig9
    },
    /// Fig 10: the what-if adoption curve.
    Fig10 {
        name: "fig10",
        describe: "what-if curve: enabling IPv6 on IPv4-only domains by span",
        run: crate::server_exps::fig10
    },
    /// Fig 11: readiness of the top 15 clouds.
    Fig11 {
        name: "fig11",
        describe: "IPv6 readiness of the top 15 clouds",
        run: crate::cloud_exps::fig11
    },
    /// Fig 12: pairwise cloud comparison over multi-cloud tenants.
    Fig12 {
        name: "fig12",
        describe: "pairwise cloud comparison (Wilcoxon, Holm-Bonferroni)",
        run: crate::cloud_exps::fig12
    },
    /// Table 2: service-level adoption via CNAME identification.
    Table2 {
        name: "table2",
        describe: "IPv6 adoption by cloud service (CNAME identification)",
        run: crate::cloud_exps::table2
    },
    /// Table 3: full per-cloud breakdown.
    Table3 {
        name: "table3",
        describe: "per-cloud domain counts, full breakdown (appendix F)",
        run: crate::cloud_exps::table3
    },
    /// Fig 13: MSTL of the hourly IPv6 flow fraction at residence A.
    Fig13 {
        name: "fig13",
        describe: "MSTL decomposition of hourly IPv6 flow fraction, residence A",
        run: crate::client_exps::fig13
    },
    /// Fig 14: MSTL of daily byte fractions at residence B.
    Fig14 {
        name: "fig14",
        describe: "MSTL decomposition of daily IPv6 byte fraction, residence B",
        run: crate::client_exps::fig14
    },
    /// Fig 15: MSTL of daily byte fractions at residence C.
    Fig15 {
        name: "fig15",
        describe: "MSTL decomposition of daily IPv6 byte fraction, residence C",
        run: crate::client_exps::fig15
    },
    /// Fig 16: daily fraction CDFs at residences D and E.
    Fig16 {
        name: "fig16",
        describe: "daily IPv6 fraction CDFs at residences D, E",
        run: crate::client_exps::fig16
    },
    /// Fig 17: per-domain IPv6 fractions via reverse DNS.
    Fig17 {
        name: "fig17",
        describe: "per-domain (eTLD+1) IPv6 fractions via reverse DNS",
        run: crate::client_exps::fig17
    },
    /// Fig 18: heatmap of top IPv4-only domains by resource type.
    Fig18 {
        name: "fig18",
        describe: "top-20 IPv4-only domains by resource type",
        run: crate::server_exps::fig18
    },
    /// Ablation: main-page-only crawling.
    AblationMainpage {
        name: "ablation-mainpage",
        describe: "ablation: main-page-only crawl vs link-click crawl",
        run: crate::server_exps::ablation_mainpage
    },
    /// Ablation: first-party-only analysis.
    AblationFirstparty {
        name: "ablation-firstparty",
        describe: "ablation: first-party-only resource analysis",
        run: crate::server_exps::ablation_firstparty
    },
    /// Ablation: Happy Eyeballs parameters.
    AblationHe {
        name: "ablation-he",
        describe: "ablation: Happy Eyeballs degradation vs IPv4 race wins",
        run: crate::server_exps::ablation_he
    },
    /// Ablation: default-on policy counterfactual.
    AblationPolicy {
        name: "ablation-policy",
        describe: "ablation: default-on IPv6 policy for every cloud service",
        run: crate::cloud_exps::ablation_policy
    },
    /// Transition-technology cohort report.
    Transition {
        name: "transition",
        describe: "translated vs native traffic by access technology (5-line cohort)",
        run: crate::transition_exps::transition_report,
        export: crate::transition_exps::transition_export_report
    },
    /// NAT64 binding-pool exhaustion sweep.
    Nat64Exhaustion {
        name: "nat64-exhaustion",
        describe: "NAT64 binding-pool exhaustion under residential load",
        run: crate::transition_exps::nat64_exhaustion
    },
    /// Provider-shared CGN pool-size sweep.
    CgnSweep {
        name: "cgn-sweep",
        describe: "shared provider CGN gateway: pool size vs rejection rate",
        run: crate::transition_exps::cgn_sweep,
        export: crate::transition_exps::cgn_sweep_export_report
    },
    /// Per-AS flow fractions over a long-tail RIB.
    AsFractions {
        name: "as-fractions",
        describe: "per-AS IPv6 flow fractions over a routing-table-scale long-tail RIB",
        run: crate::asfrac_exps::as_fractions,
        export: crate::asfrac_exps::as_fractions_export_report
    },
    /// Adoption tiers over a provider-scale subscriber population.
    MillionSubs {
        name: "million-subs",
        describe: "adoption tiers over a million-subscriber population (spillable via --spill)",
        run: crate::millsubs_exps::million_subs
    },
    /// Per-class fault-injection sweep on the NAT64 line.
    FaultsSweep {
        name: "faults-sweep",
        describe: "fault classes in isolation: drop/rejection signatures on the NAT64 line",
        run: crate::fault_exps::faults_sweep
    },
    /// The combined stress timeline over the transition cohort.
    AdoptionUnderStress {
        name: "adoption-under-stress",
        describe: "transition cohort under combined DNS/gateway/path/RIB failures",
        run: crate::fault_exps::adoption_under_stress
    },
    /// Seed-robustness of the headline shares (excluded from `all`).
    Robustness {
        name: "robustness",
        describe: "headline shares across 5 seeds (excluded from `all`)",
        run: crate::server_exps::robustness,
        in_all: false
    },
}

/// Every registered scenario, in paper order.
pub fn registry() -> &'static [&'static dyn Scenario] {
    REGISTRY
}

/// Look up a scenario by registry name.
pub fn find(name: &str) -> Option<&'static dyn Scenario> {
    registry().iter().copied().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_described() {
        let mut seen = std::collections::BTreeSet::new();
        for s in registry() {
            assert!(seen.insert(s.name()), "duplicate scenario {}", s.name());
            assert!(!s.describe().is_empty(), "{} lacks a description", s.name());
            assert!(
                s.name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{} is not a CLI-safe name",
                s.name()
            );
        }
        assert!(seen.len() >= 30, "registry shrank to {}", seen.len());
    }

    #[test]
    fn find_resolves_registered_names_only() {
        assert_eq!(find("table1").map(|s| s.name()), Some("table1"));
        assert_eq!(find("as-fractions").map(|s| s.name()), Some("as-fractions"));
        assert!(find("fig99").is_none());
        assert!(find("").is_none());
    }

    #[test]
    fn all_excludes_only_multiworld_sweeps() {
        let excluded: Vec<&str> = registry()
            .iter()
            .filter(|s| !s.in_all())
            .map(|s| s.name())
            .collect();
        assert_eq!(excluded, ["robustness"]);
    }
}
