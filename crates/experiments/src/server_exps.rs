//! Server-side scenarios: Fig 5–10, Fig 18, the §4 ablations and the
//! seed-robustness sweep.

use crate::report::Report;
use crate::session::Session;
use dnssim::Name;
use ipv6view_core::classify::{classify_site, ClassCounts, SiteClass};
use ipv6view_core::influence::{InfluenceReport, TypeHeatmap};
use ipv6view_core::readiness::ReadinessBuckets;
use ipv6view_core::report::{render_cdf, TextTable};
use ipv6view_core::whatif::WhatIfCurve;
use netstats::Ecdf;
use std::collections::HashMap;
use webmodel::resource::DomainCategory;

/// Fig 5: classification of the top list across the three epochs.
pub fn fig5(s: &mut Session) -> Report {
    let mut r = Report::new("fig5");
    r.heading("Fig 5 — graded classification across epochs");
    let scale = s.site_scale();
    let epochs = s.world.web.epochs.len();
    let mut counts = Vec::new();
    for e in 0..epochs {
        counts.push(ClassCounts::from_report(s.crawl(e)));
    }
    let mut t = TextTable::new(vec![
        "Category",
        "Oct 2024",
        "Apr 2025",
        "Jul 2025",
        "paper Jul (scaled)",
    ]);
    // Paper's Jul 2025 column, scaled to this crawl size.
    let paper = |v: f64| format!("{:.0}", v * scale);
    let row = |t: &mut TextTable, label: &str, f: &dyn Fn(&ClassCounts) -> usize, p: f64| {
        t.row(vec![
            label.to_string(),
            f(&counts[0]).to_string(),
            f(&counts[1.min(epochs - 1)]).to_string(),
            f(&counts[epochs - 1]).to_string(),
            paper(p),
        ]);
    };
    row(&mut t, "Total", &|c| c.total, 100_000.0);
    row(
        &mut t,
        "Loading-Failure (NXDOMAIN)",
        &|c| c.nxdomain,
        13_376.0,
    );
    row(
        &mut t,
        "Loading-Failure (Others)",
        &|c| c.other_failure,
        4_802.0,
    );
    row(&mut t, "Connection Success", &|c| c.connected, 81_822.0);
    row(
        &mut t,
        "Unknown Primary Domain",
        &|c| c.unknown_primary,
        3.0,
    );
    row(
        &mut t,
        "IPv4-only (A-only domain)",
        &|c| c.v4_only,
        47_158.0,
    );
    row(&mut t, "AAAA-enabled Domain", &|c| c.aaaa_enabled, 34_661.0);
    row(&mut t, "IPv6-partial", &|c| c.partial, 24_384.0);
    row(&mut t, "IPv6-full", &|c| c.full, 10_277.0);
    row(&mut t, "Browser Used IPv4", &|c| c.browser_used_v4, 1_189.0);
    row(
        &mut t,
        "Browser Used IPv6 Only",
        &|c| c.browser_used_v6_only,
        9_088.0,
    );
    r.table(t);

    let last = &counts[epochs - 1];
    // A top-N crawl with N < 100k is *genuinely* more IPv6-ready than the
    // paper's full list (popular sites adopt more — Fig 6), so the fair
    // paper target integrates the Fig 6 rank profile over this crawl size.
    let (paper_v4, paper_full) = {
        let cal = &s.world.config.calibration;
        let n = s.world.web.sites.len();
        let (mut v4, mut full) = (0.0, 0.0);
        for rank in 1..=n {
            let (pv4, pfull) = cal.class_point_probs(rank);
            v4 += pv4;
            full += pfull;
        }
        (100.0 * v4 / n as f64, 100.0 * full / n as f64)
    };
    r.compare(
        format!("IPv4-only % of connected (paper @ top-{})", last.total),
        paper_v4,
        last.pct_of_connected(last.v4_only),
    );
    r.compare(
        format!("IPv6-partial % of connected (paper @ top-{})", last.total),
        100.0 - paper_v4 - paper_full,
        last.pct_of_connected(last.partial),
    );
    r.compare(
        format!("IPv6-full % of connected (paper @ top-{})", last.total),
        paper_full,
        last.pct_of_connected(last.full),
    );
    r.line(
        "(paper @ 100k: 57.6% v4-only / 29.8% partial / 12.6% full — run with --full to compare)",
    );
    r.compare(
        "binary metric (has AAAA) % — the baseline view",
        100.0 - paper_v4,
        last.binary_adoption_pct(),
    );
    let drift = counts[epochs - 1].pct_of_connected(counts[epochs - 1].full)
        - counts[0].pct_of_connected(counts[0].full);
    r.compare("IPv6-full drift Oct→Jul (pp)", 0.6, drift);
    r
}

/// Fig 6: readiness by popularity bucket.
pub fn fig6(s: &mut Session) -> Report {
    let mut r = Report::new("fig6");
    r.heading("Fig 6 — readiness of top-N sites");
    let n = s.world.web.sites.len();
    let bounds: Vec<usize> = [100usize, 1_000, 10_000, 100_000]
        .iter()
        .map(|b| (*b).min(n))
        .collect();
    let report = s.latest_crawl();
    let buckets = ReadinessBuckets::compute(report, &bounds);
    let mut t = TextTable::new(vec![
        "Top N",
        "IPv4-only %",
        "IPv6-partial %",
        "IPv6-full %",
    ]);
    for b in &buckets.buckets {
        t.row(vec![
            b.top_n.to_string(),
            format!("{:.1}", b.pct_v4_only),
            format!("{:.1}", b.pct_partial),
            format!("{:.1}", b.pct_full),
        ]);
    }
    r.table(t);
    r.compare("top-100 IPv6-full %", 30.1, buckets.buckets[0].pct_full);
    r.compare(
        "tail IPv6-full %",
        12.6,
        buckets.buckets.last().expect("buckets").pct_full,
    );
    r
}

/// Fig 7: per-partial-site IPv4-only counts and fractions.
pub fn fig7(s: &mut Session) -> Report {
    let mut r = Report::new("fig7");
    r.heading("Fig 7 — IPv4-only resources per IPv6-partial site");
    let psl = s.world.psl.clone();
    let inf = InfluenceReport::compute(s.latest_crawl(), &psl);
    let (c25, c50, c75) = inf.count_quantiles().expect("partial sites exist");
    let (f25, f50, f75) = inf.fraction_quantiles().expect("partial sites exist");
    r.compare("count p25", 3.0, c25);
    r.compare("count p50", 7.0, c50);
    r.compare("count p75", 21.0, c75);
    r.compare("fraction p25", 0.09, f25);
    r.compare("fraction p50", 0.21, f50);
    r.compare("fraction p75", 0.41, f75);
    let counts: Vec<f64> = inf.sites.iter().map(|x| x.v4only_count as f64).collect();
    let fracs: Vec<f64> = inf.sites.iter().map(|x| x.v4only_fraction).collect();
    r.raw(render_cdf(
        "IPv4-only resource count",
        &Ecdf::new(counts),
        6,
    ));
    r.raw(render_cdf(
        "IPv4-only resource fraction",
        &Ecdf::new(fracs),
        6,
    ));
    r
}

/// Fig 8: span and median contribution of IPv4-only domains.
pub fn fig8(s: &mut Session) -> Report {
    let mut r = Report::new("fig8");
    r.heading("Fig 8 — span & median contribution of IPv4-only domains");
    let psl = s.world.psl.clone();
    let inf = InfluenceReport::compute(s.latest_crawl(), &psl);
    let spans: Vec<f64> = inf.domains.iter().map(|d| d.span as f64).collect();
    let contribs: Vec<f64> = inf.domains.iter().map(|d| d.median_contribution).collect();
    r.line(format!(
        "{} IPv4-only domains used by partial sites",
        inf.domains.len()
    ));
    r.compare(
        "span p75",
        2.0,
        netstats::quantile(&spans, 0.75).expect("spans"),
    );
    r.compare(
        "span p95",
        20.0,
        netstats::quantile(&spans, 0.95).expect("spans"),
    );
    r.compare(
        "top span as fraction of partial sites",
        6_666.0 / 24_384.0,
        spans[0] / inf.sites.len() as f64,
    );
    r.compare(
        "median contribution p50",
        0.04,
        netstats::quantile(&contribs, 0.5).expect("contribs"),
    );
    r.compare(
        "median contribution p95",
        0.72,
        netstats::quantile(&contribs, 0.95).expect("contribs"),
    );
    r.raw(render_cdf("span", &Ecdf::new(spans), 6));
    r.raw(render_cdf("median contribution", &Ecdf::new(contribs), 6));
    r.line("top 5 spans:");
    for d in inf.domains.iter().take(5) {
        r.line(format!(
            "    {:<28} span {:>6}  median contribution {:.2}",
            d.domain.to_string(),
            d.span,
            d.median_contribution
        ));
    }
    r
}

/// Fig 9: categories of heavy-hitter IPv4-only domains.
pub fn fig9(s: &mut Session) -> Report {
    let mut r = Report::new("fig9");
    r.heading("Fig 9 — categories of high-span IPv4-only domains");
    let scale = s.site_scale();
    let psl = s.world.psl.clone();
    let category_of: HashMap<Name, DomainCategory> = s
        .world
        .web
        .third_parties
        .iter()
        .map(|t| (t.domain.clone(), t.category))
        .collect();
    let inf = InfluenceReport::compute(s.latest_crawl(), &psl);
    let min_span = ((100.0 * scale).ceil() as usize).max(2);
    let hh_count = inf.heavy_hitters(min_span).count();
    let cats = inf.heavy_hitter_categories(min_span, &category_of);
    r.line(format!(
        "{hh_count} domains with span ≥ {min_span} (paper: 396 with span ≥ 100 at 100k)"
    ));
    let total: usize = cats.iter().map(|(_, n)| n).sum();
    let mut t = TextTable::new(vec!["Category", "Count", "Share %", "paper share %"]);
    let paper_share = |c: DomainCategory| match c {
        DomainCategory::Ads => 45.0,
        DomainCategory::InformationTechnology => 15.0,
        DomainCategory::Trackers => 14.0,
        DomainCategory::ContentDelivery => 13.0,
        DomainCategory::Analytics => 9.0,
        _ => 4.0,
    };
    for (cat, n) in &cats {
        t.row(vec![
            cat.label().to_string(),
            n.to_string(),
            format!("{:.1}", 100.0 * *n as f64 / total as f64),
            format!("{:.0}", paper_share(*cat)),
        ]);
    }
    r.table(t);
    r
}

/// Fig 10: the what-if adoption curve.
pub fn fig10(s: &mut Session) -> Report {
    let mut r = Report::new("fig10");
    r.heading("Fig 10 — what-if: enabling IPv6 on IPv4-only domains by span");
    let psl = s.world.psl.clone();
    let inf = InfluenceReport::compute(s.latest_crawl(), &psl);
    let curve = WhatIfCurve::compute(&inf);
    let scale = s.site_scale();
    let top500 = ((500.0 * scale).ceil() as usize).max(1);
    r.compare(
        format!("fraction full after top {top500} domains (paper: top 500)"),
        0.25,
        curve.fraction_after(top500),
    );
    r.line(format!(
        "domains needed for ALL partial sites: {} of {} (paper: >15,000 of ~37.5k)",
        curve
            .domains_for_all
            .map(|d| d.to_string())
            .unwrap_or_else(|| "unreachable".into()),
        inf.domains.len()
    ));
    // Print the curve at decile steps.
    let mut t = TextTable::new(vec!["domains enabled", "sites full", "fraction"]);
    for i in 1..=10 {
        let k = (inf.domains.len() * i / 10).max(1);
        t.row(vec![
            k.to_string(),
            curve.became_full[k - 1].to_string(),
            format!("{:.3}", curve.fraction_after(k)),
        ]);
    }
    r.table(t);
    r
}

/// Fig 18: heatmap of top IPv4-only domains by resource type.
pub fn fig18(s: &mut Session) -> Report {
    let mut r = Report::new("fig18");
    r.heading("Fig 18 — top-20 IPv4-only domains × resource type");
    let psl = s.world.psl.clone();
    let hm = TypeHeatmap::compute(s.latest_crawl(), &psl, 20);
    let mut header = vec!["domain".to_string(), "(any)".to_string()];
    header.extend(hm.types.iter().map(|t| t.label().to_string()));
    let mut t = TextTable::new(header);
    for (row, domain) in hm.domains.iter().enumerate() {
        let mut cells = vec![domain.to_string(), hm.any[row].to_string()];
        cells.extend(hm.matrix[row].iter().map(|c| c.to_string()));
        t.row(cells);
    }
    r.table(t);
    r.line("(paper: doubleclick.net leads; images are the dominant type)");
    r
}

/// Ablation: main-page-only crawling (Bajpai & Schönwälder style).
pub fn ablation_mainpage(s: &mut Session) -> Report {
    let mut r = Report::new("ablation-mainpage");
    r.heading("Ablation — main-page-only crawl vs link-click crawl");
    let full = ClassCounts::from_report(s.latest_crawl());
    let main_only = ClassCounts::from_report(s.mainpage_crawl());
    r.compare(
        "IPv6-full % with link clicks (paper Apr: 12.5)",
        12.5,
        full.pct_of_connected(full.full),
    );
    r.compare(
        "IPv6-full % main page only (paper: 14.1)",
        14.1,
        main_only.pct_of_connected(main_only.full),
    );
    let jump = main_only.pct_of_connected(main_only.full) - full.pct_of_connected(full.full);
    r.compare("inflation from skipping clicks (pp)", 1.6, jump);
    r.line("(the paper notes this inflation is ~2.7× the real 9-month growth)");
    r
}

/// Ablation: first-party-only analysis (Dhamdhere et al. style).
pub fn ablation_firstparty(s: &mut Session) -> Report {
    let mut r = Report::new("ablation-firstparty");
    r.heading("Ablation — first-party-only resource analysis");
    let report = s.latest_crawl();
    let mut connected = 0usize;
    let mut full_grade = 0usize;
    let mut full_first_party_only = 0usize;
    for site in &report.sites {
        match classify_site(site) {
            SiteClass::V4Only | SiteClass::UnknownPrimary => connected += 1,
            SiteClass::Partial | SiteClass::Full => {
                connected += 1;
                let ok = site.outcome.as_ref().expect("classified success");
                if classify_site(site) == SiteClass::Full {
                    full_grade += 1;
                }
                let fp_v4only = ok
                    .resources
                    .iter()
                    .filter(|x| x.first_party && (x.has_a || x.has_aaaa))
                    .any(|x| !x.has_aaaa);
                if !fp_v4only {
                    full_first_party_only += 1;
                }
            }
            _ => {}
        }
    }
    let graded = 100.0 * full_grade as f64 / connected as f64;
    let fp_only = 100.0 * full_first_party_only as f64 / connected as f64;
    r.line(format!(
        "graded IPv6-full:            {graded:.1}% of connected"
    ));
    r.line(format!(
        "first-party-only 'full':     {fp_only:.1}% of connected"
    ));
    r.line(format!(
        "→ ignoring third-party resources overstates full readiness {:.1}×",
        fp_only / graded
    ));
    let psl = s.world.psl.clone();
    let inf = InfluenceReport::compute(s.latest_crawl(), &psl);
    r.compare(
        "% of partial sites partial due to first-party only",
        2.3,
        100.0 * inf.first_party_only_partial as f64 / inf.sites.len() as f64,
    );
    r
}

/// Ablation: Happy Eyeballs parameters vs the "Browser Used IPv4" rate.
pub fn ablation_he(s: &mut Session) -> Report {
    let mut r = Report::new("ablation-he");
    r.heading("Ablation — Happy Eyeballs degradation vs IPv4 race wins");
    use crawlsim::{crawl_epoch, CrawlConfig};
    let epoch = s.world.latest_epoch();
    let mut t = TextTable::new(vec![
        "v6 degraded rate",
        "browser used IPv4 %",
        "IPv6-full %",
    ]);
    for rate in [0.0, 0.05, 0.116, 0.25] {
        let cfg = CrawlConfig {
            v6_degraded_rate: rate,
            ..CrawlConfig::default()
        };
        let report = crawl_epoch(&s.world, epoch, &cfg);
        let c = ClassCounts::from_report(&report);
        let used_v4 = 100.0 * c.browser_used_v4 as f64 / c.full.max(1) as f64;
        t.row(vec![
            format!("{rate:.3}"),
            format!("{used_v4:.1}"),
            format!("{:.1}", c.pct_of_connected(c.full)),
        ]);
    }
    r.table(t);
    r.line(
        "(classification is invariant to the race outcome — only 'Browser Used IPv4' moves;\n\
         paper: 1,189/10,277 = 11.6% of full sites used IPv4 somewhere)",
    );
    r
}

/// Robustness: re-derive the headline shares across several seeds and show
/// mean ± sd — the qualitative findings must be properties of the
/// calibrated distributions, not of one lucky world.
pub fn robustness(s: &mut Session) -> Report {
    use worldgen::{World, WorldConfig};
    let sites = s.world.web.sites.len().min(5_000);
    let base_seed = s.world.config.seed;
    let mut r = Report::new("robustness");
    r.heading("Robustness — headline shares across 5 seeds");
    let mut v4 = Vec::new();
    let mut partial = Vec::new();
    let mut full = Vec::new();
    for i in 0..5u64 {
        let cfg = WorldConfig {
            seed: base_seed ^ (i.wrapping_mul(0x9e3779b97f4a7c15)),
            num_sites: sites,
            num_epochs: 3,
            long_tail_ases: 0,
            subscribers: 0,
            calibration: worldgen::Calibration::default(),
        };
        let world = World::generate(&cfg);
        let report = crawlsim::crawl_epoch(
            &world,
            world.latest_epoch(),
            &crawlsim::CrawlConfig::default(),
        );
        let c = ClassCounts::from_report(&report);
        v4.push(c.pct_of_connected(c.v4_only));
        partial.push(c.pct_of_connected(c.partial));
        full.push(c.pct_of_connected(c.full));
        r.line(format!(
            "seed {:>2}: v4-only {:.1}%  partial {:.1}%  full {:.1}%",
            i,
            v4.last().unwrap(),
            partial.last().unwrap(),
            full.last().unwrap()
        ));
    }
    let stat = |xs: &[f64]| {
        (
            netstats::mean(xs).unwrap_or(0.0),
            netstats::sample_std(xs).unwrap_or(0.0),
        )
    };
    let (mv, sv) = stat(&v4);
    let (mp, sp) = stat(&partial);
    let (mf, sf) = stat(&full);
    r.line(format!(
        "v4-only: {mv:.1} ± {sv:.2}   partial: {mp:.1} ± {sp:.2}   full: {mf:.1} ± {sf:.2}"
    ));
    r.line("(qualitative ordering v4-only > partial > full must hold for every seed)");
    r
}
