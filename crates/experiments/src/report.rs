//! Structured experiment output: [`Report`] and its [`Element`]s.
//!
//! Every [`Scenario`](crate::Scenario) returns one `Report` — an ordered
//! list of typed elements (headings, tables, paper-vs-measured comparison
//! rows, free text, exportable datasets). The three output paths all
//! consume the same value:
//!
//! * **stdout** — [`Report::render`] produces exactly the text the
//!   pre-library `repro` binary printed (byte-identical; verified against
//!   pre-refactor digests),
//! * **`--json`** — the report is `Serialize`, so `repro <scenario> --json`
//!   emits the structure itself,
//! * **`repro export`** — [`Element::Dataset`] members carry pre-serialized
//!   JSON datasets that [`export_all`](crate::export::export_all) writes to
//!   disk.
//!
//! Elements that have a natural data shape (tables, comparisons, datasets)
//! are structured; rendered-once artifacts like CDF sparklines stay as
//! [`Element::Raw`] blocks so the text form remains the stable contract.

use ipv6view_core::report::{compare, heading, TextTable};
use serde::Serialize;

/// One paper-vs-measured comparison row with relative error.
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    /// What is being compared.
    pub label: String,
    /// The paper's reported value.
    pub paper: f64,
    /// The reproduction's measured value.
    pub measured: f64,
}

/// A named exportable dataset: pre-serialized JSON with a stable file name.
/// Not rendered to stdout; written by `repro export` / read by `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct Dataset {
    /// File name under the export directory (e.g. `cgn_sweep.json`).
    pub name: String,
    /// The dataset body, already serialized (stable field order; same seed
    /// ⇒ byte-identical).
    pub json: String,
}

/// One ordered piece of a [`Report`].
#[derive(Debug, Clone)]
pub enum Element {
    /// A section heading (`\n=== title ===\n`).
    Heading(String),
    /// A pre-rendered block, printed verbatim (CDF curves, boxplot rows —
    /// artifacts whose textual form is the contract).
    Raw(String),
    /// One line of text (rendered with a trailing newline).
    Line(String),
    /// A paper-vs-measured comparison row.
    Compare(Comparison),
    /// An aligned table, carried as data and rendered on demand.
    Table(TextTable),
    /// An exportable dataset (skipped by stdout rendering).
    Dataset(Dataset),
}

// The vendored serde_derive only handles unit-variant enums, so the
// data-carrying variants serialize by hand as externally-tagged objects
// (`{"heading": ...}`), matching real serde's derive output.
impl Serialize for Element {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Element::Heading(t) => serializer.serialize_newtype_variant("Element", 0, "heading", t),
            Element::Raw(t) => serializer.serialize_newtype_variant("Element", 1, "raw", t),
            Element::Line(t) => serializer.serialize_newtype_variant("Element", 2, "line", t),
            Element::Compare(c) => serializer.serialize_newtype_variant("Element", 3, "compare", c),
            Element::Table(t) => serializer.serialize_newtype_variant("Element", 4, "table", t),
            Element::Dataset(d) => serializer.serialize_newtype_variant("Element", 5, "dataset", d),
        }
    }
}

/// The structured result of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// The scenario's registry name.
    pub scenario: String,
    /// Ordered output elements.
    pub elements: Vec<Element>,
}

impl Report {
    /// An empty report for `scenario`.
    pub fn new(scenario: impl Into<String>) -> Report {
        Report {
            scenario: scenario.into(),
            elements: Vec::new(),
        }
    }

    /// Append a section heading.
    pub fn heading(&mut self, title: impl Into<String>) -> &mut Self {
        self.elements.push(Element::Heading(title.into()));
        self
    }

    /// Append a pre-rendered block (printed verbatim; must carry its own
    /// trailing newline, as the `render_*` helpers do).
    pub fn raw(&mut self, block: impl Into<String>) -> &mut Self {
        self.elements.push(Element::Raw(block.into()));
        self
    }

    /// Append one line of text.
    pub fn line(&mut self, text: impl Into<String>) -> &mut Self {
        self.elements.push(Element::Line(text.into()));
        self
    }

    /// Append a paper-vs-measured comparison row.
    pub fn compare(&mut self, label: impl Into<String>, paper: f64, measured: f64) -> &mut Self {
        self.elements.push(Element::Compare(Comparison {
            label: label.into(),
            paper,
            measured,
        }));
        self
    }

    /// Append a table.
    pub fn table(&mut self, table: TextTable) -> &mut Self {
        self.elements.push(Element::Table(table));
        self
    }

    /// Attach an exportable dataset.
    pub fn dataset(&mut self, name: impl Into<String>, json: impl Into<String>) -> &mut Self {
        self.elements.push(Element::Dataset(Dataset {
            name: name.into(),
            json: json.into(),
        }));
        self
    }

    /// The attached datasets, in order.
    pub fn datasets(&self) -> impl Iterator<Item = &Dataset> {
        self.elements.iter().filter_map(|e| match e {
            Element::Dataset(d) => Some(d),
            _ => None,
        })
    }

    /// Render to the diffable text form (datasets are skipped).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for element in &self.elements {
            match element {
                Element::Heading(title) => out.push_str(&heading(title)),
                Element::Raw(block) => out.push_str(block),
                Element::Line(text) => {
                    out.push_str(text);
                    out.push('\n');
                }
                Element::Compare(c) => out.push_str(&compare(&c.label, c.paper, c.measured)),
                Element::Table(t) => out.push_str(&t.render()),
                Element::Dataset(_) => {}
            }
        }
        out
    }

    /// Serialize the whole report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports are serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_legacy_print_forms() {
        let mut r = Report::new("demo");
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        r.heading("Demo")
            .table(t.clone())
            .compare("metric", 1.0, 1.1)
            .line("trailing note")
            .raw("raw block\n")
            .dataset("demo.json", "{}");
        let expected = format!(
            "{}{}{}trailing note\nraw block\n",
            heading("Demo"),
            t.render(),
            compare("metric", 1.0, 1.1)
        );
        assert_eq!(r.render(), expected, "datasets must not render");
    }

    #[test]
    fn json_carries_structure_and_datasets() {
        let mut r = Report::new("demo");
        r.heading("H")
            .compare("m", 2.0, 3.0)
            .dataset("d.json", "[1]");
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v.get("scenario").and_then(|s| s.as_str()), Some("demo"));
        let elements = v.get("elements").and_then(|e| e.as_array()).expect("array");
        assert_eq!(elements.len(), 3);
        assert_eq!(
            elements[0].get("heading").and_then(|h| h.as_str()),
            Some("H")
        );
        let cmp = elements[1].get("compare").expect("tagged compare");
        assert_eq!(cmp.get("paper").and_then(|p| p.as_f64()), Some(2.0));
        assert_eq!(r.datasets().count(), 1);
        assert_eq!(r.datasets().next().unwrap().name, "d.json");
    }
}
