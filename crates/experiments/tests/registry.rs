//! Tier-1 registry sweep: every registered scenario must run at tiny scale
//! and produce a `Report` whose JSON is byte-identical at any
//! `threads` / `day-threads` setting — the determinism contract the whole
//! streaming pipeline is built on, asserted scenario-by-scenario.

use experiments::{find, registry, RunConfig, Session};

/// Run every registered scenario against one session (the `repro all`
/// shape: caches shared), returning `(name, report JSON)` pairs.
fn run_registry(config: RunConfig) -> Vec<(String, String)> {
    let mut session = Session::new(config);
    registry()
        .iter()
        .map(|scenario| {
            let report = scenario.run(&mut session);
            assert_eq!(
                report.scenario,
                scenario.name(),
                "report must carry its scenario name"
            );
            assert!(
                !report.elements.is_empty(),
                "{} produced an empty report",
                scenario.name()
            );
            assert!(
                !report.render().is_empty(),
                "{} rendered to nothing",
                scenario.name()
            );
            (scenario.name().to_string(), report.to_json())
        })
        .collect()
}

fn tiny() -> RunConfig {
    RunConfig::default().sites(200).seed(77).days(2)
}

#[test]
fn every_scenario_runs_and_is_thread_invariant() {
    let base = run_registry(tiny());
    assert!(base.len() >= 30, "registry shrank to {}", base.len());
    let fanned = run_registry(tiny().threads(3).day_threads(2));
    for ((name_a, json_a), (name_b, json_b)) in base.iter().zip(&fanned) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            json_a, json_b,
            "{name_a}: report JSON must be byte-identical across thread settings"
        );
    }
}

/// Spilling through columnar day-parts is a pure memory substitution:
/// every scenario's Report JSON must be byte-identical with `--spill` on
/// and off, even combined with thread fan-out — the flowstore replay
/// reproduces the in-memory stream exactly (each spill pass also
/// digest-verifies itself and panics on divergence).
#[test]
fn every_scenario_is_spill_invariant() {
    let dir = std::env::temp_dir().join(format!("registry-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let in_memory = run_registry(tiny());
    let spilled = run_registry(tiny().threads(3).day_threads(2).spill(&dir));
    for ((name_a, json_a), (name_b, json_b)) in in_memory.iter().zip(&spilled) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            json_a, json_b,
            "{name_a}: report JSON must be byte-identical with spilling on vs off"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The compiled (frozen multibit) LPM engine is a pure performance
/// substitution: every scenario's Report JSON must be byte-identical with
/// it enabled and disabled — the same contract the faults and obs planes
/// honor. A drifting answer here means the flattened table diverged from
/// the radix authority it was compiled from.
#[test]
fn every_scenario_is_engine_invariant() {
    let compiled = run_registry(tiny());
    let thawed = run_registry(tiny().compiled_lpm(false));
    for ((name_a, json_a), (name_b, json_b)) in compiled.iter().zip(&thawed) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            json_a, json_b,
            "{name_a}: report JSON must be byte-identical with the compiled LPM engine on vs off"
        );
    }
}

#[test]
fn reports_serialize_to_valid_structured_json() {
    let mut session = Session::new(tiny());
    // A table-heavy, a CDF-heavy and a dataset-bearing scenario cover every
    // element kind.
    for name in ["table1", "fig3", "cgn-sweep"] {
        let scenario = find(name).expect("registered");
        let report = scenario.run(&mut session);
        let value: serde_json::Value = serde_json::from_str(&report.to_json()).expect("valid JSON");
        assert_eq!(
            value.get("scenario").and_then(|v| v.as_str()),
            Some(name),
            "{name}"
        );
        let elements = value
            .get("elements")
            .and_then(|v| v.as_array())
            .expect("elements array");
        assert!(!elements.is_empty());
    }
    // Dataset elements carry valid, non-trivial JSON bodies.
    let sweep = find("cgn-sweep").expect("registered").run(&mut session);
    let datasets: Vec<_> = sweep.datasets().collect();
    assert_eq!(datasets.len(), 1);
    let rows: serde_json::Value =
        serde_json::from_str(&datasets[0].json).expect("dataset JSON parses");
    assert!(!rows.as_array().expect("rows").is_empty());
}

#[test]
fn export_reports_cover_the_published_datasets() {
    let mut session = Session::new(tiny());
    let mut names = Vec::new();
    for scenario in registry() {
        if let Some(report) = scenario.export_report(&mut session) {
            for d in report.datasets() {
                names.push(d.name.clone());
            }
        }
    }
    assert_eq!(
        names,
        [
            "transition_report.json",
            "cgn_sweep.json",
            "as_fractions.json"
        ],
        "scenario-owned export datasets changed"
    );
}
