//! Telemetry-plane determinism, asserted at the experiment layer:
//!
//! * the layout-invariant metrics fingerprint (span close counts, counters,
//!   gauges, histogram shapes — no nanoseconds) is identical across
//!   `threads` / `day_threads` layouts for the **whole registry**,
//! * the fault-plane stress scenarios produce the same per-cause casualty
//!   counters at any layout,
//! * enabling the plane never perturbs a scenario's report (zero-overhead
//!   contract: instrumentation observes, it does not participate).
//!
//! The obs plane is process-global, so every test serializes on one lock
//! and resets the plane before recording.

use experiments::{find, registry, RunConfig, Session};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tiny() -> RunConfig {
    RunConfig::default()
        .sites(200)
        .seed(77)
        .days(2)
        .metrics(true)
}

/// Run every registered scenario against one metered session (the
/// `repro all --metrics` shape) and return the layout-invariant fingerprint.
fn registry_fingerprint(config: RunConfig) -> String {
    let mut session = Session::new(config);
    for scenario in registry() {
        scenario.run(&mut session);
    }
    let fp = session.metrics().counts_fingerprint();
    obs::set_enabled(false);
    fp
}

#[test]
fn registry_metrics_fingerprint_is_layout_invariant() {
    let _guard = locked();
    let base = registry_fingerprint(tiny());
    assert!(
        base.contains("counter synth.flows_emitted"),
        "sweep recorded no flow counters:\n{base}"
    );
    assert!(
        base.contains("hist synth.flow_bytes"),
        "sweep recorded no flow-size distribution"
    );
    let fanned = registry_fingerprint(tiny().threads(3).day_threads(2));
    assert_eq!(
        base, fanned,
        "metrics fingerprint must be identical across thread layouts"
    );
}

/// The two fault-plane scenarios, explicitly: injected-fault and per-cause
/// drop counters are a function of the workload, not the thread layout.
#[test]
fn stress_scenario_counters_are_layout_invariant() {
    let _guard = locked();
    let watched = [
        "drops.dns-failure",
        "drops.gateway-outage",
        "drops.pool-exhausted",
        "drops.path-loss",
        "dns.injected_servfail",
        "dns.injected_timeout",
        "synth.flows_emitted",
    ];
    for name in ["faults-sweep", "adoption-under-stress"] {
        let scenario = find(name).expect("registered");
        let mut counts: Vec<Vec<Option<u64>>> = Vec::new();
        for config in [tiny(), tiny().threads(3).day_threads(2)] {
            let mut session = Session::new(config);
            scenario.run(&mut session);
            let metrics = session.metrics();
            counts.push(watched.iter().map(|w| metrics.counter(w)).collect());
            obs::set_enabled(false);
        }
        assert_eq!(
            counts[0], counts[1],
            "{name}: fault counters diverged across layouts ({watched:?})"
        );
        // The first four watched names are the per-cause drop counters.
        let total_drops: u64 = counts[0][..4].iter().flatten().sum();
        assert!(
            total_drops > 0,
            "{name}: expected the fault plane to drop something"
        );
    }
}

/// Zero-overhead contract: the same scenario, same seed, produces a
/// byte-identical report whether the plane is disabled or recording.
#[test]
fn enabled_plane_never_perturbs_reports() {
    let _guard = locked();
    for name in ["table1", "transition", "faults-sweep"] {
        let scenario = find(name).expect("registered");
        let dark = {
            let mut session = Session::new(tiny().metrics(false));
            assert!(!obs::enabled(), "plane must stay dark without the flag");
            scenario.run(&mut session).to_json()
        };
        let lit = {
            let mut session = Session::new(tiny());
            let report = scenario.run(&mut session).to_json();
            assert!(
                !session.metrics().is_empty(),
                "{name}: plane was on but recorded nothing"
            );
            obs::set_enabled(false);
            report
        };
        assert_eq!(
            dark, lit,
            "{name}: telemetry must observe without perturbing"
        );
    }
}
