//! Property and end-to-end tests for the transition stack: RFC 6052
//! round-trips over every legal prefix length, DNS64 shadowing rules, and
//! a full Happy Eyeballs race over a synthesized `AAAA` through the NAT64
//! gateway.

use dnssim::{Name, Resolver, ZoneDb};
use iputil::prefix::Prefix6;
use iputil::Family;
use netsim::{Network, PathProfile, MILLIS};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use transition::{Dns64, Nat64Prefix};

/// A random valid RFC 6052 prefix: one of the six legal lengths with the
/// reserved octet u zeroed out of the base bits.
fn arb_nat64_prefix() -> impl Strategy<Value = Nat64Prefix> {
    (any::<u128>(), 0usize..6).prop_map(|(bits, len_idx)| {
        let len = [32u8, 40, 48, 56, 64, 96][len_idx];
        // Zero octet u (address bits 64..72) so every length validates.
        let bits = bits & !(0xffu128 << 56);
        Nat64Prefix::new(Prefix6::new(Ipv6Addr::from(bits), len)).expect("valid prefix")
    })
}

proptest! {
    /// Embed then extract is the identity for every prefix length, and the
    /// embedded address always lies under the prefix with octet u zero.
    #[test]
    fn rfc6052_roundtrips_all_lengths(
        p in arb_nat64_prefix(),
        v4_bits in any::<u32>(),
    ) {
        let v4 = Ipv4Addr::from(v4_bits);
        let v6 = p.embed(v4);
        prop_assert!(p.contains(v6), "{v6} must lie under {p}");
        prop_assert_eq!(p.extract(v6), Some(v4), "prefix {}", p);
        // Octet u (bits 64..72) stays zero regardless of payload.
        prop_assert_eq!((u128::from(v6) >> 56) & 0xff, 0, "octet u for {}", p);
    }

    /// Two distinct IPv4 addresses never collide under the same prefix
    /// (embedding is injective).
    #[test]
    fn rfc6052_is_injective(
        p in arb_nat64_prefix(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        if a != b {
            prop_assert_ne!(p.embed(Ipv4Addr::from(a)), p.embed(Ipv4Addr::from(b)));
        }
    }

    /// DNS64 synthesizes exactly when there is no native AAAA, and a native
    /// AAAA — whenever one exists — is returned verbatim, never shadowed by
    /// a synthesized answer.
    #[test]
    fn synthesized_aaaa_never_shadows_native(
        p in arb_nat64_prefix(),
        v4s in proptest::collection::vec(any::<u32>(), 1..4),
        native6 in proptest::collection::vec(any::<u128>(), 0..3),
    ) {
        let mut db = ZoneDb::new();
        let name: Name = "svc.test".into();
        for bits in &v4s {
            db.add_a(name.clone(), Ipv4Addr::from(*bits));
        }
        for bits in &native6 {
            db.add_aaaa(name.clone(), Ipv6Addr::from(*bits));
        }
        let dns64 = Dns64::new(Resolver::new(&db), p);
        let (out, synthesized) = dns64.resolve_addrs_traced(&name, Family::V6);
        let answers = out.addresses();
        if native6.is_empty() {
            prop_assert!(synthesized);
            prop_assert_eq!(answers.len(), {
                let mut uniq = v4s.clone();
                uniq.sort_unstable();
                uniq.dedup();
                uniq.len()
            });
            for a in answers {
                let IpAddr::V6(v6) = a else { panic!("AAAA answer must be v6") };
                let v4 = p.extract(*v6).expect("under the prefix");
                prop_assert!(v4s.contains(&u32::from(v4)));
            }
        } else {
            // Native AAAA present: passthrough, nothing synthesized.
            prop_assert!(!synthesized);
            for a in answers {
                let IpAddr::V6(v6) = a else { panic!("AAAA answer must be v6") };
                prop_assert!(
                    native6.contains(&u128::from(*v6)),
                    "answer {} is not one of the native records", v6
                );
            }
        }
    }
}

/// The acceptance-path test: an IPv6-only client resolves a *v4-only*
/// service through DNS64, Happy Eyeballs races over the synthesized AAAA,
/// and the winning connection lands on the NAT64 gateway's prefix — from
/// which the true IPv4 destination is recoverable.
#[test]
fn happy_eyeballs_reaches_v4_only_service_through_nat64() {
    let mut db = ZoneDb::new();
    let v4a: Ipv4Addr = "198.51.100.10".parse().unwrap();
    let v4b: Ipv4Addr = "198.51.100.11".parse().unwrap();
    db.add_a("legacy.test".into(), v4a);
    db.add_a("legacy.test".into(), v4b);

    let prefix = Nat64Prefix::well_known();
    let dns64 = Dns64::new(Resolver::new(&db), prefix);

    // IPv6-only access: the IPv4 family default is black-holed; the NAT64
    // prefix is reachable (slightly slower: the gateway detour).
    let mut net = Network::dual_stack_ms(20);
    net.set_family_default(Family::V4, PathProfile::unreachable());
    net.set_prefix6(
        prefix.prefix(),
        PathProfile {
            rtt: 28 * MILLIS,
            loss: 0.0,
            reachable: true,
        },
    );

    let he = happyeyeballs::HappyEyeballs::default();
    let mut rng = SmallRng::seed_from_u64(42);
    let report = he.connect(&net, &dns64, &mut rng, &"legacy.test".into(), 0);

    assert!(report.connected(), "the race must succeed: {report:?}");
    assert_eq!(report.winning_family(), Some(Family::V6));
    let winner = report.winner.expect("connected");
    let IpAddr::V6(dst6) = winner.addr else {
        panic!("winner must be IPv6")
    };
    assert!(prefix.contains(dst6), "winner rides the NAT64 prefix");
    let recovered = prefix.extract(dst6).expect("RFC 6052 payload");
    assert!(
        recovered == v4a || recovered == v4b,
        "the gateway forwards to one of the service's real IPv4 endpoints"
    );
    // The v4 resolution succeeded (A records exist) but no IPv4 attempt can
    // ever win on this network.
    assert!(report.v4_resolution.is_success());
    assert!(report.attempts.iter().all(|a| a.family == Family::V6
        || !matches!(a.outcome, netsim::ConnectOutcome::Connected { .. })));
}

/// The pathological flip side: the same v4-only service on a *dual-stack*
/// client behind a DNS64 resolver looks IPv6-enabled, so Happy Eyeballs
/// prefers the translated path even though a faster native IPv4 path
/// exists. (RFC 6147 §5.1.6's motivation for never shadowing native AAAA —
/// here there is none to protect, and the preference costs the detour.)
#[test]
fn dns64_makes_v4_only_service_win_over_v6() {
    let mut db = ZoneDb::new();
    let v4: Ipv4Addr = "198.51.100.10".parse().unwrap();
    db.add_a("legacy.test".into(), v4);

    let prefix = Nat64Prefix::well_known();
    let dns64 = Dns64::new(Resolver::new(&db), prefix);

    // Dual-stack network: native IPv4 is *faster* (10 ms) than the
    // translated path (40 ms), yet IPv6 preference wins the race because
    // both answers arrive together and v6 connects before the 250 ms
    // stagger ever starts an IPv4 attempt.
    let mut net = Network::dual_stack_ms(10);
    net.set_prefix6(
        prefix.prefix(),
        PathProfile {
            rtt: 40 * MILLIS,
            loss: 0.0,
            reachable: true,
        },
    );

    let he = happyeyeballs::HappyEyeballs::default();
    let mut rng = SmallRng::seed_from_u64(7);
    let report = he.connect(&net, &dns64, &mut rng, &"legacy.test".into(), 0);
    assert_eq!(
        report.winning_family(),
        Some(Family::V6),
        "DNS64 makes the v4-only service look v6 and the preference sticks"
    );
    assert_eq!(
        report.attempts_of(Family::V4),
        0,
        "the faster native v4 path is never even attempted"
    );

    // Without DNS64 the same client uses plain IPv4.
    let plain = Resolver::new(&db);
    let report2 = he.connect(&net, &plain, &mut rng, &"legacy.test".into(), 0);
    assert_eq!(report2.winning_family(), Some(Family::V4));
}
