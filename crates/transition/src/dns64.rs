//! DNS64 (RFC 6147): synthesizing `AAAA` answers from `A` records.
//!
//! An IPv6-only access network pairs a NAT64 gateway with a DNS64 recursive
//! resolver: when a queried name has no native `AAAA` record but does have an
//! `A` record, the resolver *synthesizes* `AAAA` answers by embedding each
//! IPv4 address under the NAT64 prefix (RFC 6052). Clients then believe the
//! destination is IPv6-reachable and connect through the gateway.
//!
//! Two RFC 6147 rules matter for measurement fidelity and are enforced here:
//!
//! * **Native answers are never shadowed** — if any real `AAAA` exists, it is
//!   returned untouched and nothing is synthesized (§5.1.6).
//! * **NXDOMAIN is not synthesized around** — synthesis applies only to the
//!   empty-answer (NODATA) case; a name that does not exist stays NXDOMAIN.

use crate::rfc6052::Nat64Prefix;
use dnssim::{AddrsOutcome, Name, ResolveAddrs, Resolver};
use iputil::Family;
use std::net::IpAddr;

/// A DNS64 view over a stub [`Resolver`].
#[derive(Debug, Clone, Copy)]
pub struct Dns64<'a> {
    resolver: Resolver<'a>,
    prefix: Nat64Prefix,
}

impl<'a> Dns64<'a> {
    /// Wrap `resolver`, synthesizing under `prefix`.
    pub fn new(resolver: Resolver<'a>, prefix: Nat64Prefix) -> Dns64<'a> {
        Dns64 { resolver, prefix }
    }

    /// The translation prefix used for synthesis.
    pub fn prefix(&self) -> Nat64Prefix {
        self.prefix
    }

    /// Resolve like [`ResolveAddrs::resolve_addrs`], also reporting whether
    /// the answer was synthesized (`true` only for `AAAA` answers built from
    /// `A` records).
    pub fn resolve_addrs_traced(&self, name: &Name, family: Family) -> (AddrsOutcome, bool) {
        let native = self.resolver.resolve_addrs(name, family);
        if family == Family::V4 {
            return (native, false);
        }
        match native {
            // Native AAAA answers are never shadowed.
            AddrsOutcome::Answers(_) => (native, false),
            // NODATA: the name exists but has no AAAA — the synthesis case.
            AddrsOutcome::NoData => match self.resolver.resolve_addrs(name, Family::V4) {
                AddrsOutcome::Answers(v4s) => {
                    let synth: Vec<IpAddr> = v4s
                        .iter()
                        .map(|a| match a {
                            IpAddr::V4(v4) => IpAddr::V6(self.prefix.embed(*v4)),
                            IpAddr::V6(_) => unreachable!("A query returns IPv4 only"),
                        })
                        .collect();
                    (AddrsOutcome::Answers(synth), true)
                }
                // No A either (or the A path failed): keep the AAAA outcome.
                _ => (AddrsOutcome::NoData, false),
            },
            // NXDOMAIN / SERVFAIL / timeout pass through unchanged.
            other => (other, false),
        }
    }
}

impl ResolveAddrs for Dns64<'_> {
    fn resolve_addrs(&self, name: &Name, family: Family) -> AddrsOutcome {
        self.resolve_addrs_traced(name, family).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::ZoneDb;
    use std::net::Ipv6Addr;

    fn db() -> ZoneDb {
        let mut db = ZoneDb::new();
        db.add_a("dual.test".into(), "192.0.2.1".parse().unwrap());
        db.add_aaaa("dual.test".into(), "2001:db8::1".parse().unwrap());
        db.add_a("v4only.test".into(), "192.0.2.2".parse().unwrap());
        db.add_a("v4only.test".into(), "192.0.2.3".parse().unwrap());
        db.add_aaaa("v6only.test".into(), "2001:db8::2".parse().unwrap());
        db
    }

    fn dns64(db: &ZoneDb) -> Dns64<'_> {
        Dns64::new(Resolver::new(db), Nat64Prefix::well_known())
    }

    #[test]
    fn synthesizes_aaaa_for_v4_only_names() {
        let db = db();
        let d = dns64(&db);
        let (out, synth) = d.resolve_addrs_traced(&"v4only.test".into(), Family::V6);
        assert!(synth);
        let addrs = out.addresses();
        assert_eq!(addrs.len(), 2, "one synthesized AAAA per A record");
        for a in addrs {
            match a {
                IpAddr::V6(v6) => {
                    assert!(d.prefix().contains(*v6));
                    let v4 = d.prefix().extract(*v6).unwrap();
                    assert!(matches!(u32::from(v4), 0xc0000202 | 0xc0000203));
                }
                IpAddr::V4(_) => panic!("AAAA answer must be IPv6"),
            }
        }
    }

    #[test]
    fn native_aaaa_never_shadowed() {
        let db = db();
        let d = dns64(&db);
        let (out, synth) = d.resolve_addrs_traced(&"dual.test".into(), Family::V6);
        assert!(!synth);
        assert_eq!(
            out.addresses(),
            ["2001:db8::1".parse::<IpAddr>().unwrap()],
            "native AAAA passes through untouched"
        );
        let (v6only, synth2) = d.resolve_addrs_traced(&"v6only.test".into(), Family::V6);
        assert!(!synth2);
        assert!(v6only.is_success());
    }

    #[test]
    fn nxdomain_is_not_synthesized() {
        let db = db();
        let d = dns64(&db);
        let (out, synth) = d.resolve_addrs_traced(&"missing.test".into(), Family::V6);
        assert!(!synth);
        assert_eq!(out, AddrsOutcome::NxDomain);
    }

    #[test]
    fn a_queries_pass_through() {
        let db = db();
        let d = dns64(&db);
        let (out, synth) = d.resolve_addrs_traced(&"v4only.test".into(), Family::V4);
        assert!(!synth);
        assert_eq!(out.addresses().len(), 2);
        // v6-only name has no A and DNS64 does not invent one (no "DNS46").
        let (none, _) = d.resolve_addrs_traced(&"v6only.test".into(), Family::V4);
        assert_eq!(none, AddrsOutcome::NoData);
    }

    #[test]
    fn synthesized_addresses_round_trip_through_prefix() {
        let db = db();
        let d = dns64(&db);
        let out = ResolveAddrs::resolve_addrs(&d, &"v4only.test".into(), Family::V6);
        for a in out.addresses() {
            let IpAddr::V6(v6) = a else { panic!("v6") };
            let v4 = d.prefix().extract(*v6).expect("under prefix");
            assert_eq!(d.prefix().embed(v4), *v6);
        }
        let _: Ipv6Addr = d.prefix().embed("192.0.2.2".parse().unwrap());
    }
}
