//! The access-technology dimension of a residence.
//!
//! The paper argues adoption is non-binary; transition technologies are
//! *how* the middle of that spectrum is engineered in practice. Each variant
//! here is one deployed answer to "what does this access network give the
//! subscriber natively, and what is translated or tunneled?".

use serde::Serialize;

/// How a residence's access network provides IPv4 and IPv6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum AccessTech {
    /// Native IPv4 and native IPv6 side by side (the classic dual-stack the
    /// paper's residences A–E run).
    NativeDualStack,
    /// Legacy IPv4-only access; no IPv6 at all.
    V4Only,
    /// IPv6-only access with NAT64 + DNS64 in the provider network: IPv4
    /// destinations are reached via synthesized `AAAA` records and the
    /// stateful gateway. Hosts have no IPv4 stack on the wire.
    Ipv6OnlyNat64,
    /// 464XLAT (RFC 6877): IPv6-only access plus a customer-side CLAT, so
    /// IPv4-literal applications still get a v4 socket; everything crosses
    /// the wire as IPv6 and legacy traffic is translated twice (CLAT→PLAT).
    Xlat464,
    /// DS-Lite (RFC 6333): native IPv6 with IPv4-as-a-service — v4 packets
    /// ride an IPv4-in-IPv6 softwire to a carrier AFTR running NAT44.
    DsLite,
}

impl AccessTech {
    /// Short label used in report tables and export keys.
    pub fn label(self) -> &'static str {
        match self {
            AccessTech::NativeDualStack => "dual-stack",
            AccessTech::V4Only => "v4-only",
            AccessTech::Ipv6OnlyNat64 => "v6only+nat64",
            AccessTech::Xlat464 => "464xlat",
            AccessTech::DsLite => "ds-lite",
        }
    }

    /// Does the host see a native (untranslated, untunneled) IPv4 path?
    pub fn native_v4(self) -> bool {
        matches!(self, AccessTech::NativeDualStack | AccessTech::V4Only)
    }

    /// Does the host have IPv6 connectivity at all?
    pub fn has_v6(self) -> bool {
        !matches!(self, AccessTech::V4Only)
    }

    /// Is the access network IPv6-only on the wire (every flow leaves the
    /// residence as IPv6)?
    pub fn v6_only_wire(self) -> bool {
        matches!(self, AccessTech::Ipv6OnlyNat64 | AccessTech::Xlat464)
    }

    /// Does the provisioning include a DNS64 resolver?
    pub fn uses_dns64(self) -> bool {
        self.v6_only_wire()
    }

    /// Does reaching the IPv4 Internet consume stateful gateway bindings
    /// (NAT64 for the v6-only techs, the AFTR's NAT44 for DS-Lite)?
    pub fn uses_gateway(self) -> bool {
        matches!(
            self,
            AccessTech::Ipv6OnlyNat64 | AccessTech::Xlat464 | AccessTech::DsLite
        )
    }

    /// Every modeled technology, in report order.
    pub fn all() -> [AccessTech; 5] {
        [
            AccessTech::NativeDualStack,
            AccessTech::V4Only,
            AccessTech::Ipv6OnlyNat64,
            AccessTech::Xlat464,
            AccessTech::DsLite,
        ]
    }
}

impl std::fmt::Display for AccessTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_consistent() {
        for t in AccessTech::all() {
            if t.v6_only_wire() {
                assert!(t.has_v6());
                assert!(!t.native_v4());
                assert!(t.uses_dns64());
                assert!(t.uses_gateway());
            }
            if t.native_v4() {
                assert!(!t.uses_gateway() || t == AccessTech::DsLite);
            }
        }
        assert!(AccessTech::DsLite.has_v6());
        assert!(!AccessTech::DsLite.native_v4());
        assert!(AccessTech::DsLite.uses_gateway());
        assert!(!AccessTech::DsLite.uses_dns64());
        assert!(!AccessTech::V4Only.has_v6());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            AccessTech::all().iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(AccessTech::Xlat464.to_string(), "464xlat");
    }
}
