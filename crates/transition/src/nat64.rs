//! Stateful translators and tunnel concentrators: NAT64, the 464XLAT CLAT,
//! and the DS-Lite AFTR.
//!
//! All three carrier-side elements share one scarce resource: a pool of
//! IPv4 addresses × ports from which per-flow **bindings** are allocated.
//! When the binding table is full, new flows are rejected until old bindings
//! time out — the exhaustion scenario studied in the transition-technology
//! comparison literature (CGN port exhaustion under heavy residential load).
//! [`BindingTable`] models that resource; [`Nat64Gateway`] adds the RFC 6052
//! address mapping on top, and [`Aftr`] reuses it as a plain NAT44 for
//! tunneled DS-Lite traffic.

use crate::rfc6052::Nat64Prefix;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Microseconds (matches the `netsim`/`flowmon` clock).
pub type Time = u64;

/// Capacity/timeout parameters of a binding table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GatewayConfig {
    /// Maximum simultaneous bindings (pool addresses × usable ports; the
    /// suite's sampled flow volumes make a few thousand "large").
    pub capacity: usize,
    /// How long a binding outlives its flow before the port is reusable
    /// (conntrack-style timeout), in microseconds.
    pub binding_timeout: Time,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            capacity: 4096,
            binding_timeout: 120 * 1_000_000,
        }
    }
}

/// Why a translator refused a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// Every pool port is bound; the flow is dropped (the client sees a
    /// connection failure).
    PoolExhausted,
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::PoolExhausted => write!(f, "translator port pool exhausted"),
        }
    }
}

impl std::error::Error for BindError {}

/// Lifetime counters of a binding table (exported with experiment results).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct GatewayStats {
    /// Bindings granted.
    pub granted: u64,
    /// Flows rejected because the pool was exhausted.
    pub rejected: u64,
    /// Highest simultaneous binding count observed.
    pub peak_active: usize,
}

impl GatewayStats {
    /// Fraction of flows rejected (0 when nothing was offered).
    pub fn rejection_rate(&self) -> f64 {
        let total = self.granted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }

    /// Fold another table's counters into this one (used when per-day
    /// gateway instances are merged into one run-level summary).
    pub fn absorb(&mut self, other: GatewayStats) {
        self.granted += other.granted;
        self.rejected += other.rejected;
        self.peak_active = self.peak_active.max(other.peak_active);
    }
}

/// The shared port-binding resource: a capacity-bounded set of bindings with
/// timeout-based expiry, driven by flow start/end times.
///
/// Expiry is lazy: each [`BindingTable::bind`] first releases bindings whose
/// expiry precedes the new flow's start. Synthesis feeds flows in roughly
/// increasing start order; small inversions inside an hour only delay reuse
/// by the inversion amount, keeping the model deterministic without a global
/// sort.
#[derive(Debug, Clone, Default)]
pub struct BindingTable {
    config: GatewayConfig,
    /// Expiry times of active bindings (min-heap).
    active: BinaryHeap<Reverse<Time>>,
    stats: GatewayStats,
}

impl BindingTable {
    /// An empty table with the given limits.
    pub fn new(config: GatewayConfig) -> BindingTable {
        BindingTable {
            config,
            active: BinaryHeap::new(),
            stats: GatewayStats::default(),
        }
    }

    /// Try to bind a flow lasting `[start, end]`.
    pub fn bind(&mut self, start: Time, end: Time) -> Result<(), BindError> {
        while let Some(&Reverse(expiry)) = self.active.peek() {
            if expiry <= start {
                self.active.pop();
            } else {
                break;
            }
        }
        if self.active.len() >= self.config.capacity {
            self.stats.rejected += 1;
            return Err(BindError::PoolExhausted);
        }
        self.active.push(Reverse(
            end.max(start).saturating_add(self.config.binding_timeout),
        ));
        self.stats.granted += 1;
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        Ok(())
    }

    /// Currently active bindings.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// The configured limits.
    pub fn config(&self) -> GatewayConfig {
        self.config
    }

    /// Resize the pool in place (fault-plane shrink/restore). Bindings
    /// already held above a shrunken capacity persist until they expire;
    /// only new binds see the new limit — so shrink followed by restore
    /// replays deterministically.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.config.capacity = capacity;
    }
}

/// A stateful NAT64 gateway (RFC 6146): IPv6-only clients reach the IPv4
/// Internet through it. Destinations are RFC 6052 addresses under the
/// gateway's prefix; each flow consumes one pool binding.
#[derive(Debug, Clone)]
pub struct Nat64Gateway {
    prefix: Nat64Prefix,
    table: BindingTable,
}

impl Nat64Gateway {
    /// A gateway translating under `prefix`.
    pub fn new(prefix: Nat64Prefix, config: GatewayConfig) -> Nat64Gateway {
        Nat64Gateway {
            prefix,
            table: BindingTable::new(config),
        }
    }

    /// The gateway's translation prefix.
    pub fn prefix(&self) -> Nat64Prefix {
        self.prefix
    }

    /// Admit a flow towards IPv4 destination `dst4` lasting `[start, end]`:
    /// returns the IPv6 address the client actually dials (the RFC 6052
    /// mapping of `dst4`), or [`BindError::PoolExhausted`].
    pub fn translate(
        &mut self,
        dst4: Ipv4Addr,
        start: Time,
        end: Time,
    ) -> Result<Ipv6Addr, BindError> {
        self.table.bind(start, end)?;
        Ok(self.prefix.embed(dst4))
    }

    /// Reverse mapping for return traffic / flow classification.
    pub fn untranslate(&self, dst6: Ipv6Addr) -> Option<Ipv4Addr> {
        self.prefix.extract(dst6)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GatewayStats {
        self.table.stats()
    }

    /// Currently active bindings.
    pub fn active_count(&self) -> usize {
        self.table.active_count()
    }
}

/// The customer-side translator of 464XLAT (RFC 6877): a stateless NAT46 in
/// the CPE/host that lets IPv4-only applications open IPv4 sockets over an
/// IPv6-only access network. The CLAT maps the app's IPv4 destination to the
/// provider-side translator's (PLAT = NAT64) prefix; state lives only in the
/// PLAT, so the CLAT itself cannot exhaust.
#[derive(Debug, Clone, Copy)]
pub struct Clat {
    plat_prefix: Nat64Prefix,
}

impl Clat {
    /// A CLAT forwarding to a PLAT that translates under `plat_prefix`.
    pub fn new(plat_prefix: Nat64Prefix) -> Clat {
        Clat { plat_prefix }
    }

    /// The destination the CLAT rewrites an IPv4 packet towards.
    pub fn to_plat(&self, dst4: Ipv4Addr) -> Ipv6Addr {
        self.plat_prefix.embed(dst4)
    }

    /// The PLAT prefix this CLAT uses.
    pub fn plat_prefix(&self) -> Nat64Prefix {
        self.plat_prefix
    }
}

/// The DS-Lite AFTR (RFC 6333): terminates the B4's IPv4-in-IPv6 softwire
/// and runs carrier-grade NAT44 on the inner IPv4 flows. No family
/// translation happens — the scarce resource is the same binding pool.
#[derive(Debug, Clone, Default)]
pub struct Aftr {
    table: BindingTable,
}

impl Aftr {
    /// An AFTR with the given CGN limits.
    pub fn new(config: GatewayConfig) -> Aftr {
        Aftr {
            table: BindingTable::new(config),
        }
    }

    /// Admit a tunneled IPv4 flow lasting `[start, end]`.
    pub fn admit(&mut self, start: Time, end: Time) -> Result<(), BindError> {
        self.table.bind(start, end)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GatewayStats {
        self.table.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(capacity: usize, timeout: Time) -> GatewayConfig {
        GatewayConfig {
            capacity,
            binding_timeout: timeout,
        }
    }

    #[test]
    fn bindings_grant_until_capacity_then_reject() {
        let mut t = BindingTable::new(tiny(2, 10));
        assert!(t.bind(0, 100).is_ok());
        assert!(t.bind(0, 100).is_ok());
        assert_eq!(t.bind(0, 100), Err(BindError::PoolExhausted));
        let s = t.stats();
        assert_eq!((s.granted, s.rejected, s.peak_active), (2, 1, 2));
    }

    #[test]
    fn bindings_expire_after_timeout() {
        let mut t = BindingTable::new(tiny(1, 10));
        assert!(t.bind(0, 100).is_ok());
        // Still bound at end + timeout - 1.
        assert_eq!(t.bind(109, 200), Err(BindError::PoolExhausted));
        // Free at end + timeout.
        assert!(t.bind(110, 200).is_ok());
        assert_eq!(t.active_count(), 1);
    }

    #[test]
    fn nat64_translates_and_untranslates() {
        let mut g = Nat64Gateway::new(Nat64Prefix::well_known(), GatewayConfig::default());
        let dst4: Ipv4Addr = "198.51.100.7".parse().unwrap();
        let dst6 = g.translate(dst4, 0, 1_000_000).unwrap();
        assert!(g.prefix().contains(dst6));
        assert_eq!(g.untranslate(dst6), Some(dst4));
        assert_eq!(g.untranslate("2001:db8::1".parse().unwrap()), None);
        assert_eq!(g.stats().granted, 1);
    }

    #[test]
    fn nat64_exhaustion_counts_rejections() {
        let mut g = Nat64Gateway::new(Nat64Prefix::well_known(), tiny(3, 1_000_000_000));
        let dst4: Ipv4Addr = "198.51.100.7".parse().unwrap();
        let mut rejected = 0;
        for i in 0..10u64 {
            if g.translate(dst4, i, i + 1).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 7);
        assert!((g.stats().rejection_rate() - 0.7).abs() < 1e-12);
        assert_eq!(g.stats().peak_active, 3);
    }

    #[test]
    fn clat_is_stateless_and_maps_to_plat() {
        let clat = Clat::new(Nat64Prefix::well_known());
        let dst4: Ipv4Addr = "203.0.113.5".parse().unwrap();
        let v6 = clat.to_plat(dst4);
        assert_eq!(clat.plat_prefix().extract(v6), Some(dst4));
    }

    #[test]
    fn aftr_admits_like_a_nat44() {
        let mut a = Aftr::new(tiny(1, 5));
        assert!(a.admit(0, 10).is_ok());
        assert!(a.admit(10, 20).is_err());
        assert!(a.admit(15, 25).is_ok(), "freed at end(10) + timeout(5)");
        assert_eq!(a.stats().granted, 2);
    }
}
