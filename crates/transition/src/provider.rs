//! # The provider-shared CGN gateway.
//!
//! The day-local gateways of [`crate::nat64`] are an approximation twice
//! over: every residence-day instantiates its *own* translator, so (a)
//! bindings held at midnight vanish instead of carrying into the next day,
//! and (b) subscribers never contend for the same pool — yet translator
//! contention is a provider-level phenomenon (one NAT64/AFTR cluster
//! serves a whole ISP), which is exactly why CGN port-pool sizing is the
//! deployment cost the transition-technology literature dwells on.
//! [`ProviderGateway`] removes both approximations: one pair of binding
//! pools (NAT64 for the v6-only techs, the AFTR's NAT44 for DS-Lite)
//! persisted across every day and shared by every subscriber of an ISP.
//!
//! ## Admission model
//!
//! The gateway is *replayed over the flow stream*: synthesis emits each
//! subscriber-day with stateless address mapping, and the provider then
//! [`ProviderGateway::offer`]s every record in a canonical order — days
//! ascending, subscribers ascending within a day, records in emission
//! order within a subscriber-day (the same deterministic order the
//! streaming pipeline guarantees). A translated record's binding interval
//! is its own `[start, end]` — identical to what the day-local gateways
//! bound — so the two deployments differ only in pool sharing and
//! persistence, not in per-flow demand. Offers rejected by a full pool are
//! dropped from the stream: the subscriber saw a connection failure.
//!
//! Determinism: the replay is sequential, so results are invariant to
//! however many threads generated the demand. Within one day the canonical
//! order interleaves subscribers *by subscriber, not by timestamp* (the
//! provider works through each CPE's daily log in turn); binding expiry is
//! lazy on offer-time like the day-local tables, so an earlier-starting
//! flow offered later merely delays port reuse — a conservative,
//! deterministic approximation of timestamp-ordered admission.

use crate::nat64::{BindingTable, GatewayConfig, GatewayStats};
use crate::rfc6052::Nat64Prefix;
use flowmon::{day_of, FlowRecord, Scope};
use serde::Serialize;
use std::net::IpAddr;

/// The provider's verdict on one offered record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Native traffic: forwarded without touching a pool.
    Native,
    /// Translated/tunneled traffic that got a binding: forwarded.
    Granted,
    /// Translated/tunneled traffic refused by a full pool: dropped.
    Rejected,
    /// Translated/tunneled traffic refused because the targeted pool is in
    /// an administrative outage: dropped. Distinct from [`Rejected`]
    /// (pool exhaustion) — nothing is admitted while down, regardless of
    /// load, and no binding state is consumed.
    ///
    /// [`Rejected`]: Admission::Rejected
    RejectedOutage,
}

impl Admission {
    /// Did the record survive (native or granted)?
    pub fn forwarded(self) -> bool {
        !matches!(self, Admission::Rejected | Admission::RejectedOutage)
    }
}

/// Which of the provider's two shared pools an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProviderPool {
    /// The NAT64 pool (IPv6-only and 464XLAT subscribers).
    Nat64,
    /// The DS-Lite AFTR NAT44 pool.
    Aftr,
}

/// Lifetime counters of outage-caused rejections, separate from the
/// exhaustion counters in [`GatewayStats`] (and from the serialized
/// per-day stats, whose wire format predates the fault plane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OutageStats {
    /// NAT64 offers refused while that pool was down.
    pub nat64_rejected: u64,
    /// AFTR offers refused while that pool was down.
    pub aftr_rejected: u64,
}

impl OutageStats {
    /// Total offers refused due to outages.
    pub fn total(&self) -> u64 {
        self.nat64_rejected + self.aftr_rejected
    }
}

/// Per-day admission counters of the shared gateway (the input of the
/// pool-size → rejection-rate CDFs).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ProviderDayStats {
    /// Translated/tunneled records offered this day.
    pub offered: u64,
    /// Bindings granted this day.
    pub granted: u64,
    /// Records rejected this day.
    pub rejected: u64,
}

impl ProviderDayStats {
    /// Fraction of offered records rejected (0 when nothing was offered).
    pub fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }
}

/// One ISP's shared translation plant: a NAT64 pool for the IPv6-only
/// access technologies and an AFTR NAT44 pool for DS-Lite, both persistent
/// across days and subscribers.
#[derive(Debug, Clone)]
pub struct ProviderGateway {
    prefix: Nat64Prefix,
    nat64: BindingTable,
    aftr: BindingTable,
    daily: Vec<ProviderDayStats>,
    nat64_down: bool,
    aftr_down: bool,
    outage: OutageStats,
}

impl ProviderGateway {
    /// A gateway translating under `prefix`, with `config` sizing *each*
    /// of the two pools (NAT64 and AFTR).
    pub fn new(prefix: Nat64Prefix, config: GatewayConfig) -> ProviderGateway {
        ProviderGateway {
            prefix,
            nat64: BindingTable::new(config),
            aftr: BindingTable::new(config),
            daily: Vec::new(),
            nat64_down: false,
            aftr_down: false,
            outage: OutageStats::default(),
        }
    }

    /// Take a pool down (`down = true`) or restore it. While down, every
    /// offer needing that pool returns [`Admission::RejectedOutage`];
    /// existing bindings are untouched and keep expiring on their own
    /// timeouts, so restore resumes exactly where the outage began —
    /// deterministic replay of the same offer stream yields the same
    /// admissions.
    pub fn set_outage(&mut self, pool: ProviderPool, down: bool) {
        match pool {
            ProviderPool::Nat64 => self.nat64_down = down,
            ProviderPool::Aftr => self.aftr_down = down,
        }
    }

    /// Is a pool currently in an administrative outage?
    pub fn is_down(&self, pool: ProviderPool) -> bool {
        match pool {
            ProviderPool::Nat64 => self.nat64_down,
            ProviderPool::Aftr => self.aftr_down,
        }
    }

    /// Resize both pools in place (fault-plane shrink/restore). Bindings
    /// already held above a shrunken capacity persist until expiry; only
    /// new binds see the new limit.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.nat64.set_capacity(capacity);
        self.aftr.set_capacity(capacity);
    }

    /// Lifetime counters of outage-caused rejections.
    pub fn outage_stats(&self) -> OutageStats {
        self.outage
    }

    /// The RFC 6052 prefix this provider translates under.
    pub fn prefix(&self) -> Nat64Prefix {
        self.prefix
    }

    /// Offer one record of `dslite_line`-provisioned (or not) subscriber
    /// traffic. Native records pass untouched; NAT64-translated records
    /// (external IPv6 towards the provider prefix) and DS-Lite softwire
    /// records (external IPv4 on a DS-Lite line) must win a binding for
    /// `[start, end]` from the shared pool.
    ///
    /// Call in canonical order — days ascending, then subscribers, then
    /// emission order — for reproducible admission (see module docs).
    pub fn offer(&mut self, record: &FlowRecord, dslite_line: bool) -> Admission {
        let (table, down, outage_counter) = match record.key.dst {
            _ if record.scope == Scope::Internal => {
                obs::counter_add("gateway.native", 1);
                return Admission::Native;
            }
            IpAddr::V6(d) if self.prefix.contains(d) => (
                &mut self.nat64,
                self.nat64_down,
                &mut self.outage.nat64_rejected,
            ),
            IpAddr::V4(_) if dslite_line => (
                &mut self.aftr,
                self.aftr_down,
                &mut self.outage.aftr_rejected,
            ),
            _ => {
                obs::counter_add("gateway.native", 1);
                return Admission::Native;
            }
        };
        let day = day_of(record.start) as usize;
        if self.daily.len() <= day {
            self.daily.resize(day + 1, ProviderDayStats::default());
        }
        let stats = &mut self.daily[day];
        stats.offered += 1;
        obs::counter_add("gateway.offers", 1);
        if down {
            stats.rejected += 1;
            *outage_counter += 1;
            obs::counter_add("gateway.rejected_outage", 1);
            return Admission::RejectedOutage;
        }
        match table.bind(record.start, record.end) {
            Ok(()) => {
                stats.granted += 1;
                obs::counter_add("gateway.granted", 1);
                Admission::Granted
            }
            Err(_) => {
                stats.rejected += 1;
                obs::counter_add("gateway.rejected", 1);
                Admission::Rejected
            }
        }
    }

    /// Combined lifetime counters of both pools. `peak_active` is the
    /// larger pool's peak (the pools are disjoint resources).
    pub fn stats(&self) -> GatewayStats {
        let mut s = self.nat64.stats();
        s.absorb(self.aftr.stats());
        s
    }

    /// Lifetime counters of the NAT64 pool alone.
    pub fn nat64_stats(&self) -> GatewayStats {
        self.nat64.stats()
    }

    /// Lifetime counters of the AFTR NAT44 pool alone.
    pub fn aftr_stats(&self) -> GatewayStats {
        self.aftr.stats()
    }

    /// Per-day admission counters, indexed by day (empty trailing days are
    /// present only up to the last day that saw an offer).
    pub fn daily(&self) -> &[ProviderDayStats] {
        &self.daily
    }

    /// The pool sizing (identical for both pools).
    pub fn config(&self) -> GatewayConfig {
        self.nat64.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmon::FlowKey;

    const DAY: u64 = 86_400_000_000;

    fn cfg(capacity: usize, timeout_s: u64) -> GatewayConfig {
        GatewayConfig {
            capacity,
            binding_timeout: timeout_s * 1_000_000,
        }
    }

    fn nat64_rec(start: u64, end: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                "2001:db8:100::5".parse().unwrap(),
                40_000,
                "64:ff9b::c633:6407".parse().unwrap(),
                443,
            ),
            start,
            end,
            bytes_orig: 100,
            bytes_reply: 1_000,
            packets_orig: 1,
            packets_reply: 1,
            scope: Scope::External,
        }
    }

    fn v4_rec(start: u64, end: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                "192.168.1.5".parse().unwrap(),
                40_000,
                "203.0.113.9".parse().unwrap(),
                443,
            ),
            start,
            end,
            bytes_orig: 100,
            bytes_reply: 1_000,
            packets_orig: 1,
            packets_reply: 1,
            scope: Scope::External,
        }
    }

    fn native6_rec(start: u64, end: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                "2001:db8:100::5".parse().unwrap(),
                40_001,
                "2600::1".parse().unwrap(),
                443,
            ),
            ..nat64_rec(start, end)
        }
    }

    #[test]
    fn native_traffic_never_touches_the_pools() {
        let mut gw = ProviderGateway::new(Nat64Prefix::well_known(), cfg(1, 1));
        assert_eq!(gw.offer(&native6_rec(0, 10), false), Admission::Native);
        // External v4 on a non-DS-Lite line is native too.
        assert_eq!(gw.offer(&v4_rec(0, 10), false), Admission::Native);
        // Internal traffic, even towards a would-be NAT64 destination.
        let mut internal = nat64_rec(0, 10);
        internal.scope = Scope::Internal;
        assert_eq!(gw.offer(&internal, true), Admission::Native);
        assert_eq!(gw.stats().granted, 0);
        assert!(gw.daily().is_empty());
    }

    #[test]
    fn pools_are_independent_and_exhaust() {
        let mut gw = ProviderGateway::new(Nat64Prefix::well_known(), cfg(1, 3_600));
        assert_eq!(gw.offer(&nat64_rec(0, 100), false), Admission::Granted);
        assert_eq!(gw.offer(&nat64_rec(10, 100), false), Admission::Rejected);
        // The AFTR pool is a separate resource: still free.
        assert_eq!(gw.offer(&v4_rec(10, 100), true), Admission::Granted);
        assert_eq!(gw.offer(&v4_rec(20, 100), true), Admission::Rejected);
        assert_eq!(gw.nat64_stats().rejected, 1);
        assert_eq!(gw.aftr_stats().rejected, 1);
        assert_eq!(gw.stats().granted, 2);
    }

    #[test]
    fn bindings_persist_across_days() {
        // One binding with a 12h timeout taken late on day 0 still blocks
        // the pool early on day 1 — the cross-midnight carryover the
        // day-local gateways drop.
        let mut gw = ProviderGateway::new(Nat64Prefix::well_known(), cfg(1, 12 * 3_600));
        let late_day0 = DAY - 1_000_000;
        assert_eq!(
            gw.offer(&nat64_rec(late_day0, late_day0 + 500_000), false),
            Admission::Granted
        );
        let early_day1 = DAY + 3_600_000_000; // 01:00 on day 1
        assert_eq!(
            gw.offer(&nat64_rec(early_day1, early_day1 + 1_000), false),
            Admission::Rejected,
            "the midnight binding must still hold the pool"
        );
        // After the timeout expires the pool frees.
        let noon_day1 = DAY + 13 * 3_600_000_000;
        assert_eq!(
            gw.offer(&nat64_rec(noon_day1, noon_day1 + 1_000), false),
            Admission::Granted
        );
        assert_eq!(gw.daily().len(), 2);
        assert_eq!(gw.daily()[0].granted, 1);
        assert_eq!(gw.daily()[1].offered, 2);
        assert_eq!(gw.daily()[1].rejected, 1);
        assert!((gw.daily()[1].rejection_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn admission_verdicts() {
        assert!(Admission::Native.forwarded());
        assert!(Admission::Granted.forwarded());
        assert!(!Admission::Rejected.forwarded());
        assert!(!Admission::RejectedOutage.forwarded());
    }

    #[test]
    fn outage_rejects_without_consuming_bindings() {
        let mut gw = ProviderGateway::new(Nat64Prefix::well_known(), cfg(8, 60));
        gw.set_outage(ProviderPool::Nat64, true);
        assert!(gw.is_down(ProviderPool::Nat64));
        assert_eq!(
            gw.offer(&nat64_rec(0, 10), false),
            Admission::RejectedOutage
        );
        // The other pool is unaffected, as is native traffic.
        assert_eq!(gw.offer(&v4_rec(0, 10), true), Admission::Granted);
        assert_eq!(gw.offer(&native6_rec(0, 10), false), Admission::Native);
        assert_eq!(gw.outage_stats().nat64_rejected, 1);
        assert_eq!(gw.outage_stats().aftr_rejected, 0);
        assert_eq!(gw.outage_stats().total(), 1);
        // Outage rejections count in the daily rejected totals but do not
        // touch the pool's exhaustion counters or its binding state.
        assert_eq!(gw.daily()[0].rejected, 1);
        assert_eq!(gw.nat64_stats().rejected, 0);
        gw.set_outage(ProviderPool::Nat64, false);
        assert_eq!(gw.offer(&nat64_rec(20, 30), false), Admission::Granted);
    }

    /// Regression: outage → restore must replay bindings deterministically —
    /// the admissions after restore are exactly those of a gateway that saw
    /// only the granted (non-outage-window) prefix of the stream.
    #[test]
    fn outage_then_restore_replays_bindings_deterministically() {
        let offers: Vec<(u64, u64)> = (0..40u64).map(|i| (i * 7, i * 7 + 1_000)).collect();
        let down = |i: usize| (10..20).contains(&i);

        let run = |gw: &mut ProviderGateway, skip_down: bool| -> Vec<Admission> {
            offers
                .iter()
                .enumerate()
                .filter(|(i, _)| !(skip_down && down(*i)))
                .map(|(i, &(s, e))| {
                    gw.set_outage(ProviderPool::Nat64, down(i) && !skip_down);
                    gw.offer(&nat64_rec(s, e), false)
                })
                .collect()
        };

        let mut with_outage = ProviderGateway::new(Nat64Prefix::well_known(), cfg(5, 1));
        let a = run(&mut with_outage, false);
        let mut without = ProviderGateway::new(Nat64Prefix::well_known(), cfg(5, 1));
        let b = run(&mut without, true);

        // Every offer inside the window was refused by the outage...
        assert!(a[10..20].iter().all(|&v| v == Admission::RejectedOutage));
        assert_eq!(with_outage.outage_stats().nat64_rejected, 10);
        // ...and the post-restore tail matches the outage-free replay of
        // the surviving prefix verdict-for-verdict.
        assert_eq!(a[..10], b[..10]);
        assert_eq!(a[20..], b[10..]);
        // Re-running the whole thing is byte-identical.
        let mut again = ProviderGateway::new(Nat64Prefix::well_known(), cfg(5, 1));
        assert_eq!(run(&mut again, false), a);
    }

    #[test]
    fn set_capacity_shrinks_and_restores() {
        let mut gw = ProviderGateway::new(Nat64Prefix::well_known(), cfg(4, 3_600));
        assert_eq!(gw.offer(&nat64_rec(0, 100), false), Admission::Granted);
        gw.set_capacity(1);
        assert_eq!(
            gw.offer(&nat64_rec(1, 100), false),
            Admission::Rejected,
            "shrunken pool is already at capacity"
        );
        gw.set_capacity(4);
        assert_eq!(gw.offer(&nat64_rec(2, 100), false), Admission::Granted);
        assert_eq!(gw.config().capacity, 4);
    }
}
