//! # transition — IPv6 transition technologies as first-class access paths
//!
//! The paper's thesis is that IPv6 adoption is not a bit but a spectrum —
//! and in deployed networks the middle of that spectrum is *implemented*
//! with transition technologies. A subscriber line is rarely "dual-stack or
//! IPv4-only": it is IPv6-only behind NAT64/DNS64, IPv6-only with a CLAT
//! (464XLAT), or native-IPv6-with-tunneled-IPv4 (DS-Lite). Each mechanism
//! leaves a different fingerprint in flow logs, DNS answers and Happy
//! Eyeballs outcomes, so modeling them explicitly opens a family of
//! scenarios the binary view cannot express. The mechanisms and their
//! trade-offs follow the comparative literature (Albkerat & Issac, *Analysis
//! of IPv6 Transition Technologies*; Cui et al., *A Comprehensive Study of
//! Accelerating IPv6 Deployment*).
//!
//! The crate provides the four pieces, bottom-up:
//!
//! * [`rfc6052`] — the address-mapping algorithm everything else shares:
//!   embed/extract of IPv4 addresses under the well-known `64:ff9b::/96` or
//!   a network-specific prefix, all six legal prefix lengths.
//! * [`dns64`] — a DNS64 view over the [`dnssim`] stub resolver that
//!   synthesizes `AAAA` answers from `A` records (never shadowing native
//!   `AAAA`, never resurrecting NXDOMAIN). Because it implements
//!   [`dnssim::ResolveAddrs`], the Happy Eyeballs engine races over
//!   synthesized answers with zero changes — including the pathological
//!   case where DNS64 makes an IPv4-only service look IPv6 and wins the
//!   race through the gateway.
//! * [`nat64`] — the stateful elements: [`nat64::Nat64Gateway`] (RFC 6146)
//!   with a capacity- and timeout-bounded binding table whose exhaustion is
//!   an experiment scenario, the stateless [`nat64::Clat`] of 464XLAT, and
//!   the DS-Lite [`nat64::Aftr`] running NAT44 on tunneled flows.
//! * [`provider`] — the provider-shared deployment of those elements:
//!   [`provider::ProviderGateway`] holds one NAT64 + AFTR pool pair per
//!   ISP, persistent across days and shared by all subscribers, replayed
//!   deterministically over the streaming flow pipeline.
//! * [`tech`] — [`AccessTech`], the per-residence dimension `worldgen`/
//!   `trafficgen` use to pick a provisioning, and the predicate helpers
//!   (`v6_only_wire`, `uses_dns64`, `uses_gateway`) the synthesizer keys
//!   off.
//!
//! ## Mapping onto the paper's non-binary tiers
//!
//! The paper grades websites IPv4-only / partial / full; the analogous
//! client-side grading falls out of these mechanisms: a **V4Only** line has
//! no IPv6 traffic at all; a **DS-Lite** line is native-IPv6 *plus*
//! IPv4-as-a-service (v4 bytes survive, tunneled); a **dual-stack** line
//! splits per service exactly as §3 measures; and the **IPv6-only** techs
//! are "beyond full" — even bytes destined to IPv4-only services cross the
//! access wire as IPv6, visible only by their RFC 6052 destination prefix.
//! `ipv6view-core` turns that into translated-adoption tiers; this crate
//! supplies the ground mechanics.
//!
//! Everything is deterministic: no ambient randomness, no wall clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dns64;
pub mod nat64;
pub mod provider;
pub mod rfc6052;
pub mod tech;

pub use dns64::Dns64;
pub use nat64::{Aftr, BindError, BindingTable, Clat, GatewayConfig, GatewayStats, Nat64Gateway};
pub use provider::{Admission, OutageStats, ProviderDayStats, ProviderGateway, ProviderPool};
pub use rfc6052::{Nat64Prefix, PrefixError, WELL_KNOWN_PREFIX};
pub use tech::AccessTech;
