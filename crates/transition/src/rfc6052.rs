//! RFC 6052 IPv4-embedded IPv6 addresses.
//!
//! NAT64/DNS64 and 464XLAT all rely on the same address-mapping algorithm:
//! an IPv4 address is *embedded* into an IPv6 address under a translation
//! prefix — either the well-known prefix `64:ff9b::/96` or a
//! network-specific prefix — and *extracted* back on the return path. RFC
//! 6052 §2.2 defines six legal prefix lengths; for lengths shorter than 96
//! the embedded address straddles bits 64–71 ("octet u"), which must remain
//! zero for compatibility with the interface-identifier rules.

use iputil::prefix::Prefix6;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// The RFC 6052 well-known prefix, `64:ff9b::/96`.
pub const WELL_KNOWN_PREFIX: &str = "64:ff9b::/96";

/// Error building a [`Nat64Prefix`] from a [`Prefix6`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixError {
    /// RFC 6052 only allows lengths 32, 40, 48, 56, 64 and 96.
    BadLength(u8),
    /// Bits 64..72 ("octet u") of a network-specific prefix must be zero.
    NonZeroOctetU,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadLength(len) => {
                write!(
                    f,
                    "RFC 6052 forbids prefix length {len} (allowed: 32/40/48/56/64/96)"
                )
            }
            PrefixError::NonZeroOctetU => {
                write!(f, "bits 64..72 of an RFC 6052 prefix must be zero")
            }
        }
    }
}

impl std::error::Error for PrefixError {}

/// A validated RFC 6052 translation prefix with embed/extract operations.
///
/// ```
/// use transition::rfc6052::Nat64Prefix;
/// let p = Nat64Prefix::well_known();
/// let v4 = "192.0.2.33".parse().unwrap();
/// let v6 = p.embed(v4);
/// assert_eq!(v6.to_string(), "64:ff9b::c000:221");
/// assert_eq!(p.extract(v6), Some(v4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nat64Prefix {
    prefix: Prefix6,
}

impl Nat64Prefix {
    /// Wrap a prefix, validating the RFC 6052 length and octet-u rules.
    pub fn new(prefix: Prefix6) -> Result<Nat64Prefix, PrefixError> {
        if !matches!(prefix.len(), 32 | 40 | 48 | 56 | 64 | 96) {
            return Err(PrefixError::BadLength(prefix.len()));
        }
        // Octet u (bits 64..72, i.e. u128 bits 56..64 from the low end) must
        // be zero in any address under the prefix, which for prefixes longer
        // than 64 bits means the prefix itself must keep it zero.
        if prefix.len() > 64 && (prefix.bits() >> 56) & 0xff != 0 {
            return Err(PrefixError::NonZeroOctetU);
        }
        Ok(Nat64Prefix { prefix })
    }

    /// The well-known prefix `64:ff9b::/96`.
    pub fn well_known() -> Nat64Prefix {
        Nat64Prefix::new(WELL_KNOWN_PREFIX.parse().expect("static prefix"))
            .expect("well-known prefix is valid")
    }

    /// The underlying IPv6 prefix.
    pub fn prefix(&self) -> Prefix6 {
        self.prefix
    }

    /// Embed `v4` under this prefix (RFC 6052 §2.2).
    ///
    /// For lengths below 96 the IPv4 bits are split around octet u, which is
    /// always emitted as zero; the suffix bits stay zero.
    pub fn embed(&self, v4: Ipv4Addr) -> Ipv6Addr {
        let a = u32::from(v4) as u128;
        let embedded: u128 = match self.prefix.len() {
            32 => a << 64,
            40 => ((a >> 8) << 64) | ((a & 0xff) << 48),
            48 => ((a >> 16) << 64) | ((a & 0xffff) << 40),
            56 => ((a >> 24) << 64) | ((a & 0xff_ffff) << 32),
            64 => a << 24,
            96 => a,
            _ => unreachable!("length validated in new()"),
        };
        Ipv6Addr::from(self.prefix.bits() | embedded)
    }

    /// Extract the embedded IPv4 address, or `None` when `v6` is not under
    /// this prefix.
    pub fn extract(&self, v6: Ipv6Addr) -> Option<Ipv4Addr> {
        if !self.prefix.contains(v6) {
            return None;
        }
        let bits = u128::from(v6);
        let a: u32 = match self.prefix.len() {
            32 => (bits >> 64) as u32,
            40 => ((bits >> 64) as u32) << 8 | ((bits >> 48) & 0xff) as u32,
            48 => ((bits >> 64) as u32) << 16 | ((bits >> 40) & 0xffff) as u32,
            56 => ((bits >> 64) as u32) << 24 | ((bits >> 32) & 0xff_ffff) as u32,
            64 => (bits >> 24) as u32,
            96 => bits as u32,
            _ => unreachable!("length validated in new()"),
        };
        Some(Ipv4Addr::from(a))
    }

    /// Is `v6` an address synthesized/translated under this prefix?
    pub fn contains(&self, v6: Ipv6Addr) -> bool {
        self.prefix.contains(v6)
    }
}

impl fmt::Display for Nat64Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.prefix.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_embeds_like_rfc_examples() {
        // RFC 6052 §2.4 example: 192.0.2.33 under each prefix length.
        let v4: Ipv4Addr = "192.0.2.33".parse().unwrap();
        let cases = [
            ("2001:db8::/32", "2001:db8:c000:221::"),
            ("2001:db8:100::/40", "2001:db8:1c0:2:21::"),
            ("2001:db8:122::/48", "2001:db8:122:c000:2:2100::"),
            ("2001:db8:122:300::/56", "2001:db8:122:3c0:0:221::"),
            ("2001:db8:122:344::/64", "2001:db8:122:344:c0:2:2100:0"),
            ("2001:db8:122:344::/96", "2001:db8:122:344::c000:221"),
        ];
        for (prefix, expect) in cases {
            let p = Nat64Prefix::new(prefix.parse().unwrap()).unwrap();
            let v6 = p.embed(v4);
            assert_eq!(v6, expect.parse::<Ipv6Addr>().unwrap(), "prefix {prefix}");
            assert_eq!(p.extract(v6), Some(v4), "prefix {prefix}");
        }
    }

    #[test]
    fn rejects_illegal_lengths() {
        for len in [0u8, 31, 33, 65, 95, 97, 128] {
            let p = Prefix6::new("2001:db8::".parse().unwrap(), len);
            assert_eq!(Nat64Prefix::new(p), Err(PrefixError::BadLength(len)));
        }
    }

    #[test]
    fn rejects_nonzero_octet_u() {
        // /96 prefix whose bits 64..72 are set.
        let p: Prefix6 = "2001:db8::ff00:0:0:0/96".parse().unwrap();
        assert!((p.bits() >> 56) & 0xff != 0, "fixture sets octet u");
        assert_eq!(Nat64Prefix::new(p), Err(PrefixError::NonZeroOctetU));
    }

    #[test]
    fn extract_rejects_foreign_addresses() {
        let p = Nat64Prefix::well_known();
        assert_eq!(p.extract("2001:db8::1".parse().unwrap()), None);
        assert!(p.contains("64:ff9b::102:304".parse().unwrap()));
        assert!(!p.contains("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn display_shows_prefix() {
        assert_eq!(Nat64Prefix::well_known().to_string(), "64:ff9b::/96");
    }
}
