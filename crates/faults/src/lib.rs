//! # faults — a deterministic, schedulable fault-injection plane
//!
//! The suite's adoption metrics are computed from traffic that, on the real
//! Internet, is constantly perturbed by resolver failures, CGN/NAT64
//! outages and BGP churn. This crate describes those perturbations as data:
//! a [`FaultPlan`] is a timeline of typed [`FaultEvent`]s — DNS
//! SERVFAIL/timeout bursts, gateway outages and pool shrink/restore, path
//! degradation, RIB announce/withdraw churn — each active inside a
//! [`Window`] of days and intra-day hours. Synthesis layers consult the plan
//! and apply whichever faults cover the current (day, hour).
//!
//! ## Determinism contract
//!
//! Fault injection must never perturb the byte-identical-output guarantees
//! of the rest of the suite. Three rules enforce that:
//!
//! 1. **An empty plan is free.** When [`FaultPlan::is_empty`] holds, no
//!    consumer draws a single random number on behalf of the fault plane,
//!    so output is byte-identical to a build without the plane at all.
//! 2. **Dedicated RNG streams.** Every random fault decision comes from a
//!    [`rand::rngs::SmallRng`] derived by [`FaultPlan::stream`] from the
//!    plan seed and the (fault class, residence, day) coordinates — never
//!    from the synthesis day RNG. Scheduled faults therefore change *what*
//!    happens without shifting any unrelated draw.
//! 3. **Layout independence.** Streams are keyed purely by logical
//!    coordinates (residence index, day), so results are byte-identical at
//!    any `threads`/`day_threads` layout, exactly like synthesis itself.
//!
//! Window-only decisions (a gateway outage covering 10:00–14:00) consume no
//! randomness at all; they are pure functions of the flow timestamp.
//!
//! ```
//! use faults::{DnsFailure, FaultPlan, PoolTarget, Window};
//!
//! let plan = FaultPlan::new(0xfa01)
//!     .dns_burst(DnsFailure::ServFail, 0.5, Window::days(2, 3))
//!     .gateway_outage(PoolTarget::Nat64, Window::new(4, 4, 10, 14))
//!     .pool_shrink(0.25, Window::days(5, 6));
//! assert!(!plan.is_empty());
//! assert_eq!(plan.dns_for_day(2).len(), 1);
//! assert!(plan.gateway_down(PoolTarget::Nat64, 4, 12));
//! assert!(!plan.gateway_down(PoolTarget::Nat64, 4, 15));
//! assert_eq!(plan.pool_capacity(4096, 5), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dnssim::{AddrsOutcome, Name, ResolveAddrs, ResolverConfig};
use iputil::{Family, Prefix, Prefix4, Prefix6};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Microseconds (matches the `netsim`/`flowmon` clock).
pub type Time = u64;

/// A fault's activation window: an inclusive day range crossed with a
/// half-open intra-day hour range `[start_hour, end_hour)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First simulated day (0-based) the fault is active.
    pub first_day: u32,
    /// Last active day, inclusive.
    pub last_day: u32,
    /// First active hour of each covered day (0–23).
    pub start_hour: u32,
    /// One past the last active hour (1–24); `24` means "until midnight".
    pub end_hour: u32,
}

impl Window {
    /// A window covering whole days `first..=last`.
    pub fn days(first_day: u32, last_day: u32) -> Window {
        Window::new(first_day, last_day, 0, 24)
    }

    /// A window covering hours `[start_hour, end_hour)` of days
    /// `first_day..=last_day`.
    ///
    /// # Panics
    /// If the day range is inverted or the hour range is empty/out of range.
    pub fn new(first_day: u32, last_day: u32, start_hour: u32, end_hour: u32) -> Window {
        assert!(first_day <= last_day, "inverted day range");
        assert!(start_hour < end_hour, "empty hour range");
        assert!(end_hour <= 24, "end_hour past midnight");
        Window {
            first_day,
            last_day,
            start_hour,
            end_hour,
        }
    }

    /// Is any hour of `day` covered?
    pub fn covers_day(&self, day: u32) -> bool {
        (self.first_day..=self.last_day).contains(&day)
    }

    /// Is hour `hour` of day `day` covered?
    pub fn covers(&self, day: u32, hour: u32) -> bool {
        self.covers_day(day) && (self.start_hour..self.end_hour).contains(&hour)
    }

    /// Covered hours per active day (1–24).
    pub fn hours_per_day(&self) -> u32 {
        self.end_hour - self.start_hour
    }
}

/// How an injected DNS failure presents to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsFailure {
    /// The resolver answers SERVFAIL immediately.
    ServFail,
    /// The query never comes back; the answer "arrives" after the
    /// resolver's configured timeout.
    Timeout,
}

impl DnsFailure {
    /// The resolution outcome this failure surfaces as.
    pub fn outcome(self) -> AddrsOutcome {
        match self {
            DnsFailure::ServFail => AddrsOutcome::ServFail,
            DnsFailure::Timeout => AddrsOutcome::Timeout,
        }
    }
}

/// Which shared provider pool a gateway fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolTarget {
    /// The NAT64/PLAT binding pool (IPv6-only and 464XLAT subscribers).
    Nat64,
    /// The DS-Lite AFTR binding pool.
    Aftr,
    /// Both pools at once.
    Both,
}

impl PoolTarget {
    /// Does a fault on `self` hit the pool `other` asks about?
    fn hits(self, other: PoolTarget) -> bool {
        matches!(
            (self, other),
            (PoolTarget::Both, _)
                | (_, PoolTarget::Both)
                | (PoolTarget::Nat64, PoolTarget::Nat64)
                | (PoolTarget::Aftr, PoolTarget::Aftr)
        )
    }
}

/// One class of injectable failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A burst of DNS failures: inside the window, each query fails with
    /// probability `rate` and presents as `failure`.
    DnsBurst {
        /// How the failure presents.
        failure: DnsFailure,
        /// Per-query failure probability in `[0, 1]`.
        rate: f64,
    },
    /// A hard gateway outage: the targeted pool rejects every new binding
    /// while the window covers the flow's (day, hour). Distinct from pool
    /// exhaustion — nothing is admitted, regardless of load.
    GatewayOutage {
        /// Which pool goes dark.
        pool: PoolTarget,
    },
    /// Pool shrink/restore: on covered days the binding pool capacity is
    /// scaled by `factor` (`0.25` = a quarter of the pool survives);
    /// capacity reverts to its configured value on uncovered days.
    PoolShrink {
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Path degradation on one address family: extra round-trip latency,
    /// extra connect-loss probability (visible to Happy Eyeballs races),
    /// and a per-flow drop probability applied to established traffic.
    PathDegrade {
        /// Which family degrades.
        family: Family,
        /// Extra round-trip latency in milliseconds.
        extra_rtt_ms: u64,
        /// Additional connection-loss probability in `[0, 1]`.
        loss: f64,
        /// Probability an established flow is dropped outright.
        drop_rate: f64,
    },
    /// RIB churn: each covered day contributes a batch of synthetic
    /// announcements plus withdrawals of the previous day's batch,
    /// exercising trie insert/remove/merge at scale.
    RibChurn {
        /// Prefixes announced per covered day.
        announcements_per_day: u32,
        /// Fraction of the previous day's batch withdrawn (in `[0, 1]`).
        withdraw_fraction: f64,
    },
}

/// A scheduled fault: a kind active inside a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// What fails.
    pub kind: FaultKind,
    /// When it fails.
    pub window: Window,
}

/// A deterministic failure timeline: an ordered list of [`FaultEvent`]s
/// plus the seed all fault RNG streams derive from.
///
/// See the crate-level docs for the determinism contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of every fault RNG stream (independent of the world seed).
    pub seed: u64,
    events: Vec<FaultEvent>,
}

/// A DNS burst as seen on one day: the presentation mode and the per-query
/// failure rate, pre-scaled by the fraction of the day the window covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayDnsFault {
    /// How failing queries present.
    pub failure: DnsFailure,
    /// Effective per-query failure probability for the day.
    pub rate: f64,
}

/// A path degradation as seen on one day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayPathFault {
    /// Which family degrades.
    pub family: Family,
    /// Extra round-trip latency in milliseconds.
    pub extra_rtt_ms: u64,
    /// Additional connection-loss probability.
    pub loss: f64,
    /// Per-flow drop probability for established traffic.
    pub drop_rate: f64,
    /// The covering window (drop decisions re-check the hour).
    pub window: Window,
}

/// One RIB mutation in a churn batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// Announce `prefix` with origin `asn`.
    Announce(Prefix, u32),
    /// Withdraw `prefix`.
    Withdraw(Prefix),
}

/// Synthetic churn origins start here, far above any generated world AS.
const CHURN_ASN_BASE: u32 = 4_000_000_000;

/// [`FaultPlan::stream`] tag for DNS burst injection draws.
pub const DNS_STREAM: u64 = 1;
/// [`FaultPlan::stream`] tag for per-flow drop draws (path degradation).
pub const FLOW_DROP_STREAM: u64 = 2;

impl FaultPlan {
    /// An empty plan whose streams derive from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// No events scheduled? (Consumers must not draw any fault randomness
    /// when this holds — rule 1 of the determinism contract.)
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedule an arbitrary event (builder-style).
    pub fn with(mut self, kind: FaultKind, window: Window) -> FaultPlan {
        self.events.push(FaultEvent { kind, window });
        self
    }

    /// Schedule a DNS failure burst.
    pub fn dns_burst(self, failure: DnsFailure, rate: f64, window: Window) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate out of [0, 1]");
        self.with(FaultKind::DnsBurst { failure, rate }, window)
    }

    /// Schedule a gateway outage.
    pub fn gateway_outage(self, pool: PoolTarget, window: Window) -> FaultPlan {
        self.with(FaultKind::GatewayOutage { pool }, window)
    }

    /// Schedule a pool shrink (capacity × `factor` on covered days).
    pub fn pool_shrink(self, factor: f64, window: Window) -> FaultPlan {
        assert!(factor > 0.0 && factor <= 1.0, "factor out of (0, 1]");
        self.with(FaultKind::PoolShrink { factor }, window)
    }

    /// Schedule a path degradation.
    pub fn path_degrade(
        self,
        family: Family,
        extra_rtt_ms: u64,
        loss: f64,
        drop_rate: f64,
        window: Window,
    ) -> FaultPlan {
        assert!((0.0..=1.0).contains(&loss), "loss out of [0, 1]");
        assert!((0.0..=1.0).contains(&drop_rate), "drop_rate out of [0, 1]");
        self.with(
            FaultKind::PathDegrade {
                family,
                extra_rtt_ms,
                loss,
                drop_rate,
            },
            window,
        )
    }

    /// Schedule RIB churn.
    pub fn rib_churn(
        self,
        announcements_per_day: u32,
        withdraw_fraction: f64,
        window: Window,
    ) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&withdraw_fraction),
            "withdraw_fraction out of [0, 1]"
        );
        self.with(
            FaultKind::RibChurn {
                announcements_per_day,
                withdraw_fraction,
            },
            window,
        )
    }

    /// The dedicated RNG stream for fault decisions at logical coordinates
    /// (`stream_tag`, `residence`, `day`) — rule 2 of the determinism
    /// contract. Distinct tags keep fault classes independent.
    pub fn stream(&self, stream_tag: u64, residence: u64, day: u32) -> SmallRng {
        let mut h = self.seed ^ 0x6661_756c_7473_2131; // "faults!1"
        h = h
            .wrapping_add(stream_tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(residence.wrapping_mul(0xd134_2543_de82_ef95))
            .wrapping_add((day as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        SmallRng::seed_from_u64(h)
    }

    /// The DNS bursts active on `day`, with rates pre-scaled by the
    /// fraction of the day each window covers (query times are not modelled
    /// at hour granularity, so an 8-hour burst at rate *r* becomes a
    /// day-long burst at rate *r*/3).
    pub fn dns_for_day(&self, day: u32) -> Vec<DayDnsFault> {
        self.events
            .iter()
            .filter(|e| e.window.covers_day(day))
            .filter_map(|e| match e.kind {
                FaultKind::DnsBurst { failure, rate } => Some(DayDnsFault {
                    failure,
                    rate: rate * e.window.hours_per_day() as f64 / 24.0,
                }),
                _ => None,
            })
            .collect()
    }

    /// Is the targeted gateway pool down at (`day`, `hour`)? Pure window
    /// arithmetic — consumes no randomness.
    pub fn gateway_down(&self, pool: PoolTarget, day: u32, hour: u32) -> bool {
        self.events.iter().any(|e| match e.kind {
            FaultKind::GatewayOutage { pool: target } => {
                target.hits(pool) && e.window.covers(day, hour)
            }
            _ => false,
        })
    }

    /// Does any gateway outage touch `day` at all?
    pub fn gateway_outage_on_day(&self, day: u32) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::GatewayOutage { .. }) && e.window.covers_day(day))
    }

    /// The effective pool capacity on `day`: `base` scaled by every active
    /// shrink (multiplicative), restored to `base` on uncovered days.
    /// Always at least 1 so a shrink never turns into a silent outage.
    pub fn pool_capacity(&self, base: usize, day: u32) -> usize {
        let mut factor = 1.0f64;
        for e in &self.events {
            if let FaultKind::PoolShrink { factor: f } = e.kind {
                if e.window.covers_day(day) {
                    factor *= f;
                }
            }
        }
        if factor >= 1.0 {
            base
        } else {
            ((base as f64 * factor) as usize).max(1)
        }
    }

    /// The path degradations active on `day`.
    pub fn path_for_day(&self, day: u32) -> Vec<DayPathFault> {
        self.events
            .iter()
            .filter(|e| e.window.covers_day(day))
            .filter_map(|e| match e.kind {
                FaultKind::PathDegrade {
                    family,
                    extra_rtt_ms,
                    loss,
                    drop_rate,
                } => Some(DayPathFault {
                    family,
                    extra_rtt_ms,
                    loss,
                    drop_rate,
                    window: e.window,
                }),
                _ => None,
            })
            .collect()
    }

    /// The RIB churn batch for `day`: announcements of fresh synthetic
    /// prefixes for every covered churn event, plus withdrawals of a
    /// deterministic subset of the *previous* day's batch. Withdrawing
    /// yesterday's announcements (rather than arbitrary table entries)
    /// keeps the batch self-contained and replayable without reading the
    /// RIB — the same plan always yields the same ops.
    pub fn churn_for_day(&self, day: u32) -> Vec<ChurnOp> {
        let mut ops = Vec::new();
        for (idx, e) in self.events.iter().enumerate() {
            let FaultKind::RibChurn {
                announcements_per_day,
                withdraw_fraction,
            } = e.kind
            else {
                continue;
            };
            if day > e.window.first_day && day <= e.window.last_day.saturating_add(1) {
                // Withdraw part of yesterday's batch (day-1 was covered).
                let yesterday = churn_batch(self, idx, day - 1, announcements_per_day);
                let keep = (announcements_per_day as f64 * (1.0 - withdraw_fraction)) as usize;
                for (prefix, _) in yesterday.into_iter().skip(keep) {
                    ops.push(ChurnOp::Withdraw(prefix));
                }
            }
            if e.window.covers_day(day) {
                for (prefix, asn) in churn_batch(self, idx, day, announcements_per_day) {
                    ops.push(ChurnOp::Announce(prefix, asn));
                }
            }
        }
        ops
    }
}

/// The synthetic prefixes one churn event announces on one day.
fn churn_batch(plan: &FaultPlan, event_idx: usize, day: u32, count: u32) -> Vec<(Prefix, u32)> {
    let mut rng = plan.stream(0x6368_7572_6e00 + event_idx as u64, 0, day);
    let mut batch = Vec::with_capacity(count as usize);
    for i in 0..count {
        let asn = CHURN_ASN_BASE + (day % 1024) * 4096 + i % 4096;
        // Alternate between v4 and v6 churn under documentation-adjacent
        // space well away from the generated world's address plan.
        let prefix = if i % 2 == 0 {
            let a = Ipv4Addr::new(196, rng.gen::<u8>(), rng.gen::<u8>(), 0);
            let len = rng.gen_range(18u8..=24);
            Prefix::V4(Prefix4::new(a, len))
        } else {
            let a = Ipv6Addr::new(
                0x3fff,
                rng.gen::<u16>(),
                rng.gen::<u16>(),
                rng.gen::<u16>() & 0xfff0,
                0,
                0,
                0,
                0,
            );
            let len = rng.gen_range(32u8..=48);
            Prefix::V6(Prefix6::new(a, len))
        };
        batch.push((prefix, asn));
    }
    batch
}

/// A failure-injecting, retrying resolver wrapper.
///
/// Wraps any [`ResolveAddrs`] and applies the day's DNS bursts to each
/// query attempt, drawing from a dedicated fault stream (interior-mutable:
/// resolution is `&self` throughout the suite). The timed path models
/// bounded retries with exponential backoff and deterministic jitter: a
/// failed attempt costs its latency (the timeout for [`DnsFailure::Timeout`],
/// the base round-trip for [`DnsFailure::ServFail`]) plus the backoff delay
/// before the next attempt.
#[derive(Debug)]
pub struct FaultyResolver<R> {
    inner: R,
    bursts: Vec<DayDnsFault>,
    rng: RefCell<SmallRng>,
}

impl<R: ResolveAddrs> FaultyResolver<R> {
    /// Wrap `inner`, injecting `bursts` with randomness from `rng`
    /// (derive it via [`FaultPlan::stream`]).
    pub fn new(inner: R, bursts: Vec<DayDnsFault>, rng: SmallRng) -> FaultyResolver<R> {
        FaultyResolver {
            inner,
            bursts,
            rng: RefCell::new(rng),
        }
    }

    /// Decide whether this attempt is injected to fail. One draw per
    /// scheduled burst, in plan order; the first hit wins.
    fn inject(&self) -> Option<DnsFailure> {
        let mut rng = self.rng.borrow_mut();
        for burst in &self.bursts {
            if rng.gen::<f64>() < burst.rate {
                match burst.failure {
                    DnsFailure::ServFail => obs::counter_add("dns.injected_servfail", 1),
                    DnsFailure::Timeout => obs::counter_add("dns.injected_timeout", 1),
                }
                return Some(burst.failure);
            }
        }
        None
    }
}

impl<R: ResolveAddrs> ResolveAddrs for FaultyResolver<R> {
    fn resolve_addrs(&self, name: &Name, family: Family) -> AddrsOutcome {
        match self.inject() {
            Some(failure) => failure.outcome(),
            None => self.inner.resolve_addrs(name, family),
        }
    }

    fn resolve_addrs_timed(
        &self,
        name: &Name,
        family: Family,
        base_latency: u64,
        config: &ResolverConfig,
    ) -> (AddrsOutcome, u64) {
        let attempts = config.attempts.max(1);
        let mut elapsed: u64 = 0;
        let mut last = AddrsOutcome::ServFail;
        for attempt in 0..attempts {
            if attempt > 0 {
                obs::counter_add("dns.retries", 1);
                let backoff = config.backoff_base << (attempt - 1).min(16);
                let jitter = if config.backoff_jitter > 0 {
                    self.rng.borrow_mut().gen_range(0..config.backoff_jitter)
                } else {
                    0
                };
                elapsed = elapsed.saturating_add(backoff).saturating_add(jitter);
            }
            match self.inject() {
                Some(DnsFailure::Timeout) => {
                    elapsed = elapsed.saturating_add(config.timeout);
                    last = AddrsOutcome::Timeout;
                }
                Some(DnsFailure::ServFail) => {
                    elapsed = elapsed.saturating_add(base_latency);
                    last = AddrsOutcome::ServFail;
                }
                None => {
                    let (outcome, latency) =
                        self.inner
                            .resolve_addrs_timed(name, family, base_latency, config);
                    return (outcome, elapsed.saturating_add(latency));
                }
            }
        }
        (last, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::ZoneDb;

    #[test]
    fn window_coverage() {
        let w = Window::new(2, 4, 10, 14);
        assert!(w.covers_day(2) && w.covers_day(4) && !w.covers_day(5));
        assert!(w.covers(3, 10) && w.covers(3, 13));
        assert!(!w.covers(3, 14) && !w.covers(1, 12));
        assert_eq!(w.hours_per_day(), 4);
        assert_eq!(Window::days(0, 0).hours_per_day(), 24);
    }

    #[test]
    fn empty_plan_reports_nothing() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert!(plan.dns_for_day(0).is_empty());
        assert!(!plan.gateway_down(PoolTarget::Both, 0, 0));
        assert_eq!(plan.pool_capacity(4096, 0), 4096);
        assert!(plan.path_for_day(0).is_empty());
        assert!(plan.churn_for_day(0).is_empty());
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let plan = FaultPlan::new(42);
        let a: Vec<u64> = {
            let mut r = plan.stream(1, 5, 3);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = plan.stream(1, 5, 3);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b, "same coordinates, same stream");
        let mut c = plan.stream(1, 5, 4);
        let mut d = plan.stream(2, 5, 3);
        let mut e = FaultPlan::new(43).stream(1, 5, 3);
        assert_ne!(a[0], c.gen::<u64>(), "day changes the stream");
        assert_ne!(a[0], d.gen::<u64>(), "tag changes the stream");
        assert_ne!(a[0], e.gen::<u64>(), "seed changes the stream");
    }

    #[test]
    fn dns_rate_scales_with_window_hours() {
        let plan = FaultPlan::new(0)
            .dns_burst(DnsFailure::Timeout, 0.6, Window::new(1, 1, 0, 12))
            .dns_burst(DnsFailure::ServFail, 0.5, Window::days(2, 2));
        let day1 = plan.dns_for_day(1);
        assert_eq!(day1.len(), 1);
        assert!((day1[0].rate - 0.3).abs() < 1e-12);
        let day2 = plan.dns_for_day(2);
        assert_eq!(day2[0].failure, DnsFailure::ServFail);
        assert!((day2[0].rate - 0.5).abs() < 1e-12);
        assert!(plan.dns_for_day(0).is_empty());
    }

    #[test]
    fn pool_capacity_shrinks_and_restores() {
        let plan = FaultPlan::new(0)
            .pool_shrink(0.5, Window::days(1, 2))
            .pool_shrink(0.5, Window::days(2, 3));
        assert_eq!(plan.pool_capacity(1000, 0), 1000);
        assert_eq!(plan.pool_capacity(1000, 1), 500);
        assert_eq!(plan.pool_capacity(1000, 2), 250, "shrinks compose");
        assert_eq!(plan.pool_capacity(1000, 4), 1000, "restored after window");
        assert_eq!(plan.pool_capacity(1, 2), 1, "never shrinks to zero");
    }

    #[test]
    fn gateway_targeting() {
        let plan = FaultPlan::new(0).gateway_outage(PoolTarget::Nat64, Window::days(0, 0));
        assert!(plan.gateway_down(PoolTarget::Nat64, 0, 5));
        assert!(!plan.gateway_down(PoolTarget::Aftr, 0, 5));
        assert!(
            plan.gateway_down(PoolTarget::Both, 0, 5),
            "Both asks either"
        );
        let both = FaultPlan::new(0).gateway_outage(PoolTarget::Both, Window::days(0, 0));
        assert!(both.gateway_down(PoolTarget::Aftr, 0, 0));
        assert!(both.gateway_outage_on_day(0) && !both.gateway_outage_on_day(1));
    }

    #[test]
    fn churn_batches_replay_and_withdraw_yesterday() {
        let plan = FaultPlan::new(9).rib_churn(10, 0.4, Window::days(1, 2));
        assert!(plan.churn_for_day(0).is_empty());
        let d1 = plan.churn_for_day(1);
        assert_eq!(d1.len(), 10, "first day announces only");
        assert!(d1.iter().all(|op| matches!(op, ChurnOp::Announce(..))));
        let d2 = plan.churn_for_day(2);
        let withdrawn: Vec<_> = d2
            .iter()
            .filter_map(|op| match op {
                ChurnOp::Withdraw(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(withdrawn.len(), 4, "40% of yesterday's 10");
        let announced_d1: Vec<_> = d1
            .iter()
            .filter_map(|op| match op {
                ChurnOp::Announce(p, _) => Some(*p),
                _ => None,
            })
            .collect();
        for p in &withdrawn {
            assert!(announced_d1.contains(p), "withdraws reference day-1 batch");
        }
        // Day 3: window over, only the tail withdrawal of day 2's batch.
        let d3 = plan.churn_for_day(3);
        assert!(d3.iter().all(|op| matches!(op, ChurnOp::Withdraw(_))));
        assert_eq!(d3.len(), 4);
        assert!(plan.churn_for_day(4).is_empty());
        assert_eq!(plan.churn_for_day(2), plan.churn_for_day(2), "replayable");
    }

    #[test]
    fn faulty_resolver_injects_and_retries() {
        let mut db = ZoneDb::new();
        db.add_a("site.test".into(), "192.0.2.1".parse().unwrap());
        let resolver = dnssim::Resolver::new(&db);
        let plan = FaultPlan::new(1);

        // rate 1.0: every attempt fails; timed path exhausts its retries.
        let always = FaultyResolver::new(
            resolver,
            vec![DayDnsFault {
                failure: DnsFailure::ServFail,
                rate: 1.0,
            }],
            plan.stream(0, 0, 0),
        );
        assert_eq!(
            always.resolve_addrs(&"site.test".into(), Family::V4),
            AddrsOutcome::ServFail
        );
        let cfg = ResolverConfig {
            attempts: 3,
            backoff_jitter: 0,
            ..ResolverConfig::default()
        };
        let (outcome, latency) =
            always.resolve_addrs_timed(&"site.test".into(), Family::V4, 20_000, &cfg);
        assert_eq!(outcome, AddrsOutcome::ServFail);
        // 3 failed attempts at base latency + backoff 250ms + 500ms.
        assert_eq!(latency, 3 * 20_000 + 250_000 + 500_000);

        // rate 0.0 with an empty burst list is not constructed at all in
        // consumers; rate 0.0 here proves pass-through still resolves.
        let never = FaultyResolver::new(
            resolver,
            vec![DayDnsFault {
                failure: DnsFailure::Timeout,
                rate: 0.0,
            }],
            plan.stream(0, 0, 1),
        );
        let (outcome, latency) =
            never.resolve_addrs_timed(&"site.test".into(), Family::V4, 20_000, &cfg);
        assert!(outcome.is_success());
        assert_eq!(latency, 20_000);
    }

    #[test]
    fn faulty_resolver_timeout_costs_config_timeout() {
        let mut db = ZoneDb::new();
        db.add_a("site.test".into(), "192.0.2.1".parse().unwrap());
        let resolver = dnssim::Resolver::new(&db);
        let always = FaultyResolver::new(
            resolver,
            vec![DayDnsFault {
                failure: DnsFailure::Timeout,
                rate: 1.0,
            }],
            FaultPlan::new(2).stream(0, 0, 0),
        );
        let cfg = ResolverConfig {
            timeout: 1_000_000,
            attempts: 1,
            ..ResolverConfig::default()
        };
        let (outcome, latency) =
            always.resolve_addrs_timed(&"site.test".into(), Family::V4, 20_000, &cfg);
        assert_eq!(outcome, AddrsOutcome::Timeout);
        assert_eq!(latency, 1_000_000);
    }
}
