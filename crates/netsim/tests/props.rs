//! Property tests for the discrete-event substrate.

use netsim::{ConnectOutcome, EventQueue, Network, PathProfile, TcpConnector, MILLIS, SECONDS};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn queue_orders_events(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = 0;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Ties break by insertion order (determinism).
    #[test]
    fn queue_fifo_on_ties(n in 1usize..100) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for i in 0..n {
            q.schedule_at(42, i);
        }
        for expect in 0..n {
            let (_, got) = q.pop().unwrap();
            prop_assert_eq!(got, expect);
        }
    }

    /// On a lossless reachable path, connect always succeeds exactly one RTT
    /// after start; on an unreachable path it always fails, after a delay
    /// that grows with the retry budget.
    #[test]
    fn connect_outcomes_are_lawful(
        rtt_ms in 1u64..500,
        retries in 0u32..6,
        start in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let connector = TcpConnector { initial_rto: SECONDS, syn_retries: retries };
        let mut rng = SmallRng::seed_from_u64(seed);

        let net = Network::dual_stack_ms(rtt_ms);
        match connector.connect(&net, &mut rng, "192.0.2.1".parse().unwrap(), start) {
            ConnectOutcome::Connected { at, syn_count } => {
                prop_assert_eq!(at, start + rtt_ms * MILLIS);
                prop_assert_eq!(syn_count, 1);
            }
            ConnectOutcome::Failed { .. } => prop_assert!(false, "clean path must connect"),
        }

        let mut dead = Network::dual_stack_ms(rtt_ms);
        dead.set_family_default(iputil::Family::V4, PathProfile::unreachable());
        match connector.connect(&dead, &mut rng, "192.0.2.1".parse().unwrap(), start) {
            ConnectOutcome::Failed { at, .. } => {
                // Total wait: sum of RTOs 1+2+...+2^retries seconds.
                let expected = start + ((1u64 << (retries + 1)) - 1) * SECONDS;
                prop_assert_eq!(at, expected);
            }
            ConnectOutcome::Connected { .. } => {
                prop_assert!(false, "unreachable path must not connect")
            }
        }
    }

    /// Path resolution: exact > prefix > family default, for arbitrary hosts
    /// inside/outside the configured prefix.
    #[test]
    fn path_precedence(host in 0u8..255, in_prefix in any::<bool>()) {
        let mut net = Network::dual_stack_ms(30);
        net.set_prefix4("198.51.100.0/24".parse().unwrap(), PathProfile::healthy_ms(80));
        let addr: std::net::IpAddr = if in_prefix {
            format!("198.51.100.{host}").parse().unwrap()
        } else {
            format!("203.0.113.{host}").parse().unwrap()
        };
        let got = net.path_to(addr).rtt / MILLIS;
        prop_assert_eq!(got, if in_prefix { 80 } else { 30 });
        // Exact override beats the prefix.
        net.set_path(addr, PathProfile::healthy_ms(5));
        prop_assert_eq!(net.path_to(addr).rtt / MILLIS, 5);
    }
}
