//! A generic discrete-event queue with a virtual clock.

use crate::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An ordered queue of future events driving a virtual clock.
///
/// Events fire in timestamp order; equal timestamps fire in insertion order,
/// which keeps every simulation fully deterministic.
///
/// ```
/// use netsim::EventQueue;
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_at(20, "world");
/// q.schedule_at(10, "hello");
/// assert_eq!(q.pop(), Some((10, "hello")));
/// assert_eq!(q.now(), 10);
/// assert_eq!(q.pop(), Some((20, "world")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past (before `now`): time travel in a
    /// simulation is always a bug.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` `delay` microseconds from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Peek at the next event's timestamp without advancing the clock.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drain and drop all pending events (keeps the clock).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(3, 0);
        assert_eq!(q.pop(), Some((3, 0)));
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(10, ());
        q.schedule_in(25, ()); // relative to now=0 → at 25
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), 25);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_at(100, 1);
        q.pop();
        q.schedule_in(50, 2);
        assert_eq!(q.pop(), Some((150, 2)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_events() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_at(100, 1);
        q.pop();
        q.schedule_at(50, 2);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_at(7, 1);
        q.pop();
        q.schedule_at(100, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 7);
    }
}
