//! Per-destination path properties.
//!
//! A [`Network`] answers one question: what does the path from this vantage
//! point to a given destination address look like? Destinations can be
//! configured individually (exact address), by covering prefix, or fall back
//! to per-family defaults. Prefix entries let the world generator give a
//! whole AS a latency/loss profile in one call.

use crate::Time;
use iputil::prefix::{Prefix4, Prefix6};
use iputil::trie::{Lpm4, Lpm6};
use std::collections::HashMap;
use std::net::IpAddr;

/// The properties of one network path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathProfile {
    /// Round-trip time in microseconds.
    pub rtt: Time,
    /// Probability that a single packet (SYN) is lost, in `[0, 1]`.
    pub loss: f64,
    /// Hard reachability: `false` models a black-holed path (e.g. broken
    /// CPE IPv6, the paper's Residence C conjecture) where every packet is
    /// dropped regardless of `loss`.
    pub reachable: bool,
}

impl PathProfile {
    /// A healthy path with the given RTT in milliseconds and no loss.
    pub fn healthy_ms(rtt_ms: u64) -> PathProfile {
        PathProfile {
            rtt: rtt_ms * crate::MILLIS,
            loss: 0.0,
            reachable: true,
        }
    }

    /// A black-holed path: packets vanish.
    pub fn unreachable() -> PathProfile {
        PathProfile {
            rtt: 0,
            loss: 1.0,
            reachable: false,
        }
    }

    /// Validate invariants (loss in range, rtt sane).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(format!("loss {} outside [0,1]", self.loss));
        }
        Ok(())
    }
}

impl Default for PathProfile {
    fn default() -> Self {
        PathProfile::healthy_ms(30)
    }
}

/// The view of the network from one vantage point (e.g. a residence router
/// or a crawler machine).
#[derive(Debug, Clone)]
pub struct Network {
    exact: HashMap<IpAddr, PathProfile>,
    by_prefix4: Lpm4<PathProfile>,
    by_prefix6: Lpm6<PathProfile>,
    v4_default: PathProfile,
    v6_default: PathProfile,
}

impl Network {
    /// A network where every destination gets the family default profile.
    pub fn new(v4_default: PathProfile, v6_default: PathProfile) -> Network {
        v4_default.validate().expect("valid v4 default");
        v6_default.validate().expect("valid v6 default");
        Network {
            exact: HashMap::new(),
            by_prefix4: Lpm4::new(),
            by_prefix6: Lpm6::new(),
            v4_default,
            v6_default,
        }
    }

    /// A dual-stack network with identical healthy defaults.
    pub fn dual_stack_ms(rtt_ms: u64) -> Network {
        Network::new(
            PathProfile::healthy_ms(rtt_ms),
            PathProfile::healthy_ms(rtt_ms),
        )
    }

    /// Override the path to one exact destination address.
    pub fn set_path(&mut self, dst: IpAddr, profile: PathProfile) {
        profile.validate().expect("valid profile");
        self.exact.insert(dst, profile);
    }

    /// Override the path for every address in an IPv4 prefix.
    pub fn set_prefix4(&mut self, prefix: Prefix4, profile: PathProfile) {
        profile.validate().expect("valid profile");
        self.by_prefix4.insert(prefix, profile);
    }

    /// Override the path for every address in an IPv6 prefix.
    pub fn set_prefix6(&mut self, prefix: Prefix6, profile: PathProfile) {
        profile.validate().expect("valid profile");
        self.by_prefix6.insert(prefix, profile);
    }

    /// Replace the per-family default profile.
    pub fn set_family_default(&mut self, family: iputil::Family, profile: PathProfile) {
        profile.validate().expect("valid profile");
        match family {
            iputil::Family::V4 => self.v4_default = profile,
            iputil::Family::V6 => self.v6_default = profile,
        }
    }

    /// Resolve the path profile for a destination: exact match, then longest
    /// covering prefix, then the family default.
    pub fn path_to(&self, dst: IpAddr) -> PathProfile {
        if let Some(p) = self.exact.get(&dst) {
            return *p;
        }
        match dst {
            IpAddr::V4(a) => self
                .by_prefix4
                .longest_match(a)
                .map(|(_, p)| *p)
                .unwrap_or(self.v4_default),
            IpAddr::V6(a) => self
                .by_prefix6
                .longest_match(a)
                .map(|(_, p)| *p)
                .unwrap_or(self.v6_default),
        }
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::dual_stack_ms(30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_per_family() {
        let net = Network::new(PathProfile::healthy_ms(20), PathProfile::healthy_ms(18));
        assert_eq!(
            net.path_to("192.0.2.1".parse().unwrap()).rtt,
            20 * crate::MILLIS
        );
        assert_eq!(
            net.path_to("2001:db8::1".parse().unwrap()).rtt,
            18 * crate::MILLIS
        );
    }

    #[test]
    fn exact_beats_prefix_beats_default() {
        let mut net = Network::dual_stack_ms(30);
        net.set_prefix4(
            "198.51.100.0/24".parse().unwrap(),
            PathProfile::healthy_ms(80),
        );
        net.set_path("198.51.100.7".parse().unwrap(), PathProfile::healthy_ms(5));
        assert_eq!(
            net.path_to("198.51.100.7".parse().unwrap()).rtt,
            5 * crate::MILLIS
        );
        assert_eq!(
            net.path_to("198.51.100.8".parse().unwrap()).rtt,
            80 * crate::MILLIS
        );
        assert_eq!(
            net.path_to("198.51.101.8".parse().unwrap()).rtt,
            30 * crate::MILLIS
        );
    }

    #[test]
    fn longest_prefix_wins() {
        let mut net = Network::dual_stack_ms(30);
        net.set_prefix6(
            "2001:db8::/32".parse().unwrap(),
            PathProfile::healthy_ms(50),
        );
        net.set_prefix6(
            "2001:db8:1::/48".parse().unwrap(),
            PathProfile::healthy_ms(9),
        );
        assert_eq!(
            net.path_to("2001:db8:1::5".parse().unwrap()).rtt,
            9 * crate::MILLIS
        );
        assert_eq!(
            net.path_to("2001:db8:2::5".parse().unwrap()).rtt,
            50 * crate::MILLIS
        );
    }

    #[test]
    fn broken_v6_family() {
        let mut net = Network::dual_stack_ms(30);
        net.set_family_default(iputil::Family::V6, PathProfile::unreachable());
        assert!(!net.path_to("2001:db8::1".parse().unwrap()).reachable);
        assert!(net.path_to("192.0.2.1".parse().unwrap()).reachable);
    }

    #[test]
    #[should_panic(expected = "loss")]
    fn rejects_invalid_loss() {
        let mut net = Network::dual_stack_ms(10);
        net.set_path(
            "192.0.2.1".parse().unwrap(),
            PathProfile {
                rtt: 0,
                loss: 1.5,
                reachable: true,
            },
        );
    }
}
