//! # netsim — deterministic discrete-event network simulation
//!
//! The paper's client-side measurements ride on real networks; we ride on
//! this crate. In the spirit of smoltcp ("simplicity and robustness" as
//! design goals), it is a *synchronous, event-driven* simulator: no async
//! runtime, no threads, no wall-clock — just a virtual microsecond clock, a
//! binary-heap event queue, per-destination path profiles and a TCP
//! handshake model with SYN retransmission.
//!
//! The crate deliberately models only what the measurement pipelines need:
//!
//! * [`event::EventQueue`] — a generic ordered event queue. Happy Eyeballs
//!   ([`happyeyeballs`](https://docs.rs)) schedules resolution timers and
//!   staggered connection attempts through it.
//! * [`path::Network`] — maps destination addresses to [`path::PathProfile`]s
//!   (RTT, loss, reachability) with per-family defaults; this is where a
//!   residence with broken IPv6 (the paper's Residence C conjecture) is
//!   expressed as `v6_default.reachable = false`.
//! * [`tcp::TcpConnector`] — models connection establishment: a SYN is lost
//!   with the path's loss probability, retransmitted with exponential
//!   backoff, and the connection completes one RTT after the first SYN that
//!   survives.
//!
//! Determinism: all randomness comes from caller-provided [`rand::Rng`]
//! state, and ties in the event queue break by insertion sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod path;
pub mod tcp;

pub use event::EventQueue;
pub use path::{Network, PathProfile};
pub use tcp::{ConnectOutcome, TcpConnector};

/// Virtual time in microseconds since simulation start.
pub type Time = u64;

/// One virtual millisecond.
pub const MILLIS: Time = 1_000;

/// One virtual second.
pub const SECONDS: Time = 1_000_000;
