//! TCP connection-establishment model.
//!
//! Happy Eyeballs cares about exactly one thing per address: *when* (and
//! whether) a TCP connection to it becomes established. We model the
//! three-way handshake as: send SYN; the SYN (or its SYN-ACK) is lost with
//! the path's loss probability; lost SYNs are retransmitted with exponential
//! backoff (1 s initial RTO, doubling, like Linux's `tcp_syn_retries`
//! behaviour); a surviving SYN completes the handshake one RTT after it was
//! sent. Unreachable paths never complete and fail when retries are
//! exhausted.

use crate::path::Network;
use crate::{Time, SECONDS};
use rand::Rng;
use std::net::IpAddr;

/// Why a connection attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// All SYN (re)transmissions were lost; gave up at the reported time.
    TimedOut,
}

/// Result of a simulated connect: established at a time, or failed at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectOutcome {
    /// Handshake completed at the given absolute time.
    Connected {
        /// Absolute completion time.
        at: Time,
        /// How many SYNs were sent in total (1 = no retransmission).
        syn_count: u32,
    },
    /// Attempt abandoned at the given absolute time.
    Failed {
        /// Absolute failure time.
        at: Time,
        /// Failure reason.
        reason: ConnectError,
    },
}

impl ConnectOutcome {
    /// The completion time if connected.
    pub fn connected_at(&self) -> Option<Time> {
        match self {
            ConnectOutcome::Connected { at, .. } => Some(*at),
            ConnectOutcome::Failed { .. } => None,
        }
    }

    /// The absolute time the attempt resolved either way.
    pub fn resolved_at(&self) -> Time {
        match self {
            ConnectOutcome::Connected { at, .. } => *at,
            ConnectOutcome::Failed { at, .. } => *at,
        }
    }
}

/// Simulates TCP connection establishment over a [`Network`].
#[derive(Debug, Clone, Copy)]
pub struct TcpConnector {
    /// Initial retransmission timeout (Linux default: 1 s).
    pub initial_rto: Time,
    /// Number of SYN retransmissions before giving up (Linux default: 6;
    /// we default to 3 to keep simulated tail latencies reasonable, matching
    /// tuned client stacks).
    pub syn_retries: u32,
}

impl Default for TcpConnector {
    fn default() -> Self {
        TcpConnector {
            initial_rto: SECONDS,
            syn_retries: 3,
        }
    }
}

impl TcpConnector {
    /// Simulate a connect to `dst` starting at absolute time `start`.
    ///
    /// Deterministic given the RNG state: each SYN consumes exactly one
    /// `rng.gen::<f64>()` draw when the path is lossy (no draws on clean or
    /// black-holed paths).
    pub fn connect<R: Rng + ?Sized>(
        &self,
        net: &Network,
        rng: &mut R,
        dst: IpAddr,
        start: Time,
    ) -> ConnectOutcome {
        let path = net.path_to(dst);
        let mut send_time = start;
        let mut rto = self.initial_rto;
        for attempt in 0..=self.syn_retries {
            let syn_count = attempt + 1;
            let delivered = path.reachable && (path.loss <= 0.0 || rng.gen::<f64>() >= path.loss);
            if delivered {
                return ConnectOutcome::Connected {
                    at: send_time + path.rtt,
                    syn_count,
                };
            }
            if attempt < self.syn_retries {
                send_time += rto;
                rto *= 2;
            } else {
                // Final timeout expires one RTO after the last SYN.
                return ConnectOutcome::Failed {
                    at: send_time + rto,
                    reason: ConnectError::TimedOut,
                };
            }
        }
        unreachable!("loop always returns");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathProfile;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn clean_path_connects_in_one_rtt() {
        let net = Network::dual_stack_ms(25);
        let out =
            TcpConnector::default().connect(&net, &mut rng(), "192.0.2.1".parse().unwrap(), 1_000);
        assert_eq!(
            out,
            ConnectOutcome::Connected {
                at: 1_000 + 25 * crate::MILLIS,
                syn_count: 1
            }
        );
    }

    #[test]
    fn unreachable_path_times_out_after_backoff() {
        let mut net = Network::dual_stack_ms(25);
        net.set_family_default(iputil::Family::V6, PathProfile::unreachable());
        let c = TcpConnector {
            initial_rto: SECONDS,
            syn_retries: 3,
        };
        let out = c.connect(&net, &mut rng(), "2001:db8::1".parse().unwrap(), 0);
        // SYNs at 0, 1s, 3s, 7s; final timeout at 7s + 8s = 15s.
        assert_eq!(
            out,
            ConnectOutcome::Failed {
                at: 15 * SECONDS,
                reason: ConnectError::TimedOut
            }
        );
    }

    #[test]
    fn lossy_path_eventually_connects() {
        let mut net = Network::dual_stack_ms(10);
        net.set_path(
            "198.51.100.1".parse().unwrap(),
            PathProfile {
                rtt: 10 * crate::MILLIS,
                loss: 0.5,
                reachable: true,
            },
        );
        let c = TcpConnector::default();
        let mut r = rng();
        let mut connected = 0;
        let mut retried = 0;
        for _ in 0..200 {
            match c.connect(&net, &mut r, "198.51.100.1".parse().unwrap(), 0) {
                ConnectOutcome::Connected { syn_count, .. } => {
                    connected += 1;
                    if syn_count > 1 {
                        retried += 1;
                    }
                }
                ConnectOutcome::Failed { .. } => {}
            }
        }
        // With 50% loss and 4 SYNs, ~94% connect; many need retransmission.
        assert!(connected > 170, "connected {connected}/200");
        assert!(retried > 30, "retried {retried}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut net = Network::dual_stack_ms(10);
        net.set_path(
            "198.51.100.1".parse().unwrap(),
            PathProfile {
                rtt: 10 * crate::MILLIS,
                loss: 0.3,
                reachable: true,
            },
        );
        let c = TcpConnector::default();
        let a = c.connect(&net, &mut rng(), "198.51.100.1".parse().unwrap(), 0);
        let b = c.connect(&net, &mut rng(), "198.51.100.1".parse().unwrap(), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_retries_single_shot() {
        let mut net = Network::dual_stack_ms(10);
        net.set_family_default(iputil::Family::V4, PathProfile::unreachable());
        let c = TcpConnector {
            initial_rto: SECONDS,
            syn_retries: 0,
        };
        let out = c.connect(&net, &mut rng(), "192.0.2.9".parse().unwrap(), 0);
        assert_eq!(
            out,
            ConnectOutcome::Failed {
                at: SECONDS,
                reason: ConnectError::TimedOut
            }
        );
    }
}
