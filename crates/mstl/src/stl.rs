//! STL: Seasonal-Trend decomposition using LOESS (Cleveland et al., 1990).
//!
//! The inner loop alternates between estimating the seasonal component (by
//! smoothing each cycle-subseries with LOESS, then removing low-frequency
//! leakage with a 3-stage moving-average low-pass filter) and estimating the
//! trend (LOESS on the deseasonalized series). The optional outer loop
//! computes bisquare robustness weights from the remainder so gross outliers
//! (e.g. a residence's single 400 GB download day) do not distort the
//! seasonal shape.

use crate::loess::{bisquare_weights, loess_at, loess_smooth, LoessConfig};

/// Seasonal smoothing span selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeasonalSpan {
    /// Each cycle-subseries is replaced by its (weighted) mean — equivalent
    /// to R's `s.window = "periodic"`; the seasonal pattern is constant.
    Periodic,
    /// LOESS window (in cycles) for cycle-subseries smoothing; should be odd
    /// and ≥ 7 for the classic STL behaviour.
    Window(usize),
}

/// STL configuration.
#[derive(Debug, Clone, Copy)]
pub struct StlConfig {
    /// Seasonal period in samples (24 = daily cycle on hourly data).
    pub period: usize,
    /// Seasonal smoothing span.
    pub seasonal_span: SeasonalSpan,
    /// Trend LOESS span; `None` picks the STL default: the smallest odd
    /// integer ≥ `1.5 p / (1 − 1.5/n_s)`.
    pub trend_span: Option<usize>,
    /// Low-pass LOESS span; `None` picks the smallest odd integer ≥ period.
    pub lowpass_span: Option<usize>,
    /// Inner-loop iterations (STL default 2 when not robust).
    pub inner_iterations: usize,
    /// Outer robustness iterations (0 disables robustness weighting).
    pub robust_iterations: usize,
}

impl StlConfig {
    /// A non-robust configuration with classic defaults for `period`.
    pub fn for_period(period: usize) -> StlConfig {
        StlConfig {
            period,
            seasonal_span: SeasonalSpan::Window(11),
            trend_span: None,
            lowpass_span: None,
            inner_iterations: 2,
            robust_iterations: 0,
        }
    }
}

/// Result of one STL decomposition: `observed = seasonal + trend + remainder`.
#[derive(Debug, Clone)]
pub struct StlResult {
    /// Seasonal component (period-cyclic, slowly evolving).
    pub seasonal: Vec<f64>,
    /// Trend component.
    pub trend: Vec<f64>,
    /// Remainder (exactly `y - seasonal - trend`).
    pub remainder: Vec<f64>,
    /// Final robustness weights (all 1.0 when not robust).
    pub weights: Vec<f64>,
}

/// STL decomposer.
#[derive(Debug, Clone)]
pub struct Stl {
    config: StlConfig,
}

impl Stl {
    /// Create a decomposer from a config.
    pub fn new(config: StlConfig) -> Stl {
        Stl { config }
    }

    /// Decompose `y`. Errors when the series is shorter than two periods.
    pub fn decompose(&self, y: &[f64]) -> Result<StlResult, String> {
        let n = y.len();
        let p = self.config.period;
        if p < 2 {
            return Err(format!("period {p} too small"));
        }
        if n < 2 * p {
            return Err(format!("series length {n} < 2 * period {p}"));
        }

        let seasonal_cfg = match self.config.seasonal_span {
            SeasonalSpan::Periodic => None,
            SeasonalSpan::Window(w) => Some(LoessConfig::new(w.max(3) | 1, 1)),
        };
        let ns = match self.config.seasonal_span {
            SeasonalSpan::Periodic => 10 * n + 1, // effectively infinite
            SeasonalSpan::Window(w) => w.max(3) | 1,
        };
        let nt = self.config.trend_span.unwrap_or_else(|| {
            let raw = 1.5 * p as f64 / (1.0 - 1.5 / ns as f64);
            (raw.ceil() as usize) | 1
        });
        let nl = self.config.lowpass_span.unwrap_or(p | 1);
        let trend_cfg = LoessConfig::new(nt.max(3), 1);
        let lowpass_cfg = LoessConfig::new(nl.max(3), 1);

        let mut weights = vec![1.0f64; n];
        let mut seasonal = vec![0.0f64; n];
        let mut trend = vec![0.0f64; n];

        let outer = self.config.robust_iterations + 1;
        for outer_iter in 0..outer {
            let rw = if outer_iter == 0 {
                None
            } else {
                Some(&weights)
            };
            for _ in 0..self.config.inner_iterations.max(1) {
                // 1. Detrend.
                let detrended: Vec<f64> = y.iter().zip(&trend).map(|(a, b)| a - b).collect();
                // 2. Cycle-subseries smoothing, extended one period both sides.
                let c = cycle_subseries_smooth(&detrended, p, seasonal_cfg, rw.map(|w| &w[..]));
                // 3. Low-pass: MA(p) ∘ MA(p) ∘ MA(3) ∘ LOESS(nl).
                let l1 = moving_average(&c, p);
                let l2 = moving_average(&l1, p);
                let l3 = moving_average(&l2, 3);
                debug_assert_eq!(l3.len(), n);
                let low = loess_smooth(&l3, lowpass_cfg, None);
                // 4. Seasonal = smoothed cycle-subseries minus low-pass leakage.
                #[allow(clippy::needless_range_loop)] // t spans two offset arrays
                for t in 0..n {
                    seasonal[t] = c[p + t] - low[t];
                }
                // 5-6. Deseasonalize and re-estimate trend.
                let deseason: Vec<f64> = y.iter().zip(&seasonal).map(|(a, b)| a - b).collect();
                trend = loess_smooth(&deseason, trend_cfg, rw.map(|w| &w[..]));
            }
            if outer_iter + 1 < outer {
                let resid: Vec<f64> = (0..n).map(|t| y[t] - seasonal[t] - trend[t]).collect();
                weights = bisquare_weights(&resid);
            }
        }

        let remainder: Vec<f64> = (0..n).map(|t| y[t] - seasonal[t] - trend[t]).collect();
        Ok(StlResult {
            seasonal,
            trend,
            remainder,
            weights,
        })
    }
}

/// Smooth each cycle-subseries of `y` (period `p`) and return the
/// concatenation re-extended by one full period on both ends
/// (length `n + 2p`), as required by the STL low-pass stage.
///
/// `cfg = None` means periodic: each subseries becomes its weighted mean.
fn cycle_subseries_smooth(
    y: &[f64],
    p: usize,
    cfg: Option<LoessConfig>,
    robustness: Option<&[f64]>,
) -> Vec<f64> {
    let n = y.len();
    let mut out = vec![0.0f64; n + 2 * p];
    for phase in 0..p {
        // Gather the subseries for this phase.
        let positions: Vec<usize> = (phase..n).step_by(p).collect();
        let sub: Vec<f64> = positions.iter().map(|&t| y[t]).collect();
        let sub_w: Option<Vec<f64>> = robustness.map(|w| positions.iter().map(|&t| w[t]).collect());
        let m = sub.len();

        // Evaluate at -1, 0..m-1, m (one extra cycle each side).
        let eval: Vec<f64> = std::iter::once(-1.0)
            .chain((0..m).map(|i| i as f64))
            .chain(std::iter::once(m as f64))
            .collect();
        let smoothed: Vec<f64> = match cfg {
            Some(c) => loess_at(&sub, &eval, c, sub_w.as_deref()),
            None => {
                // Periodic: weighted mean everywhere.
                let (mut num, mut den) = (0.0, 0.0);
                for (i, &v) in sub.iter().enumerate() {
                    let w = sub_w.as_ref().map_or(1.0, |ws| ws[i]);
                    num += w * v;
                    den += w;
                }
                let mean = if den > 0.0 {
                    num / den
                } else {
                    sub.iter().sum::<f64>() / m as f64
                };
                vec![mean; m + 2]
            }
        };

        // Scatter back: smoothed[0] is the pre-extension (position phase - p
        // in the extended series, i.e. index phase in `out`), smoothed[1..=m]
        // are the in-range cycles, smoothed[m+1] is the post-extension.
        out[phase] = smoothed[0];
        for (k, &t) in positions.iter().enumerate() {
            out[p + t] = smoothed[k + 1];
        }
        let post_index = p + phase + m * p;
        if post_index < out.len() {
            out[post_index] = smoothed[m + 1];
        }
    }
    out
}

/// Simple centered-by-construction moving average: output length is
/// `input.len() - window + 1`.
fn moving_average(y: &[f64], window: usize) -> Vec<f64> {
    debug_assert!(window >= 1 && y.len() >= window);
    let mut out = Vec::with_capacity(y.len() - window + 1);
    let mut acc: f64 = y[..window].iter().sum();
    out.push(acc / window as f64);
    for t in window..y.len() {
        acc += y[t] - y[t - window];
        out.push(acc / window as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn moving_average_lengths_compose_to_n() {
        let p = 24;
        let n = 240;
        let y = vec![1.0; n + 2 * p];
        let l1 = moving_average(&y, p);
        let l2 = moving_average(&l1, p);
        let l3 = moving_average(&l2, 3);
        assert_eq!(l3.len(), n);
        assert!(l3.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn recovers_sine_seasonal() {
        let n = 24 * 14;
        let y: Vec<f64> = (0..n)
            .map(|t| 2.0 + 0.5 * (t as f64 * TAU / 24.0).sin())
            .collect();
        let r = Stl::new(StlConfig::for_period(24)).decompose(&y).unwrap();
        // Trend should be ~2, seasonal ~ the sine, remainder ~ 0.
        for (t, &tr) in r.trend.iter().enumerate() {
            assert!((tr - 2.0).abs() < 0.15, "trend at {t}: {tr}");
        }
        let rms = (r.remainder.iter().map(|x| x * x).sum::<f64>() / n as f64).sqrt();
        assert!(rms < 0.05, "remainder RMS {rms}");
    }

    #[test]
    fn periodic_span_gives_constant_pattern() {
        let n = 24 * 8;
        let y: Vec<f64> = (0..n)
            .map(|t| (t as f64 * TAU / 24.0).sin() + 0.001 * t as f64)
            .collect();
        let cfg = StlConfig {
            seasonal_span: SeasonalSpan::Periodic,
            ..StlConfig::for_period(24)
        };
        let r = Stl::new(cfg).decompose(&y).unwrap();
        for t in 0..n - 24 {
            assert!(
                (r.seasonal[t] - r.seasonal[t + 24]).abs() < 1e-9,
                "periodic seasonal must repeat exactly (t={t})"
            );
        }
    }

    #[test]
    fn additivity_exact() {
        let n = 24 * 6;
        let y: Vec<f64> = (0..n).map(|t| (t % 24) as f64 + (t / 24) as f64).collect();
        let r = Stl::new(StlConfig::for_period(24)).decompose(&y).unwrap();
        for (t, &yt) in y.iter().enumerate() {
            let recon = r.seasonal[t] + r.trend[t] + r.remainder[t];
            assert!((recon - yt).abs() < 1e-12);
        }
    }

    #[test]
    fn robust_mode_downweights_spike() {
        let n = 24 * 12;
        let mut y: Vec<f64> = (0..n)
            .map(|t| 1.0 + 0.3 * (t as f64 * TAU / 24.0).sin())
            .collect();
        y[100] += 25.0;
        let robust_cfg = StlConfig {
            robust_iterations: 2,
            ..StlConfig::for_period(24)
        };
        let robust = Stl::new(robust_cfg).decompose(&y).unwrap();
        assert!(
            robust.weights[100] < 0.1,
            "spike weight {}",
            robust.weights[100]
        );
        // The spike should land mostly in the remainder, not the seasonal.
        let phase = 100 % 24;
        let mut seasonal_at_phase = Vec::new();
        for c in 0..n / 24 {
            seasonal_at_phase.push(robust.seasonal[c * 24 + phase]);
        }
        let spread = seasonal_at_phase
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - seasonal_at_phase
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
        assert!(spread < 2.0, "seasonal absorbed the spike: spread {spread}");
    }

    #[test]
    fn too_short_series_errors() {
        assert!(Stl::new(StlConfig::for_period(24))
            .decompose(&[0.0; 40])
            .is_err());
    }
}
