//! # mstl — seasonal-trend decomposition by LOESS
//!
//! A from-scratch implementation of the decomposition stack used in §3.3 of
//! the paper (following Baltra et al.):
//!
//! * [`loess`] — locally weighted regression (Cleveland 1979): tricube
//!   neighbourhood weights, optional robustness weights, polynomial degree
//!   0–2, evaluation at arbitrary positions (needed for the ±1-period
//!   extension of cycle-subseries).
//! * [`stl`] — STL (Cleveland, Cleveland, McRae & Terpenning 1990): the
//!   inner loop of cycle-subseries smoothing, low-pass filtering and trend
//!   smoothing, plus the outer robustness-weight loop with bisquare weights.
//! * [`mstl_decompose`] ([`Mstl`]) — MSTL (Bandara, Hyndman & Bergmeir 2021):
//!   iterative application of STL once per seasonal period, refining each
//!   seasonal component while the others are held out.
//!
//! The paper decomposes the *hourly IPv6 byte fraction* with daily (24) and
//! weekly (168) periods (Fig 2, 13) and daily series with a weekly period
//! (Fig 14, 15). The decomposition is exactly additive:
//! `observed = trend + Σ seasonal_i + remainder` holds bit-for-bit because
//! the remainder is computed by subtraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loess;
pub mod stl;

pub use loess::{loess_smooth, LoessConfig};
pub use stl::{SeasonalSpan, Stl, StlConfig, StlResult};

/// Result of an MSTL decomposition.
#[derive(Debug, Clone)]
pub struct Mstl {
    /// The input series.
    pub observed: Vec<f64>,
    /// Long-term trend component.
    pub trend: Vec<f64>,
    /// One seasonal component per requested period, in the order given
    /// (periods are processed ascending internally but reported in input
    /// order).
    pub seasonals: Vec<(usize, Vec<f64>)>,
    /// Remainder: `observed - trend - Σ seasonals`.
    pub remainder: Vec<f64>,
}

impl Mstl {
    /// Reconstruct the series from the components (should equal `observed`
    /// up to floating-point associativity).
    pub fn reconstructed(&self) -> Vec<f64> {
        let mut out = self.trend.clone();
        for (_, s) in &self.seasonals {
            for (o, v) in out.iter_mut().zip(s) {
                *o += v;
            }
        }
        for (o, r) in out.iter_mut().zip(&self.remainder) {
            *o += r;
        }
        out
    }

    /// The seasonal component for a given period, if present.
    pub fn seasonal(&self, period: usize) -> Option<&[f64]> {
        self.seasonals
            .iter()
            .find(|(p, _)| *p == period)
            .map(|(_, s)| s.as_slice())
    }
}

/// Configuration for [`mstl_decompose`].
#[derive(Debug, Clone)]
pub struct MstlConfig {
    /// Seasonal periods (e.g. `[24, 168]` for hourly data with daily and
    /// weekly cycles). Must each be ≥ 2 and < `n / 2`.
    pub periods: Vec<usize>,
    /// Number of refinement iterations over the seasonal set (MSTL default 2).
    pub iterations: usize,
    /// Seasonal LOESS span per period; `None` picks `7 + 4 * i` for the
    /// `i`-th (ascending) period, the MSTL paper default.
    pub seasonal_spans: Option<Vec<SeasonalSpan>>,
    /// Robustness iterations inside each STL call (0 = non-robust).
    pub robust_iterations: usize,
}

impl MstlConfig {
    /// Sensible defaults for the given periods.
    pub fn new(periods: Vec<usize>) -> MstlConfig {
        MstlConfig {
            periods,
            iterations: 2,
            seasonal_spans: None,
            robust_iterations: 1,
        }
    }
}

/// Run an MSTL decomposition.
///
/// ```
/// use mstl::{mstl_decompose, MstlConfig};
/// // Two days of hourly data with a clear daily cycle plus trend.
/// let y: Vec<f64> = (0..96)
///     .map(|t| 0.01 * t as f64 + (t as f64 * std::f64::consts::TAU / 24.0).sin())
///     .collect();
/// let d = mstl_decompose(&y, &MstlConfig::new(vec![24])).unwrap();
/// assert_eq!(d.trend.len(), 96);
/// let recon = d.reconstructed();
/// for (a, b) in recon.iter().zip(&y) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
///
/// Returns an error string when the series is too short for the requested
/// periods or parameters are degenerate.
pub fn mstl_decompose(series: &[f64], config: &MstlConfig) -> Result<Mstl, String> {
    let n = series.len();
    if series.iter().any(|x| x.is_nan()) {
        return Err("series contains NaN".into());
    }
    if config.periods.is_empty() {
        return Err("at least one seasonal period required".into());
    }
    let mut order: Vec<usize> = (0..config.periods.len()).collect();
    order.sort_by_key(|&i| config.periods[i]);
    for &p in &config.periods {
        if p < 2 {
            return Err(format!("period {p} too small (need >= 2)"));
        }
        if n < 2 * p {
            return Err(format!("series length {n} < 2 * period {p}"));
        }
    }

    // Per-period seasonal spans (MSTL default: 7 + 4*i over ascending periods).
    let spans: Vec<SeasonalSpan> = match &config.seasonal_spans {
        Some(s) => {
            if s.len() != config.periods.len() {
                return Err("seasonal_spans length must match periods".into());
            }
            s.clone()
        }
        None => (0..config.periods.len())
            .map(|i| SeasonalSpan::Window(7 + 4 * (i + 1)))
            .collect(),
    };

    let iterations = config.iterations.max(1);
    let mut seasonals: Vec<Vec<f64>> = vec![vec![0.0; n]; config.periods.len()];
    let mut deseason: Vec<f64> = series.to_vec();
    let mut last_trend: Vec<f64> = vec![0.0; n];

    for _iter in 0..iterations {
        for &pi in &order {
            let period = config.periods[pi];
            // Add this period's current seasonal back in before re-estimating it.
            for (d, s) in deseason.iter_mut().zip(&seasonals[pi]) {
                *d += s;
            }
            let stl_cfg = StlConfig {
                period,
                seasonal_span: spans[pi],
                trend_span: None,
                lowpass_span: None,
                inner_iterations: 2,
                robust_iterations: config.robust_iterations,
            };
            let fit = Stl::new(stl_cfg).decompose(&deseason)?;
            seasonals[pi] = fit.seasonal;
            last_trend = fit.trend;
            for (d, s) in deseason.iter_mut().zip(&seasonals[pi]) {
                *d -= s;
            }
        }
    }

    let mut remainder = series.to_vec();
    for (r, t) in remainder.iter_mut().zip(&last_trend) {
        *r -= t;
    }
    for s in &seasonals {
        for (r, v) in remainder.iter_mut().zip(s) {
            *r -= v;
        }
    }

    Ok(Mstl {
        observed: series.to_vec(),
        trend: last_trend,
        seasonals: config.periods.iter().cloned().zip(seasonals).collect(),
        remainder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn synthetic(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        // trend + daily (24) + weekly (168) seasonal, deterministic "noise".
        let trend: Vec<f64> = (0..n).map(|t| 0.5 + 0.001 * t as f64).collect();
        let daily: Vec<f64> = (0..n)
            .map(|t| 0.3 * (t as f64 * TAU / 24.0).sin())
            .collect();
        let weekly: Vec<f64> = (0..n)
            .map(|t| 0.15 * (t as f64 * TAU / 168.0).cos())
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|t| {
                trend[t] + daily[t] + weekly[t] + 0.01 * ((t * 7919 % 100) as f64 / 100.0 - 0.5)
            })
            .collect();
        (y, trend, daily, weekly)
    }

    fn corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            da += (x - ma) * (x - ma);
            db += (y - mb) * (y - mb);
        }
        num / (da * db).sqrt()
    }

    #[test]
    fn recovers_two_seasonal_components() {
        let n = 24 * 7 * 6; // six weeks hourly
        let (y, trend, daily, weekly) = synthetic(n);
        let d = mstl_decompose(&y, &MstlConfig::new(vec![24, 168])).unwrap();
        assert!(corr(d.seasonal(24).unwrap(), &daily) > 0.95);
        assert!(corr(d.seasonal(168).unwrap(), &weekly) > 0.9);
        assert!(corr(&d.trend, &trend) > 0.95);
    }

    #[test]
    fn additivity_is_exact() {
        let n = 24 * 7 * 4;
        let (y, ..) = synthetic(n);
        let d = mstl_decompose(&y, &MstlConfig::new(vec![24, 168])).unwrap();
        for (a, b) in d.reconstructed().iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_component_roughly_periodic() {
        let n = 24 * 7 * 4;
        let (y, ..) = synthetic(n);
        let d = mstl_decompose(&y, &MstlConfig::new(vec![24])).unwrap();
        let s = d.seasonal(24).unwrap();
        // Compare one period against the next; the seasonal evolves slowly so
        // adjacent periods should be close.
        let mut max_delta = 0.0f64;
        for t in 0..n - 24 {
            max_delta = max_delta.max((s[t] - s[t + 24]).abs());
        }
        assert!(max_delta < 0.2, "seasonal drifts too fast: {max_delta}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(mstl_decompose(&[1.0; 10], &MstlConfig::new(vec![])).is_err());
        assert!(mstl_decompose(&[1.0; 10], &MstlConfig::new(vec![24])).is_err());
        assert!(mstl_decompose(&[1.0; 10], &MstlConfig::new(vec![1])).is_err());
        let mut y = vec![1.0; 100];
        y[3] = f64::NAN;
        assert!(mstl_decompose(&y, &MstlConfig::new(vec![7])).is_err());
    }

    #[test]
    fn single_period_matches_direct_stl_shape() {
        let n = 24 * 10;
        let (y, ..) = synthetic(n);
        let d = mstl_decompose(&y, &MstlConfig::new(vec![24])).unwrap();
        assert_eq!(d.seasonals.len(), 1);
        assert_eq!(d.trend.len(), n);
        assert_eq!(d.remainder.len(), n);
        // Remainder should be small relative to the signal.
        let rms: f64 = (d.remainder.iter().map(|r| r * r).sum::<f64>() / n as f64).sqrt();
        assert!(rms < 0.12, "remainder RMS too large: {rms}");
    }

    #[test]
    fn periods_reported_in_input_order() {
        let n = 24 * 7 * 4;
        let (y, ..) = synthetic(n);
        let d = mstl_decompose(&y, &MstlConfig::new(vec![168, 24])).unwrap();
        assert_eq!(d.seasonals[0].0, 168);
        assert_eq!(d.seasonals[1].0, 24);
    }
}
