//! LOESS: locally weighted polynomial regression (Cleveland 1979).
//!
//! The STL building block. Data points sit at integer positions
//! `0..n-1`; smoothing evaluates a weighted least-squares polynomial fit in a
//! window of the `span` nearest points, weighted by the tricube kernel and
//! optional per-point robustness weights. Evaluation positions may lie
//! outside `[0, n-1]` (STL extends cycle-subseries one period to each side),
//! in which case the fit extrapolates from the nearest window.

/// Configuration for a LOESS smoothing pass.
#[derive(Debug, Clone, Copy)]
pub struct LoessConfig {
    /// Number of neighbourhood points used per fit. Values larger than the
    /// series length inflate the kernel bandwidth per the STL paper
    /// (`λ_q(x) = λ_n(x) · q/n`).
    pub span: usize,
    /// Polynomial degree: 0 (local mean), 1 (local linear) or 2.
    pub degree: usize,
}

impl LoessConfig {
    /// Create a config, validating the degree.
    pub fn new(span: usize, degree: usize) -> LoessConfig {
        assert!(degree <= 2, "LOESS degree must be 0, 1 or 2");
        assert!(span >= 2, "LOESS span must be at least 2");
        LoessConfig { span, degree }
    }
}

/// Smooth a series at every integer position, equivalent to
/// `loess_at(.., 0..n)`.
pub fn loess_smooth(y: &[f64], config: LoessConfig, robustness: Option<&[f64]>) -> Vec<f64> {
    let positions: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
    loess_at(y, &positions, config, robustness)
}

/// Evaluate the LOESS fit of `y` (at integer data positions) at arbitrary
/// positions `xs`.
///
/// `robustness`, when given, multiplies the tricube weights point-wise (the
/// STL outer loop feeds bisquare weights through here).
///
/// # Panics
/// Panics on empty input or mismatched robustness length.
pub fn loess_at(
    y: &[f64],
    xs: &[f64],
    config: LoessConfig,
    robustness: Option<&[f64]>,
) -> Vec<f64> {
    let n = y.len();
    assert!(n > 0, "empty series");
    if let Some(r) = robustness {
        assert_eq!(r.len(), n, "robustness weights length mismatch");
    }
    let q = config.span.max(2);
    let window = q.min(n);

    xs.iter()
        .map(|&x| {
            // Find the window of `window` nearest integer positions to x.
            let center = x.round().clamp(0.0, (n - 1) as f64) as usize;
            let (mut lo, mut hi) = (center, center); // inclusive bounds
            while hi - lo + 1 < window {
                let extend_left = if lo == 0 {
                    false
                } else if hi == n - 1 {
                    true
                } else {
                    // Extend towards the side whose next point is closer to x.
                    (x - (lo as f64 - 1.0)).abs() <= ((hi as f64 + 1.0) - x).abs()
                };
                if extend_left {
                    lo -= 1;
                } else {
                    hi += 1;
                }
            }
            // Kernel bandwidth: distance to the farthest in-window point,
            // inflated when span exceeds the series length.
            let mut d_max = (x - lo as f64).abs().max((hi as f64 - x).abs());
            if q > n {
                d_max *= q as f64 / n as f64;
            }
            if d_max <= 0.0 {
                d_max = 1.0; // single-point window degenerate case
            }

            fit_at(y, lo, hi, x, d_max, config.degree, robustness)
        })
        .collect()
}

/// Weighted least-squares polynomial fit over `y[lo..=hi]`, evaluated at `x`.
fn fit_at(
    y: &[f64],
    lo: usize,
    hi: usize,
    x: f64,
    d_max: f64,
    degree: usize,
    robustness: Option<&[f64]>,
) -> f64 {
    // Accumulate weighted moments around x (centering improves conditioning).
    let mut s: [f64; 5] = [0.0; 5]; // Σ w·dx^k for k=0..4
    let mut t: [f64; 3] = [0.0; 3]; // Σ w·y·dx^k for k=0..2
    for i in lo..=hi {
        let dx = i as f64 - x;
        let mut w = tricube((dx / d_max).abs());
        if let Some(r) = robustness {
            w *= r[i];
        }
        if w <= 0.0 {
            continue;
        }
        let mut p = w;
        for k in 0..5 {
            s[k] += p;
            if k < 3 {
                t[k] += p * y[i];
            }
            p *= dx;
        }
    }
    if s[0] <= 0.0 {
        // All weights vanished (can happen under harsh robustness weights):
        // fall back to the unweighted window mean.
        let cnt = (hi - lo + 1) as f64;
        return y[lo..=hi].iter().sum::<f64>() / cnt;
    }

    match degree {
        0 => t[0] / s[0],
        1 => {
            // Solve [s0 s1; s1 s2] [a; b] = [t0; t1]; value at x is `a`.
            let det = s[0] * s[2] - s[1] * s[1];
            if det.abs() < 1e-12 * s[0].max(1.0) {
                t[0] / s[0]
            } else {
                (t[0] * s[2] - t[1] * s[1]) / det
            }
        }
        2 => {
            // 3x3 normal equations; value at x is the constant coefficient.
            let m = [[s[0], s[1], s[2]], [s[1], s[2], s[3]], [s[2], s[3], s[4]]];
            let rhs = [t[0], t[1], t[2]];
            match solve3(m, rhs) {
                Some(c) => c[0],
                None => t[0] / s[0],
            }
        }
        _ => unreachable!("degree validated at construction"),
    }
}

/// Tricube kernel `(1 - u³)³` for `u ∈ [0, 1)`, else 0.
fn tricube(u: f64) -> f64 {
    if u >= 1.0 {
        0.0
    } else {
        let c = 1.0 - u * u * u;
        c * c * c
    }
}

/// Solve a 3×3 linear system by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // k walks two matrix rows in lockstep
fn solve3(mut m: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .expect("finite")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = m[row][col] / m[col][col];
            for k in col..3 {
                m[row][k] -= f * m[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in row + 1..3 {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Bisquare robustness weights from residuals, as in the STL outer loop:
/// `w_i = (1 - (|r_i| / 6·median|r|)²)²`, clipped to 0 outside.
pub fn bisquare_weights(residuals: &[f64]) -> Vec<f64> {
    let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
    abs.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let median = if abs.is_empty() {
        0.0
    } else {
        abs[abs.len() / 2]
    };
    let h = 6.0 * median;
    residuals
        .iter()
        .map(|r| {
            if h <= 0.0 {
                1.0
            } else {
                let u = (r.abs() / h).min(1.0);
                let c = 1.0 - u * u;
                c * c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_is_fixed_point() {
        let y = vec![3.5; 40];
        for degree in 0..=2 {
            let s = loess_smooth(&y, LoessConfig::new(7, degree), None);
            for v in s {
                assert!((v - 3.5).abs() < 1e-9, "degree {degree}");
            }
        }
    }

    #[test]
    fn linear_series_is_fixed_point_for_degree_1() {
        let y: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 + 1.0).collect();
        let s = loess_smooth(&y, LoessConfig::new(9, 1), None);
        for (i, v) in s.iter().enumerate() {
            assert!((v - y[i]).abs() < 1e-7, "at {i}: {v} vs {}", y[i]);
        }
    }

    #[test]
    fn quadratic_series_is_fixed_point_for_degree_2() {
        let y: Vec<f64> = (0..50)
            .map(|i| 0.5 * (i * i) as f64 - 3.0 * i as f64)
            .collect();
        let s = loess_smooth(&y, LoessConfig::new(11, 2), None);
        for (i, v) in s.iter().enumerate() {
            assert!((v - y[i]).abs() < 1e-6, "at {i}");
        }
    }

    #[test]
    fn smooths_noise() {
        // Noisy constant: smoothed variance must shrink.
        let y: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = loess_smooth(&y, LoessConfig::new(21, 1), None);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&s) < 0.1 * var(&y));
    }

    #[test]
    fn extrapolation_beyond_ends() {
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let out = loess_at(&y, &[-2.0, 31.0], LoessConfig::new(9, 1), None);
        assert!(
            (out[0] - (-2.0)).abs() < 1e-6,
            "left extrapolation: {}",
            out[0]
        );
        assert!(
            (out[1] - 31.0).abs() < 1e-6,
            "right extrapolation: {}",
            out[1]
        );
    }

    #[test]
    fn span_larger_than_series_uses_all_points() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let s = loess_smooth(&y, LoessConfig::new(100, 1), None);
        for (i, v) in s.iter().enumerate() {
            assert!((v - y[i]).abs() < 1e-7, "at {i}");
        }
    }

    #[test]
    fn robustness_downweights_outliers() {
        let mut y: Vec<f64> = (0..60).map(|i| i as f64 * 0.1).collect();
        y[30] = 100.0; // gross outlier
        let plain = loess_smooth(&y, LoessConfig::new(15, 1), None);
        // Two robustness rounds.
        let resid: Vec<f64> = y.iter().zip(&plain).map(|(a, b)| a - b).collect();
        let w = bisquare_weights(&resid);
        let robust = loess_smooth(&y, LoessConfig::new(15, 1), Some(&w));
        let err_plain = (plain[30] - 3.0).abs();
        let err_robust = (robust[30] - 3.0).abs();
        assert!(
            err_robust < err_plain,
            "robust {err_robust} vs plain {err_plain}"
        );
    }

    #[test]
    fn bisquare_weight_properties() {
        let w = bisquare_weights(&[0.0, 1.0, -1.0, 10.0]);
        assert_eq!(w[0], 1.0);
        assert!(w[3] < w[1]);
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Zero residuals => all weights 1.
        assert!(bisquare_weights(&[0.0; 5]).iter().all(|&x| x == 1.0));
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn rejects_cubic() {
        let _ = LoessConfig::new(7, 3);
    }
}
