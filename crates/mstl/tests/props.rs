//! Property tests for the decomposition stack.

use mstl::loess::{loess_smooth, LoessConfig};
use mstl::{mstl_decompose, MstlConfig, SeasonalSpan, Stl, StlConfig};
use proptest::prelude::*;

fn series(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, min_len..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// observed = trend + seasonal + remainder, exactly, for any input.
    #[test]
    fn stl_additivity(y in series(48, 160)) {
        let r = Stl::new(StlConfig::for_period(12)).decompose(&y).unwrap();
        for (t, &yt) in y.iter().enumerate() {
            let recon = r.seasonal[t] + r.trend[t] + r.remainder[t];
            prop_assert!((recon - yt).abs() < 1e-9);
        }
    }

    /// MSTL additivity with two periods.
    #[test]
    fn mstl_additivity(y in series(96, 200)) {
        let d = mstl_decompose(&y, &MstlConfig::new(vec![8, 24])).unwrap();
        for (recon, orig) in d.reconstructed().iter().zip(&y) {
            prop_assert!((recon - orig).abs() < 1e-9);
        }
    }

    /// LOESS of a constant series is that constant, for any span/degree.
    #[test]
    fn loess_constant_fixed_point(c in -50.0f64..50.0, span in 3usize..40, degree in 0usize..=2) {
        let y = vec![c; 50];
        let s = loess_smooth(&y, LoessConfig::new(span.max(2), degree), None);
        for v in s {
            prop_assert!((v - c).abs() < 1e-7);
        }
    }

    /// LOESS output is bounded by the data range (degree 0; kernel weights
    /// are a convex combination).
    #[test]
    fn loess_degree0_bounded(y in series(10, 80), span in 3usize..30) {
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s = loess_smooth(&y, LoessConfig::new(span.max(2), 0), None);
        for v in s {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// A periodic-span seasonal component repeats exactly with the period.
    #[test]
    fn periodic_seasonal_repeats(y in series(72, 150)) {
        let cfg = StlConfig {
            seasonal_span: SeasonalSpan::Periodic,
            ..StlConfig::for_period(12)
        };
        let r = Stl::new(cfg).decompose(&y).unwrap();
        for t in 0..y.len() - 12 {
            prop_assert!((r.seasonal[t] - r.seasonal[t + 12]).abs() < 1e-9);
        }
    }

    /// Robustness weights are in [0, 1].
    #[test]
    fn robust_weights_bounded(y in series(48, 120)) {
        let cfg = StlConfig {
            robust_iterations: 2,
            ..StlConfig::for_period(12)
        };
        let r = Stl::new(cfg).decompose(&y).unwrap();
        for w in &r.weights {
            prop_assert!((0.0..=1.0).contains(w));
        }
    }
}
