//! Plain-text rendering: tables, CDF sparklines, boxplot panels, and
//! paper-vs-measured comparison rows.
//!
//! The experiment binaries print through this module so every figure has a
//! consistent, diffable textual form (bench logs capture the same output).

use netstats::{BoxplotStats, Ecdf};
use serde::Serialize;
use std::fmt::Write as _;

/// A simple aligned text table. Serializes as `{header, rows}` so
/// structured reports can carry tables as data, not pre-rendered text.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                let _ = write!(out, "{}{}  ", c, " ".repeat(pad));
            }
            let _ = writeln!(out);
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Render an ECDF as a fixed-width textual curve: `k` sampled points as
/// `x=… F=…` pairs plus a unicode sparkline.
pub fn render_cdf(label: &str, ecdf: &Ecdf, k: usize) -> String {
    if ecdf.is_empty() {
        return format!("{label}: (no data)\n");
    }
    let pts = ecdf.sampled_points(k);
    let spark: String = {
        // Sample F at evenly spaced x positions over the data range.
        let lo = ecdf.values()[0];
        let hi = *ecdf.values().last().expect("non-empty");
        let blocks = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        (0..32)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / 31.0;
                let f = ecdf.fraction_at(x);
                blocks[((f * 7.0).round() as usize).min(7)]
            })
            .collect()
    };
    let mut out = format!("{label}  n={}  {spark}\n", ecdf.n());
    for (x, f) in pts {
        let _ = writeln!(out, "    x={x:>10.4}  F={f:.3}");
    }
    out
}

/// Render a boxplot panel row: label, stats, ASCII box.
pub fn render_box_row(label: &str, stats: &BoxplotStats, lo: f64, hi: f64) -> String {
    format!(
        "{label:<32} med={:.2} iqr=[{:.2},{:.2}]  |{}|\n",
        stats.median,
        stats.q1,
        stats.q3,
        stats.ascii(lo, hi, 44)
    )
}

/// A paper-vs-measured comparison line with relative error.
pub fn compare(label: &str, paper: f64, measured: f64) -> String {
    let err = if paper.abs() > 1e-12 {
        100.0 * (measured - paper) / paper
    } else {
        0.0
    };
    format!("{label:<46} paper={paper:>10.3}  measured={measured:>10.3}  Δ={err:>+7.1}%\n")
}

/// Section header used by the experiment binaries.
pub fn heading(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["name", "count"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("a"));
        // All data lines equal width of their content columns.
        assert!(lines[3].contains("12345"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn cdf_rendering() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let s = render_cdf("test", &e, 5);
        assert!(s.contains("n=100"));
        assert!(s.contains("F=1.000"));
        let empty = render_cdf("empty", &Ecdf::new(vec![]), 5);
        assert!(empty.contains("no data"));
    }

    #[test]
    fn comparison_line() {
        let s = compare("IPv6-full share", 12.6, 13.1);
        assert!(s.contains("12.6"));
        assert!(s.contains("13.1"));
        assert!(s.contains("+4.0%") || s.contains("+3.9%"));
    }

    #[test]
    fn box_row_contains_stats() {
        let b = BoxplotStats::of(&[0.1, 0.4, 0.5, 0.6, 0.9]).unwrap();
        let s = render_box_row("FASTLY (54113)", &b, 0.0, 1.0);
        assert!(s.contains("FASTLY"));
        assert!(s.contains("med=0.50"));
    }
}
