//! IPv6 readiness by popularity bucket (Fig 6).

use crate::classify::{classify_site, SiteClass};
use crawlsim::CrawlReport;
use serde::Serialize;

/// Readiness shares of the top-N sites.
#[derive(Debug, Clone, Serialize)]
pub struct BucketShare {
    /// The bucket bound (top N).
    pub top_n: usize,
    /// Connected sites within the bucket.
    pub connected: usize,
    /// Percent IPv4-only of connected.
    pub pct_v4_only: f64,
    /// Percent IPv6-partial of connected.
    pub pct_partial: f64,
    /// Percent IPv6-full of connected.
    pub pct_full: f64,
}

/// Fig 6: stacked readiness per top-N bucket.
#[derive(Debug, Clone, Serialize)]
pub struct ReadinessBuckets {
    /// One row per requested bucket.
    pub buckets: Vec<BucketShare>,
}

impl ReadinessBuckets {
    /// Compute readiness for cumulative top-N buckets (e.g. `[100, 1_000,
    /// 10_000, 100_000]`); buckets larger than the crawl are clamped.
    pub fn compute(report: &CrawlReport, bounds: &[usize]) -> ReadinessBuckets {
        let mut buckets = Vec::new();
        for &bound in bounds {
            let n = bound.min(report.sites.len());
            let mut connected = 0usize;
            let mut v4 = 0usize;
            let mut partial = 0usize;
            let mut full = 0usize;
            for s in report.sites.iter().filter(|s| s.rank <= n) {
                match classify_site(s) {
                    SiteClass::V4Only => {
                        connected += 1;
                        v4 += 1;
                    }
                    SiteClass::Partial => {
                        connected += 1;
                        partial += 1;
                    }
                    SiteClass::Full => {
                        connected += 1;
                        full += 1;
                    }
                    SiteClass::UnknownPrimary => connected += 1,
                    _ => {}
                }
            }
            let pct = |c: usize| {
                if connected == 0 {
                    0.0
                } else {
                    100.0 * c as f64 / connected as f64
                }
            };
            buckets.push(BucketShare {
                top_n: n,
                connected,
                pct_v4_only: pct(v4),
                pct_partial: pct(partial),
                pct_full: pct(full),
            });
        }
        ReadinessBuckets { buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawlsim::{crawl_epoch, CrawlConfig};
    use worldgen::{World, WorldConfig};

    #[test]
    fn popularity_gradient_matches_fig6() {
        let w = World::generate(&WorldConfig::small());
        let r = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
        let b = ReadinessBuckets::compute(&r, &[100, 1_000, 2_000]);
        assert_eq!(b.buckets.len(), 3);
        // The top 100 must be substantially more IPv6-full than the tail
        // (paper: 30.1% vs 12.6%). With only 100 sites the sampling noise is
        // real, so the assertion is directional with margin.
        let head = b.buckets[0].pct_full;
        let tail = b.buckets[2].pct_full;
        assert!(
            head > tail + 5.0,
            "head {head}% should beat tail {tail}% by a clear margin"
        );
        // Percentages are sane and sum ≈ 100 (UnknownPrimary is tiny).
        for bucket in &b.buckets {
            let sum = bucket.pct_v4_only + bucket.pct_partial + bucket.pct_full;
            assert!((95.0..=100.5).contains(&sum), "sum {sum}");
        }
    }

    #[test]
    fn clamps_oversized_buckets() {
        let w = World::generate(&WorldConfig::small());
        let r = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
        let b = ReadinessBuckets::compute(&r, &[1_000_000]);
        assert_eq!(b.buckets[0].top_n, 2_000);
    }
}
