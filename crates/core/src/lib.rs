//! # ipv6view-core — the non-binary view of IPv6 adoption
//!
//! The paper's primary contribution, implemented as a library: instead of
//! the binary "can this user/site/tenant do IPv6 at all?", every analysis
//! here answers *how much* IPv6 is actually present:
//!
//! * [`classify`] — graded website classification (loading-failure /
//!   IPv4-only / IPv6-partial / IPv6-full, plus actual browser protocol
//!   use), with the pre-existing *binary* metric kept as a baseline (Fig 5).
//! * [`readiness`] — classification by popularity bucket (Fig 6).
//! * [`influence`] — which resources hold websites back: per-site IPv4-only
//!   counts and fractions (Fig 7), per-domain span and median contribution
//!   (Fig 8), heavy-hitter categories (Fig 9) and the resource-type heatmap
//!   (Fig 18).
//! * [`whatif`] — the adoption-ordering simulation: how many IPv6-partial
//!   sites become IPv6-full as IPv4-only domains enable IPv6 in descending
//!   span order (Fig 10).
//! * [`client`] — client-side traffic analysis: Table 1, daily-fraction
//!   CDFs (Fig 1/16), AS-level and domain-level lead/lag (Fig 3/4/17).
//! * [`seasonal`] — MSTL wrappers for the hourly/daily IPv6-fraction series
//!   (Fig 2/13/14/15).
//! * [`cloud`] — cloud attribution: per-org readiness (Fig 11/Table 3),
//!   multi-cloud tenant extraction and the pairwise Wilcoxon effect matrix
//!   (Fig 12), CNAME-based service identification and the policy table
//!   (Table 2), and the §5 ease-vs-adoption correlation.
//! * [`tiers`] — translated-adoption tiers: access lines graded from
//!   "no IPv6" through native dual-stack and DS-Lite to IPv6-only with
//!   NAT64/464XLAT, from flow records alone (the client-side analogue of
//!   the graded website classes).
//! * [`report`] — plain-text rendering of tables, CDFs and boxplots with
//!   paper-vs-measured columns.
//!
//! Measurement code never reads generation ground truth: every number is
//! re-derived from crawl reports, flow logs, DNS answers, the RIB and the
//! AS→Org table — the same inputs the paper's pipelines had.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod client;
pub mod cloud;
pub mod influence;
pub mod readiness;
pub mod report;
pub mod seasonal;
pub mod tiers;
pub mod whatif;

pub use classify::{classify_site, ClassCounts, SiteClass};
pub use influence::{DomainInfluence, InfluenceReport};
pub use readiness::ReadinessBuckets;
pub use tiers::{analyze_transition, AdoptionTier, TransitionAnalysis};
pub use whatif::WhatIfCurve;
