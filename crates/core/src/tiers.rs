//! Translated-adoption tiers: the client-side analogue of the graded
//! website classification.
//!
//! The paper replaces "does this site support IPv6?" with a graded scheme;
//! this module does the same for access lines. Between "no IPv6" and
//! "native dual-stack" sit the transition technologies: DS-Lite lines are
//! *more* IPv6-adopted than dual-stack ones (IPv4 survives only as a
//! tunneled service), and IPv6-only lines with NAT64/464XLAT are the far
//! end of the spectrum — even traffic to IPv4-only services crosses the
//! access wire as IPv6, visible only by its RFC 6052 destination prefix.
//!
//! Classification is measurement-only: it reads flow records plus the two
//! facts a router operator genuinely has — the (well-known) NAT64
//! translation prefix, and whether the CPE itself is provisioned as a
//! DS-Lite B4. No generation ground truth is consulted.

use flowmon::sink::{drain_into, TranslationAgg};
use flowmon::TranslationMap;
use iputil::prefix::Prefix6;
use serde::Serialize;
use trafficgen::ResidenceDataset;
use transition::{AccessTech, GatewayStats};

/// Graded adoption of one access line, ordered from no IPv6 to IPv6-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum AdoptionTier {
    /// No IPv6 traffic at all (the binary view's "non-adopter").
    V4Only,
    /// Native IPv4 and IPv6 side by side; the split per service is the
    /// spectrum §3 measures.
    DualStackNative,
    /// Native IPv6 with IPv4 surviving only as a tunneled service
    /// (DS-Lite): every external v4 byte crosses the wire inside IPv6.
    V4AsAService,
    /// IPv6-only on the wire; legacy destinations reachable only through
    /// translation (NAT64/DNS64, 464XLAT).
    V6OnlyTranslated,
}

impl AdoptionTier {
    /// Label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            AdoptionTier::V4Only => "tier 0: no IPv6",
            AdoptionTier::DualStackNative => "tier 1: native dual-stack",
            AdoptionTier::V4AsAService => "tier 2: v6 + tunneled v4",
            AdoptionTier::V6OnlyTranslated => "tier 3: v6-only (translated)",
        }
    }
}

/// Measured byte/flow composition of one residence's external traffic,
/// graded by translation provenance.
#[derive(Debug, Clone, Serialize)]
pub struct TransitionAnalysis {
    /// Residence key.
    pub key: char,
    /// Access-technology label (router provisioning, e.g. "ds-lite").
    pub tech: String,
    /// Total external volume in GB, rescaled to pre-sampling magnitude.
    pub total_gb: f64,
    /// Share of external bytes on native IPv6 paths.
    pub native_v6_bytes: f64,
    /// Share of external bytes translated through NAT64 (incl. CLAT→PLAT).
    pub translated_bytes: f64,
    /// Share of external bytes tunneled to a DS-Lite AFTR.
    pub tunneled_v4_bytes: f64,
    /// Share of external bytes on native IPv4 paths.
    pub native_v4_bytes: f64,
    /// Share of external flows that are translated (flow-count analogue).
    pub translated_flows: f64,
    /// The graded tier this composition implies.
    pub tier: AdoptionTier,
    /// Gateway binding counters when the line uses one.
    pub gateway: Option<GatewayStats>,
}

/// The [`TranslationMap`] a residence's own provisioning implies:
/// `nat64_prefix` is the translation prefix the provider advertises (the
/// RFC 6052 well-known prefix in this world); the DS-Lite B4 flag comes
/// from the CPE provisioning. Build the map, hang a
/// [`TranslationAgg`] off it as a sink, and [`analyze_transition_agg`]
/// grades the streamed tallies.
pub fn residence_translation_map(tech: AccessTech, nat64_prefix: Prefix6) -> TranslationMap {
    let mut map = TranslationMap::new();
    map.add_nat64_prefix(nat64_prefix);
    map.set_dslite_b4(tech == AccessTech::DsLite);
    map
}

/// Grade one residence dataset (record-scanning wrapper around
/// [`analyze_transition_agg`]).
pub fn analyze_transition(ds: &ResidenceDataset, nat64_prefix: Prefix6) -> TransitionAnalysis {
    let mut agg = TranslationAgg::new(residence_translation_map(
        ds.profile.access_tech,
        nat64_prefix,
    ));
    drain_into(&ds.flows, &mut agg);
    analyze_transition_agg(
        ds.profile.key,
        ds.profile.access_tech,
        ds.scale,
        &agg,
        ds.gateway,
    )
}

/// Grade a residence from a streamed [`TranslationAgg`] — the paper-scale
/// path: tallies were accumulated while synthesis ran, no record was ever
/// held. Produces exactly what [`analyze_transition`] produces.
pub fn analyze_transition_agg(
    key: char,
    tech: AccessTech,
    scale: f64,
    agg: &TranslationAgg,
    gateway: Option<GatewayStats>,
) -> TransitionAnalysis {
    // Class indices per `TranslationAgg`: [native v6, nat64, ds-lite,
    // native v4].
    let native_v6_bytes = agg.byte_share(0);
    let translated_bytes = agg.byte_share(1);
    let tunneled_v4_bytes = agg.byte_share(2);
    let native_v4_bytes = agg.byte_share(3);
    let total_flows = agg.total_flows();

    // Grade from the measured composition (1% noise floor so a stray
    // misclassified flow cannot promote a tier).
    let v6_present = native_v6_bytes + translated_bytes > 0.01;
    let tier = if !v6_present {
        AdoptionTier::V4Only
    } else if translated_bytes > 0.01 {
        AdoptionTier::V6OnlyTranslated
    } else if tunneled_v4_bytes > 0.01 {
        AdoptionTier::V4AsAService
    } else {
        AdoptionTier::DualStackNative
    };

    TransitionAnalysis {
        key,
        tech: tech.label().to_string(),
        total_gb: agg.total_bytes() as f64 / scale / 1e9,
        native_v6_bytes,
        translated_bytes,
        tunneled_v4_bytes,
        native_v4_bytes,
        translated_flows: if total_flows == 0 {
            0.0
        } else {
            agg.flows[1] as f64 / total_flows as f64
        },
        tier,
        gateway,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::{synthesize_profiles, transition_residences, TrafficConfig};
    use worldgen::{World, WorldConfig};

    #[test]
    fn cohort_lands_in_the_expected_tiers() {
        let world = World::generate(&WorldConfig::small());
        let cfg = TrafficConfig {
            num_days: 30,
            ..TrafficConfig::fast()
        };
        let datasets = synthesize_profiles(&world, transition_residences(), &cfg);
        let nat64 = world.transition.nat64_prefix.prefix();
        let analyses: Vec<TransitionAnalysis> = datasets
            .iter()
            .map(|ds| analyze_transition(ds, nat64))
            .collect();
        let by_key = |k: char| analyses.iter().find(|a| a.key == k).unwrap();

        let native = by_key('N');
        assert_eq!(native.tier, AdoptionTier::DualStackNative);
        assert!(native.translated_bytes < 0.01);
        assert!(native.native_v6_bytes > 0.3 && native.native_v4_bytes > 0.1);

        let v4 = by_key('4');
        assert_eq!(v4.tier, AdoptionTier::V4Only);
        assert!(v4.native_v4_bytes > 0.99);

        for k in ['6', 'X'] {
            let a = by_key(k);
            assert_eq!(a.tier, AdoptionTier::V6OnlyTranslated, "residence {k}");
            assert!(
                a.native_v4_bytes < 1e-9 && a.tunneled_v4_bytes < 1e-9,
                "nothing leaves a v6-only line as IPv4"
            );
            assert!(a.translated_bytes > 0.02, "legacy services ride the NAT64");
            assert!(a.native_v6_bytes > 0.5, "dual-stack services stay native");
            assert!(a.gateway.is_some());
        }
        // The structural CLAT difference: on plain NAT64/DNS64 only
        // services *without* native AAAA are translated, while 464XLAT's
        // CLAT also carries v4-literal application traffic towards
        // dual-stack services. (Comparing aggregate shares between the two
        // residences would race their independent day-mix jitter.)
        let translated_to_dual_stack = |key: char| {
            let ds = datasets.iter().find(|d| d.profile.key == key).unwrap();
            let prefix = world.transition.nat64_prefix;
            ds.flows
                .iter()
                .filter(|f| f.scope == flowmon::Scope::External)
                .filter_map(|f| match f.key.dst {
                    std::net::IpAddr::V6(d) => prefix.extract(d),
                    _ => None,
                })
                .filter(|v4| {
                    world
                        .client_services
                        .iter()
                        .any(|s| s.v4.contains(&std::net::IpAddr::V4(*v4)) && !s.v6.is_empty())
                })
                .count()
        };
        assert_eq!(
            translated_to_dual_stack('6'),
            0,
            "plain NAT64 never translates towards services with native AAAA"
        );
        assert!(
            translated_to_dual_stack('X') > 0,
            "the CLAT literal share reaches dual-stack services through the PLAT"
        );

        let dslite = by_key('L');
        assert_eq!(dslite.tier, AdoptionTier::V4AsAService);
        assert!(dslite.tunneled_v4_bytes > 0.05);
        assert!(dslite.native_v4_bytes < 1e-9, "all external v4 is tunneled");
        assert!(dslite.gateway.is_some());
    }

    #[test]
    fn tiers_are_ordered() {
        assert!(AdoptionTier::V4Only < AdoptionTier::DualStackNative);
        assert!(AdoptionTier::DualStackNative < AdoptionTier::V4AsAService);
        assert!(AdoptionTier::V4AsAService < AdoptionTier::V6OnlyTranslated);
        assert_eq!(AdoptionTier::V4Only.label(), "tier 0: no IPv6");
    }
}
