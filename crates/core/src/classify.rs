//! Graded website classification (Fig 5).

use crawlsim::{CrawlReport, PageFailure, SiteCrawl};
use iputil::Family;
use serde::Serialize;

/// The paper's graded classes for a crawled website.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SiteClass {
    /// The listed domain does not resolve (NXDOMAIN).
    LoadingFailureNx,
    /// Any other loading failure (DNS error/timeout, TLS, HTTP).
    LoadingFailureOther,
    /// Redirect chain left the listed domain (tiny category).
    UnknownPrimary,
    /// Main page has no AAAA.
    V4Only,
    /// Main page has AAAA but at least one resource is IPv4-only.
    Partial,
    /// Main page and every resource reachable over IPv6.
    Full,
}

impl SiteClass {
    /// Label as used in the paper's Fig 5 table.
    pub fn label(self) -> &'static str {
        match self {
            SiteClass::LoadingFailureNx => "Loading-Failure (NXDOMAIN)",
            SiteClass::LoadingFailureOther => "Loading-Failure (Others)",
            SiteClass::UnknownPrimary => "Unknown Primary Domain",
            SiteClass::V4Only => "IPv4-only (A-only domain)",
            SiteClass::Partial => "IPv6-partial (some A-only resources)",
            SiteClass::Full => "IPv6-full (AAAA for all resources)",
        }
    }
}

/// Classify one crawled site with the paper's graded scheme.
///
/// Resources that themselves failed to load (neither family resolves) are
/// excluded, matching §4.2: "Resources that face such failure are excluded
/// from our analysis".
pub fn classify_site(crawl: &SiteCrawl) -> SiteClass {
    let ok = match &crawl.outcome {
        Err(PageFailure::NxDomain) => return SiteClass::LoadingFailureNx,
        Err(_) => return SiteClass::LoadingFailureOther,
        Ok(ok) => ok,
    };
    if ok.offsite_landing {
        return SiteClass::UnknownPrimary;
    }
    if !ok.main_has_aaaa {
        return SiteClass::V4Only;
    }
    let any_v4_only = ok
        .resources
        .iter()
        .filter(|r| r.has_a || r.has_aaaa) // exclude load failures
        .any(|r| !r.has_aaaa);
    if any_v4_only {
        SiteClass::Partial
    } else {
        SiteClass::Full
    }
}

/// The *binary* baseline metric used by prior work: a site "supports IPv6"
/// iff its main page has an AAAA record — no resource-level grading.
pub fn classify_binary(crawl: &SiteCrawl) -> Option<bool> {
    match &crawl.outcome {
        Ok(ok) => Some(ok.main_has_aaaa),
        Err(_) => None,
    }
}

/// Aggregated Fig 5 counts for one epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ClassCounts {
    /// Epoch label.
    pub epoch_label: String,
    /// Total sites crawled.
    pub total: usize,
    /// NXDOMAIN failures.
    pub nxdomain: usize,
    /// Other loading failures.
    pub other_failure: usize,
    /// Successfully connected (total − failures).
    pub connected: usize,
    /// Unknown primary domain.
    pub unknown_primary: usize,
    /// IPv4-only sites.
    pub v4_only: usize,
    /// AAAA-enabled (partial + full).
    pub aaaa_enabled: usize,
    /// IPv6-partial sites.
    pub partial: usize,
    /// IPv6-full sites.
    pub full: usize,
    /// Among full sites: the browser actually used IPv4 somewhere.
    pub browser_used_v4: usize,
    /// Among full sites: everything was fetched over IPv6.
    pub browser_used_v6_only: usize,
}

impl ClassCounts {
    /// Compute Fig 5 counts from a crawl report.
    pub fn from_report(report: &CrawlReport) -> ClassCounts {
        let mut c = ClassCounts {
            epoch_label: report.epoch_label.clone(),
            total: report.sites.len(),
            nxdomain: 0,
            other_failure: 0,
            connected: 0,
            unknown_primary: 0,
            v4_only: 0,
            aaaa_enabled: 0,
            partial: 0,
            full: 0,
            browser_used_v4: 0,
            browser_used_v6_only: 0,
        };
        for s in &report.sites {
            match classify_site(s) {
                SiteClass::LoadingFailureNx => c.nxdomain += 1,
                SiteClass::LoadingFailureOther => c.other_failure += 1,
                SiteClass::UnknownPrimary => {
                    c.connected += 1;
                    c.unknown_primary += 1;
                }
                SiteClass::V4Only => {
                    c.connected += 1;
                    c.v4_only += 1;
                }
                SiteClass::Partial => {
                    c.connected += 1;
                    c.aaaa_enabled += 1;
                    c.partial += 1;
                }
                SiteClass::Full => {
                    c.connected += 1;
                    c.aaaa_enabled += 1;
                    c.full += 1;
                    let ok = s.outcome.as_ref().expect("full implies success");
                    if ok.any_v4_used {
                        c.browser_used_v4 += 1;
                    } else {
                        c.browser_used_v6_only += 1;
                    }
                }
            }
        }
        c
    }

    /// Share of connected sites in a class.
    pub fn pct_of_connected(&self, count: usize) -> f64 {
        if self.connected == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.connected as f64
        }
    }

    /// Binary-baseline adoption rate ("has AAAA"), for contrast with the
    /// graded view: the binary metric says `aaaa_enabled / connected`, the
    /// graded view says only `full / connected` are actually all-IPv6.
    pub fn binary_adoption_pct(&self) -> f64 {
        self.pct_of_connected(self.aaaa_enabled)
    }
}

/// Classify the winning family actually used by the browser, for quick
/// Fig 5 style summaries.
pub fn used_family(crawl: &SiteCrawl) -> Option<Family> {
    crawl.outcome.as_ref().ok().map(|s| s.main_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawlsim::{crawl_epoch, CrawlConfig};
    use worldgen::web::GenClass;
    use worldgen::{World, WorldConfig};

    fn report() -> (World, CrawlReport) {
        let w = World::generate(&WorldConfig::small());
        let e = w.latest_epoch();
        let r = crawl_epoch(&w, e, &CrawlConfig::default());
        (w, r)
    }

    #[test]
    fn counts_are_consistent() {
        let (_, r) = report();
        let c = ClassCounts::from_report(&r);
        assert_eq!(c.total, 2000);
        assert_eq!(
            c.connected,
            c.total - c.nxdomain - c.other_failure,
            "connected = total − failures"
        );
        assert_eq!(
            c.connected,
            c.v4_only + c.partial + c.full + c.unknown_primary
        );
        assert_eq!(c.aaaa_enabled, c.partial + c.full);
        assert_eq!(c.full, c.browser_used_v4 + c.browser_used_v6_only);
    }

    #[test]
    fn measured_classes_match_ground_truth() {
        let (w, r) = report();
        let e = w.latest_epoch();
        let mut agree = 0;
        let mut total = 0;
        for (crawl, truth) in r.sites.iter().zip(&w.web.truth) {
            let measured = classify_site(crawl);
            let expected = match truth.by_epoch[e] {
                GenClass::NxDomain => SiteClass::LoadingFailureNx,
                GenClass::OtherFailure => SiteClass::LoadingFailureOther,
                GenClass::UnknownPrimary => SiteClass::UnknownPrimary,
                GenClass::V4Only => SiteClass::V4Only,
                GenClass::Partial => SiteClass::Partial,
                GenClass::Full => SiteClass::Full,
            };
            total += 1;
            if measured == expected {
                agree += 1;
            }
        }
        let rate = agree as f64 / total as f64;
        // Small divergence is expected: sites whose pages the crawler didn't
        // visit may hide their only IPv4-only dependency.
        assert!(rate > 0.9, "agreement {rate}");
    }

    #[test]
    fn shares_match_paper_shape() {
        let (_, r) = report();
        let c = ClassCounts::from_report(&r);
        let v4 = c.pct_of_connected(c.v4_only);
        let partial = c.pct_of_connected(c.partial);
        let full = c.pct_of_connected(c.full);
        // A 2k-site world is top-of-the-toplist, so v4-only sits below the
        // paper's 100k-wide 57.6% (Fig 6 integral at 2k ≈ 51%, minus drift).
        assert!((44.0..60.0).contains(&v4), "v4-only {v4}%");
        assert!((22.0..40.0).contains(&partial), "partial {partial}%");
        assert!((10.0..22.0).contains(&full), "full {full}%");
        // The binary baseline overstates adoption by roughly 3×.
        assert!(c.binary_adoption_pct() > 2.0 * full);
        // Browser used IPv4 on roughly 1 in 10 full sites.
        let used_v4_rate = c.browser_used_v4 as f64 / c.full.max(1) as f64;
        assert!((0.04..0.25).contains(&used_v4_rate), "{used_v4_rate}");
    }

    #[test]
    fn binary_classifier() {
        let (_, r) = report();
        let mut some_true = false;
        let mut some_false = false;
        for s in &r.sites {
            match classify_binary(s) {
                Some(true) => some_true = true,
                Some(false) => some_false = true,
                None => {}
            }
        }
        assert!(some_true && some_false);
    }
}
