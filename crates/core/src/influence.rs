//! Influence of IPv4-only resources on IPv6-partial websites
//! (Fig 7, 8, 9, 18 and the §4.3 first-party analysis).

use crate::classify::{classify_site, SiteClass};
use crawlsim::CrawlReport;
use dnssim::Name;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use webmodel::psl::Psl;
use webmodel::resource::{DomainCategory, ResourceType};

/// Per-domain influence metrics (Fig 8), following Bajpai & Schönwälder.
#[derive(Debug, Clone, Serialize)]
pub struct DomainInfluence {
    /// The IPv4-only eTLD+1.
    pub domain: Name,
    /// Span: number of IPv6-partial sites depending on it.
    pub span: usize,
    /// Median over dependent sites of the fraction of that site's
    /// IPv4-only resources supplied by this domain.
    pub median_contribution: f64,
    /// Third-party from the perspective of every dependent site?
    pub third_party: bool,
}

/// Per-partial-site counts (Fig 7).
#[derive(Debug, Clone, Serialize)]
pub struct SiteV4Dependence {
    /// Site rank.
    pub rank: usize,
    /// Number of IPv4-only resource fetches.
    pub v4only_count: usize,
    /// Fraction of this site's resources that are IPv4-only.
    pub v4only_fraction: f64,
    /// Is at least one IPv4-only resource first-party?
    pub has_first_party_v4only: bool,
    /// Are *all* IPv4-only resources first-party (the §4.3 "easy to fix"
    /// population)?
    pub only_first_party_v4only: bool,
}

/// The complete influence analysis of one crawl epoch.
#[derive(Debug, Clone, Serialize)]
pub struct InfluenceReport {
    /// Per-partial-site dependence stats (Fig 7).
    pub sites: Vec<SiteV4Dependence>,
    /// Per-IPv4-only-domain influence, sorted by descending span (Fig 8).
    pub domains: Vec<DomainInfluence>,
    /// Sites that are partial purely because of first-party resources
    /// (paper: 565 of 24,384 = 2.3%).
    pub first_party_only_partial: usize,
    /// The site→v4-only-domain dependence edges (used by the what-if
    /// simulation), as indices into `sites`/`domains`.
    pub edges: Vec<(u32, u32)>,
}

impl InfluenceReport {
    /// Run the influence analysis over a crawl report.
    pub fn compute(report: &CrawlReport, psl: &Psl) -> InfluenceReport {
        let mut sites = Vec::new();
        let mut domain_index: HashMap<Name, u32> = HashMap::new();
        let mut domains: Vec<(Name, bool)> = Vec::new(); // (domain, always_third_party)
        let mut per_domain_contributions: Vec<Vec<f64>> = Vec::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();

        for s in &report.sites {
            if classify_site(s) != SiteClass::Partial {
                continue;
            }
            let ok = s.outcome.as_ref().expect("partial implies success");
            let loaded: Vec<_> = ok
                .resources
                .iter()
                .filter(|r| r.has_a || r.has_aaaa)
                .collect();
            let v4only: Vec<_> = loaded.iter().filter(|r| !r.has_aaaa).collect();
            if v4only.is_empty() {
                continue; // defensive: classification said partial
            }
            let v4only_count = v4only.len();
            let v4only_fraction = v4only_count as f64 / loaded.len() as f64;
            let has_fp = v4only.iter().any(|r| r.first_party);
            let only_fp = v4only.iter().all(|r| r.first_party);

            let site_idx = sites.len() as u32;
            sites.push(SiteV4Dependence {
                rank: s.rank,
                v4only_count,
                v4only_fraction,
                has_first_party_v4only: has_fp,
                only_first_party_v4only: only_fp,
            });

            // Group this site's IPv4-only resources by eTLD+1.
            let mut by_domain: HashMap<Name, (usize, bool)> = HashMap::new();
            for r in &v4only {
                let etld1 = psl.etld_plus_one(&r.fqdn).unwrap_or_else(|| r.fqdn.clone());
                let entry = by_domain.entry(etld1).or_insert((0, true));
                entry.0 += 1;
                entry.1 &= !r.first_party;
            }
            // Drain in sorted order: first-seen index assignment and the
            // `edges` row order would otherwise follow the per-process hash
            // seed (the index values are remapped after the span sort below,
            // but the *sequence* in `edges` would still leak hash order).
            let mut site_domains: Vec<_> = by_domain.into_iter().collect(); // tidy:allow(nondeterministic-iteration): drained into a Vec and sorted on the next line
            site_domains.sort_by(|a, b| a.0.cmp(&b.0));
            for (domain, (count, third_party)) in site_domains {
                let idx = *domain_index.entry(domain.clone()).or_insert_with(|| {
                    domains.push((domain.clone(), true));
                    per_domain_contributions.push(Vec::new());
                    (domains.len() - 1) as u32
                });
                domains[idx as usize].1 &= third_party;
                per_domain_contributions[idx as usize].push(count as f64 / v4only_count as f64);
                edges.push((site_idx, idx));
            }
        }

        let mut influence: Vec<DomainInfluence> = domains
            .into_iter()
            .zip(per_domain_contributions)
            .map(|((domain, third_party), mut contribs)| {
                contribs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let span = contribs.len();
                let median_contribution = contribs[span / 2];
                DomainInfluence {
                    domain,
                    span,
                    median_contribution,
                    third_party,
                }
            })
            .collect();
        // Sort by descending span; stable tiebreak on name for determinism.
        influence.sort_by(|a, b| b.span.cmp(&a.span).then(a.domain.cmp(&b.domain)));

        // Remap edge domain indices to the sorted order.
        let mut new_index = vec![0u32; influence.len()];
        let name_to_new: HashMap<&Name, u32> = influence
            .iter()
            .enumerate()
            .map(|(i, d)| (&d.domain, i as u32))
            .collect();
        // (indices were assigned in first-seen order; rebuild via names)
        let old_names: Vec<Name> = {
            let mut v: Vec<(u32, Name)> = domain_index.into_iter().map(|(n, i)| (i, n)).collect(); // tidy:allow(nondeterministic-iteration): fully sorted by unique index on the next line
            v.sort_by_key(|(i, _)| *i);
            v.into_iter().map(|(_, n)| n).collect()
        };
        for (old, name) in old_names.iter().enumerate() {
            new_index[old] = name_to_new[name];
        }
        for e in &mut edges {
            e.1 = new_index[e.1 as usize];
        }

        let first_party_only_partial = sites.iter().filter(|s| s.only_first_party_v4only).count();
        InfluenceReport {
            sites,
            domains: influence,
            first_party_only_partial,
            edges,
        }
    }

    /// Quantiles of the per-site IPv4-only resource count (Fig 7, red).
    pub fn count_quantiles(&self) -> Option<(f64, f64, f64)> {
        let xs: Vec<f64> = self.sites.iter().map(|s| s.v4only_count as f64).collect();
        Some((
            netstats::quantile(&xs, 0.25)?,
            netstats::quantile(&xs, 0.5)?,
            netstats::quantile(&xs, 0.75)?,
        ))
    }

    /// Quantiles of the per-site IPv4-only fraction (Fig 7, blue).
    pub fn fraction_quantiles(&self) -> Option<(f64, f64, f64)> {
        let xs: Vec<f64> = self.sites.iter().map(|s| s.v4only_fraction).collect();
        Some((
            netstats::quantile(&xs, 0.25)?,
            netstats::quantile(&xs, 0.5)?,
            netstats::quantile(&xs, 0.75)?,
        ))
    }

    /// Heavy hitters: domains with span at least `min_span` (the paper uses
    /// 100 at 100k-site scale — scale it down proportionally for smaller
    /// crawls).
    pub fn heavy_hitters(&self, min_span: usize) -> impl Iterator<Item = &DomainInfluence> {
        self.domains.iter().filter(move |d| d.span >= min_span)
    }

    /// Fig 9: category histogram of heavy-hitter domains, given a category
    /// oracle (the VirusTotal substitute).
    pub fn heavy_hitter_categories(
        &self,
        min_span: usize,
        category_of: &HashMap<Name, DomainCategory>,
    ) -> Vec<(DomainCategory, usize)> {
        let mut counts: HashMap<DomainCategory, usize> = HashMap::new();
        for d in self.heavy_hitters(min_span) {
            let cat = category_of
                .get(&d.domain)
                .copied()
                .unwrap_or(DomainCategory::Other);
            *counts.entry(cat).or_default() += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect(); // tidy:allow(nondeterministic-iteration): fully sorted by (count, Fig 9 enum order) below
                                                            // Tie-break equal counts in the enum's Fig 9 order: the input comes
                                                            // out of a `HashMap` (random iteration order), so count alone would
                                                            // make the rendered table flap between runs.
        out.sort_by_key(|(cat, n)| (std::cmp::Reverse(*n), *cat));
        out
    }
}

/// Fig 18: the top-N IPv4-only domains × resource type incidence matrix.
/// Cell (d, t) counts IPv6-partial sites where domain `d` served at least
/// one resource of type `t`.
#[derive(Debug, Clone, Serialize)]
pub struct TypeHeatmap {
    /// Row domains, descending by total incidence.
    pub domains: Vec<Name>,
    /// Column types.
    pub types: Vec<ResourceType>,
    /// `matrix[row][col]` = number of partial sites.
    pub matrix: Vec<Vec<usize>>,
    /// Row totals ("any" column of Fig 18).
    pub any: Vec<usize>,
}

impl TypeHeatmap {
    /// Build the heatmap over the top `top_n` IPv4-only domains by span.
    pub fn compute(report: &CrawlReport, psl: &Psl, top_n: usize) -> TypeHeatmap {
        // site -> domain -> set of types (only partial sites, v4-only resources)
        let mut span: HashMap<Name, usize> = HashMap::new();
        let mut per_site: Vec<HashMap<Name, HashSet<ResourceType>>> = Vec::new();
        for s in &report.sites {
            if classify_site(s) != SiteClass::Partial {
                continue;
            }
            let ok = s.outcome.as_ref().expect("partial implies success");
            let mut map: HashMap<Name, HashSet<ResourceType>> = HashMap::new();
            for r in ok.resources.iter().filter(|r| r.has_a && !r.has_aaaa) {
                let etld1 = psl.etld_plus_one(&r.fqdn).unwrap_or_else(|| r.fqdn.clone());
                map.entry(etld1).or_default().insert(r.rtype);
            }
            // tidy:allow(nondeterministic-iteration): commutative count fold
            for d in map.keys() {
                *span.entry(d.clone()).or_default() += 1;
            }
            per_site.push(map);
        }
        let mut ranked: Vec<(Name, usize)> = span.into_iter().collect(); // tidy:allow(nondeterministic-iteration): fully sorted by (count, name) on the next line
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(top_n);
        let domains: Vec<Name> = ranked.iter().map(|(n, _)| n.clone()).collect();
        let types: Vec<ResourceType> = ResourceType::all().to_vec();
        let index: HashMap<&Name, usize> =
            domains.iter().enumerate().map(|(i, n)| (n, i)).collect();

        let mut matrix = vec![vec![0usize; types.len()]; domains.len()];
        let mut any = vec![0usize; domains.len()];
        for site_map in &per_site {
            for (domain, tset) in site_map {
                if let Some(&row) = index.get(domain) {
                    any[row] += 1;
                    for (col, t) in types.iter().enumerate() {
                        if tset.contains(t) {
                            matrix[row][col] += 1;
                        }
                    }
                }
            }
        }
        TypeHeatmap {
            domains,
            types,
            matrix,
            any,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawlsim::{crawl_epoch, CrawlConfig};
    use worldgen::{World, WorldConfig};

    fn setup() -> (World, CrawlReport, InfluenceReport) {
        let w = World::generate(&WorldConfig::small());
        let r = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
        let inf = InfluenceReport::compute(&r, &w.psl);
        (w, r, inf)
    }

    #[test]
    fn fig7_quantiles_shape() {
        let (_, _, inf) = setup();
        let (q25, q50, q75) = inf.count_quantiles().unwrap();
        // Paper: 3 / 7 / 21. Accept the right order of magnitude and strict
        // ordering.
        assert!((1.0..=8.0).contains(&q25), "p25 {q25}");
        assert!(q50 > q25 && q50 <= 16.0, "p50 {q50}");
        assert!(q75 > q50 && q75 <= 45.0, "p75 {q75}");
        let (f25, f50, f75) = inf.fraction_quantiles().unwrap();
        // Paper: 0.09 / 0.21 / 0.41.
        assert!((0.02..0.25).contains(&f25), "p25 {f25}");
        assert!((0.08..0.40).contains(&f50), "p50 {f50}");
        assert!((0.2..0.65).contains(&f75), "p75 {f75}");
    }

    #[test]
    fn fig8_span_distribution_is_heavy_tailed() {
        let (_, _, inf) = setup();
        assert!(!inf.domains.is_empty());
        let spans: Vec<f64> = inf.domains.iter().map(|d| d.span as f64).collect();
        let p75 = netstats::quantile(&spans, 0.75).unwrap();
        // Paper: 2 at 100k scale. Small worlds shrink the tail pool faster
        // than the reuse pools, inflating the quantile slightly.
        assert!(p75 <= 6.0, "p75 span {p75} (paper: 2)");
        let max = spans[0];
        assert!(
            max > 20.0 * p75,
            "heavy tail expected: max {max} vs p75 {p75}"
        );
        // Median contribution near the paper's 0.04–0.13 range.
        let contribs: Vec<f64> = inf.domains.iter().map(|d| d.median_contribution).collect();
        let c50 = netstats::quantile(&contribs, 0.5).unwrap();
        assert!((0.02..0.6).contains(&c50), "median contribution {c50}");
    }

    #[test]
    fn first_party_partial_population() {
        let (_, _, inf) = setup();
        let rate = inf.first_party_only_partial as f64 / inf.sites.len() as f64;
        assert!(
            (0.002..0.08).contains(&rate),
            "first-party-only partial rate {rate} (paper: 2.3%)"
        );
    }

    #[test]
    fn fig9_ads_dominate_heavy_hitters() {
        let (w, _, inf) = setup();
        let category_of: HashMap<Name, DomainCategory> = w
            .web
            .third_parties
            .iter()
            .map(|t| (t.domain.clone(), t.category))
            .collect();
        // Scale the paper's span ≥ 100 (at 100k) to this crawl.
        let min_span = (100.0 * w.web.sites.len() as f64 / 100_000.0).ceil() as usize;
        let cats = inf.heavy_hitter_categories(min_span.max(2), &category_of);
        assert!(!cats.is_empty());
        let total: usize = cats.iter().map(|(_, c)| c).sum();
        let ads = cats
            .iter()
            .find(|(c, _)| *c == DomainCategory::Ads)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(
            ads * 2 >= total / 2,
            "ads should be the dominant heavy-hitter category ({ads}/{total})"
        );
    }

    #[test]
    fn fig18_heatmap_rows_are_descending() {
        let (w, r, _) = setup();
        let hm = TypeHeatmap::compute(&r, &w.psl, 20);
        assert!(hm.domains.len() <= 20);
        for win in hm.any.windows(2) {
            assert!(win[0] >= win[1], "rows must be sorted by incidence");
        }
        // Images are the most common type overall (paper Fig 18).
        let img_col = hm
            .types
            .iter()
            .position(|t| *t == ResourceType::Image)
            .unwrap();
        let img_total: usize = hm.matrix.iter().map(|row| row[img_col]).sum();
        for (col, t) in hm.types.iter().enumerate() {
            if *t == ResourceType::Image {
                continue;
            }
            let total: usize = hm.matrix.iter().map(|row| row[col]).sum();
            assert!(
                img_total >= total,
                "images ({img_total}) must dominate {t:?} ({total})"
            );
        }
        // doubleclick.net must appear among the top rows.
        assert!(
            hm.domains.iter().any(|d| d.as_str() == "doubleclick.net"),
            "doubleclick.net missing from heatmap rows"
        );
    }

    #[test]
    fn edges_are_valid() {
        let (_, _, inf) = setup();
        for &(s, d) in &inf.edges {
            assert!((s as usize) < inf.sites.len());
            assert!((d as usize) < inf.domains.len());
        }
        // Every partial site has at least one edge.
        let sites_with_edges: HashSet<u32> = inf.edges.iter().map(|e| e.0).collect();
        assert_eq!(sites_with_edges.len(), inf.sites.len());
    }
}
