//! Seasonal decomposition of IPv6-fraction series (§3.3, Fig 2/13/14/15).
//!
//! Thin, opinionated wrappers over the [`mstl`] crate with the paper's
//! parameters: hourly series decompose with daily (24) and weekly (168)
//! periods; daily series with a weekly (7) period.

use mstl::{mstl_decompose, Mstl, MstlConfig};
use serde::Serialize;

/// Summary statistics of one MSTL decomposition, used to check the paper's
/// qualitative findings (strong diurnal component, weak weekly component).
#[derive(Debug, Clone, Serialize)]
pub struct SeasonalStrength {
    /// Period of the component.
    pub period: usize,
    /// Variance-based strength in `[0, 1]`:
    /// `max(0, 1 − Var(remainder) / Var(seasonal + remainder))`
    /// (Wang–Smith–Hyndman).
    pub strength: f64,
    /// Peak-to-trough amplitude of the mean cycle.
    pub amplitude: f64,
}

/// Decompose an hourly IPv6-fraction series with daily + weekly periods.
pub fn decompose_hourly(series: &[f64]) -> Result<Mstl, String> {
    mstl_decompose(series, &MstlConfig::new(vec![24, 168]))
}

/// Decompose a daily IPv6-fraction series with a weekly period.
pub fn decompose_daily(series: &[f64]) -> Result<Mstl, String> {
    mstl_decompose(series, &MstlConfig::new(vec![7]))
}

/// Compute the strength and amplitude of each seasonal component.
pub fn seasonal_strengths(fit: &Mstl) -> Vec<SeasonalStrength> {
    let var = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
    };
    let rem_var = var(&fit.remainder);
    fit.seasonals
        .iter()
        .map(|(period, seasonal)| {
            let combined: Vec<f64> = seasonal
                .iter()
                .zip(&fit.remainder)
                .map(|(s, r)| s + r)
                .collect();
            let denom = var(&combined);
            let strength = if denom > 0.0 {
                (1.0 - rem_var / denom).max(0.0)
            } else {
                0.0
            };
            // Mean cycle amplitude.
            let mut cycle = vec![0.0f64; *period];
            let mut counts = vec![0usize; *period];
            for (i, v) in seasonal.iter().enumerate() {
                cycle[i % period] += v;
                counts[i % period] += 1;
            }
            for (c, n) in cycle.iter_mut().zip(&counts) {
                if *n > 0 {
                    *c /= *n as f64;
                }
            }
            let amplitude = cycle.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - cycle.iter().cloned().fold(f64::INFINITY, f64::min);
            SeasonalStrength {
                period: *period,
                strength,
                amplitude,
            }
        })
        .collect()
}

/// Index of the hour-of-day at which the mean daily cycle peaks.
pub fn daily_peak_hour(fit: &Mstl) -> Option<usize> {
    let seasonal = fit.seasonal(24)?;
    let mut cycle = [0.0f64; 24];
    let mut counts = [0usize; 24];
    for (i, v) in seasonal.iter().enumerate() {
        cycle[i % 24] += v;
        counts[i % 24] += 1;
    }
    for (c, n) in cycle.iter_mut().zip(&counts) {
        if *n > 0 {
            *c /= *n as f64;
        }
    }
    cycle
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{hourly_fraction_series, Metric};
    use flowmon::Scope;
    use trafficgen::{paper_residences, synthesize_residence, TrafficConfig};
    use worldgen::{World, WorldConfig};

    #[test]
    fn residence_a_march_has_strong_daily_weak_weekly() {
        let world = World::generate(&WorldConfig::small());
        let profiles = paper_residences();
        // Hourly fraction analysis needs a dense sample: at the default test
        // scale an hour holds <1 flow and the fraction series is pure 0/1
        // noise. Five weeks at 1/50 sampling gives ~10 flows per hour.
        let cfg = TrafficConfig {
            num_days: 35,
            scale: 1.0 / 10.0,
            ..TrafficConfig::fast()
        };
        let ds = synthesize_residence(&world, profiles[0].clone(), &cfg, 0);
        let series = hourly_fraction_series(&ds, Scope::External, Metric::Bytes, 0..35);
        let fit = decompose_hourly(&series).expect("decomposition");
        let strengths = seasonal_strengths(&fit);
        let daily = strengths.iter().find(|s| s.period == 24).unwrap();
        assert!(
            daily.amplitude > 0.03,
            "daily amplitude {:.4}",
            daily.amplitude
        );
        // The paper's Fig 2 weekly panel swings as widely as the daily one;
        // its finding is that the weekly pattern is not *consistent*. Test
        // that directly: the mean daily cycle estimated from the first half
        // of the data must correlate strongly with the second half's, while
        // the weekly cycle must not.
        let split_half_corr = |component: &[f64], period: usize| {
            // Align the split to a period boundary so phases line up.
            let half = (component.len() / 2 / period) * period;
            let cycle_mean = |xs: &[f64]| {
                let mut c = vec![0.0f64; period];
                let mut n = vec![0usize; period];
                for (i, v) in xs.iter().enumerate() {
                    c[i % period] += v;
                    n[i % period] += 1;
                }
                for (ci, ni) in c.iter_mut().zip(&n) {
                    if *ni > 0 {
                        *ci /= *ni as f64;
                    }
                }
                c
            };
            let a = cycle_mean(&component[..half]);
            let b = cycle_mean(&component[half..]);
            netstats::pearson(&a, &b).unwrap_or(0.0)
        };
        let daily_consistency = split_half_corr(fit.seasonal(24).unwrap(), 24);
        let weekly_consistency = split_half_corr(fit.seasonal(168).unwrap(), 168);
        assert!(
            daily_consistency > 0.5,
            "daily cycle should repeat: split-half r = {daily_consistency:.2}"
        );
        assert!(
            weekly_consistency < daily_consistency,
            "weekly cycle should be less consistent than daily \
             (weekly r = {weekly_consistency:.2}, daily r = {daily_consistency:.2})"
        );
        // Evening peak: the daily cycle should top out in the late
        // afternoon/evening rise (the paper sees peaks rising until
        // midnight; the synthetic fraction series is noisy enough that the
        // argmax can land one hour into the 16:00 shoulder).
        let peak = daily_peak_hour(&fit).unwrap();
        assert!(
            (16..24).contains(&peak) || peak == 0,
            "daily IPv6-fraction peak at hour {peak}"
        );
    }

    #[test]
    fn daily_series_decomposes() {
        let world = World::generate(&WorldConfig::small());
        let profiles = paper_residences();
        let ds = synthesize_residence(&world, profiles[1].clone(), &TrafficConfig::fast(), 1);
        let analysis = crate::client::analyze_residence(&ds);
        let series = crate::client::daily_fraction_series(&analysis);
        let fit = decompose_daily(&series).expect("decomposition");
        assert_eq!(fit.trend.len(), series.len());
        // Additivity sanity.
        for (recon, orig) in fit.reconstructed().iter().zip(&series) {
            assert!((recon - orig).abs() < 1e-9);
        }
    }
}
