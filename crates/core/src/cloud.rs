//! Cloud adoption analysis (§5): per-organization readiness (Fig 11 /
//! Table 3), multi-cloud tenant pairwise comparison (Fig 12), CNAME-based
//! service identification (Table 2) and the ease-vs-adoption correlation.

use bgpsim::{Registry, Rib};
use cloudmodel::catalog::ServiceCatalog;
use cloudmodel::Ipv6Policy;
use crawlsim::CrawlReport;
use dnssim::{Name, NameTable};
use netstats::{holm_bonferroni, spearman, wilcoxon_signed_rank};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use webmodel::psl::Psl;

/// One observed FQDN with its per-family hosting organizations.
#[derive(Debug, Clone, Serialize)]
pub struct HostedFqdn {
    /// The FQDN.
    pub fqdn: Name,
    /// Organization (display name) originating the A record's address.
    pub v4_org: Option<String>,
    /// Organization originating the AAAA record's address.
    pub v6_org: Option<String>,
    /// CNAME chain seen during resolution.
    pub chain: Vec<Name>,
    /// Has an AAAA record at all.
    pub has_aaaa: bool,
}

/// Extract every unique FQDN (main pages and resources) from a crawl, with
/// BGP+AS2Org attribution — the paper's 265k-FQDN dataset.
///
/// Attribution is the hot path: two LPM lookups per unique FQDN, hundreds of
/// thousands per crawl epoch. All addresses are collected first and answered
/// through [`Rib::origins_of`], whose batched LPM engine resolves duplicate
/// addresses (shared CDN edges host thousands of FQDNs) only once.
pub fn hosted_fqdns(report: &CrawlReport, rib: &Rib, registry: &Registry) -> Vec<HostedFqdn> {
    // Pass 1: deduplicate FQDNs and gather their addresses for the batch.
    struct Pending<'a> {
        fqdn: &'a Name,
        v4_addr: Option<IpAddr>,
        v6_addr: Option<IpAddr>,
        chain: &'a [Name],
        has_aaaa: bool,
    }
    // Interned dedup: each distinct FQDN is hashed once into the table
    // (and `intern_full` says whether it was new) instead of cloning every
    // candidate `Name` into a `HashSet` — resources repeat the same CDN
    // FQDNs thousands of times across sites.
    let mut seen = NameTable::new();
    let mut pending: Vec<Pending<'_>> = Vec::new();
    for s in report.sites.iter().filter_map(|s| s.outcome.as_ref().ok()) {
        if seen.intern_full(&s.final_fqdn).1 {
            pending.push(Pending {
                fqdn: &s.final_fqdn,
                v4_addr: s.main_v4_addr,
                v6_addr: s.main_v6_addr,
                chain: &s.main_chain,
                has_aaaa: s.main_has_aaaa,
            });
        }
        for r in &s.resources {
            if seen.intern_full(&r.fqdn).1 {
                pending.push(Pending {
                    fqdn: &r.fqdn,
                    v4_addr: r.v4_addr,
                    v6_addr: r.v6_addr,
                    chain: &r.chain,
                    has_aaaa: r.has_aaaa,
                });
            }
        }
    }

    // Pass 2: one batched origin lookup over every present address.
    let addrs: Vec<IpAddr> = pending
        .iter()
        .flat_map(|p| [p.v4_addr, p.v6_addr])
        .flatten()
        .collect();
    let origins = rib.origins_of(&addrs);
    let mut origin_iter = origins.into_iter();
    // Consumes one batch result per *present* address, in the same
    // v4-then-v6 order the batch was built in.
    let mut take_org = |present: Option<IpAddr>| -> Option<String> {
        present?;
        let asn = origin_iter.next().expect("one origin per address")?;
        registry.org_of(asn).map(|o| o.name.clone())
    };

    pending
        .into_iter()
        .map(|p| {
            // v4 before v6: must match the order the batch was built in.
            let v4_org = take_org(p.v4_addr);
            let v6_org = take_org(p.v6_addr);
            HostedFqdn {
                fqdn: p.fqdn.clone(),
                v4_org,
                v6_org,
                chain: p.chain.to_vec(),
                has_aaaa: p.has_aaaa,
            }
        })
        .collect()
}

/// Per-organization readiness (a Fig 11 bar / Table 3 row).
#[derive(Debug, Clone, Serialize)]
pub struct OrgReadiness {
    /// Organization display name.
    pub org: String,
    /// Domains with any address here.
    pub total: usize,
    /// Domains whose A is here but AAAA is not.
    pub v4_only: usize,
    /// Domains with both families here.
    pub v6_full: usize,
    /// Domains whose AAAA is here but A is not (the Bunnyway signature).
    pub v6_only: usize,
}

impl OrgReadiness {
    /// Percent helpers.
    pub fn pct(&self, count: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total as f64
        }
    }
}

/// Classify every hosted FQDN per organization (a domain hosted by two orgs
/// counts once at each, like Table 3's overall row).
pub fn org_readiness(fqdns: &[HostedFqdn]) -> Vec<OrgReadiness> {
    let mut per_org: HashMap<String, OrgReadiness> = HashMap::new();
    let mut bump = |org: &String, kind: u8| {
        let e = per_org.entry(org.clone()).or_insert_with(|| OrgReadiness {
            org: org.clone(),
            total: 0,
            v4_only: 0,
            v6_full: 0,
            v6_only: 0,
        });
        e.total += 1;
        match kind {
            0 => e.v4_only += 1,
            1 => e.v6_full += 1,
            _ => e.v6_only += 1,
        }
    };
    for f in fqdns {
        match (&f.v4_org, &f.v6_org) {
            (Some(a), Some(b)) if a == b => bump(a, 1),
            (Some(a), Some(b)) => {
                // Split hosting: v4-only at the A org, v6-only at the AAAA org.
                bump(a, 0);
                bump(b, 2);
            }
            (Some(a), None) => bump(a, 0),
            (None, Some(b)) => bump(b, 2),
            (None, None) => {}
        }
    }
    let mut out: Vec<OrgReadiness> = per_org.into_values().collect(); // tidy:allow(nondeterministic-iteration): fully sorted by (total, unique org) on the next line
    out.sort_by(|a, b| b.total.cmp(&a.total).then(a.org.cmp(&b.org)));
    out
}

/// Mapping from org display name to its Fig 12 pairing group ("Cloudflare
/// (All)" merges both Cloudflare orgs, "Akamai (All)" the Akamai split).
pub fn default_groups() -> HashMap<String, String> {
    cloudmodel::catalog::paper_orgs()
        .into_iter()
        .map(|o| (o.display.to_string(), o.group.to_string()))
        .collect()
}

/// One pairwise comparison cell (Fig 12).
#[derive(Debug, Clone, Serialize)]
pub struct PairwiseCell {
    /// First group.
    pub a: String,
    /// Second group.
    pub b: String,
    /// Shared tenants with differing IPv6-full fractions.
    pub n: usize,
    /// Signed effect size (positive: `a` more IPv6-full).
    pub effect: f64,
    /// Raw p-value of the two-sided Wilcoxon signed-rank test.
    pub p_raw: f64,
    /// Significant after Holm-Bonferroni at α = 0.05.
    pub significant: bool,
}

/// The Fig 12 matrix.
#[derive(Debug, Clone, Serialize)]
pub struct PairwiseMatrix {
    /// Groups ordered by how often they win comparisons.
    pub groups: Vec<String>,
    /// Comparable cells.
    pub cells: Vec<PairwiseCell>,
    /// Number of pairs lacking enough shared tenants.
    pub insufficient_pairs: usize,
}

/// Multi-cloud tenant analysis: per-tenant per-group IPv6-full fractions,
/// then pairwise Wilcoxon with Holm-Bonferroni correction (α = 0.05).
pub fn pairwise_comparison(
    fqdns: &[HostedFqdn],
    psl: &Psl,
    groups: &HashMap<String, String>,
    min_tenants: usize,
) -> PairwiseMatrix {
    // tenant -> group -> (full, total) over the tenant's subdomains. A
    // subdomain is "IPv6-full under cloud X" when X hosts any of its records
    // and the domain is dual-stack — judged at the *domain* level, so the
    // Bunnyway/Datacamp partnership and the Akamai org split count as full
    // for their (merged) groups, matching the paper's Fig 12 where both rank
    // near the top.
    let mut tenants: HashMap<Name, HashMap<String, (u32, u32)>> = HashMap::new();
    for f in fqdns {
        let Some(tenant) = psl.etld_plus_one(&f.fqdn) else {
            continue;
        };
        let domain_full = f.v4_org.is_some() && f.has_aaaa;
        let mut seen_groups: Vec<(String, bool)> = Vec::new();
        for org in [&f.v4_org, &f.v6_org].into_iter().flatten() {
            if let Some(g) = groups.get(org) {
                if !seen_groups.iter().any(|(sg, _)| sg == g) {
                    seen_groups.push((g.clone(), domain_full));
                }
            }
        }
        for (g, full) in seen_groups {
            let e = tenants
                .entry(tenant.clone())
                .or_default()
                .entry(g)
                .or_insert((0, 0));
            e.1 += 1;
            if full {
                e.0 += 1;
            }
        }
    }
    // Keep multi-cloud tenants only.
    tenants.retain(|_, per_group| per_group.len() >= 2); // tidy:allow(nondeterministic-iteration): pure size filter, visit order cannot leak

    // All groups present.
    let mut group_names: HashSet<String> = HashSet::new();
    // tidy:allow(nondeterministic-iteration): set-union fold, commutative
    for per_group in tenants.values() {
        group_names.extend(per_group.keys().cloned());
    }
    let mut group_list: Vec<String> = group_names.into_iter().collect(); // tidy:allow(nondeterministic-iteration): fully sorted on the next line
    group_list.sort();

    // Pairwise comparisons.
    let mut raw_cells: Vec<PairwiseCell> = Vec::new();
    let mut insufficient = 0usize;
    for i in 0..group_list.len() {
        for j in i + 1..group_list.len() {
            let (a, b) = (&group_list[i], &group_list[j]);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            // tidy:allow(nondeterministic-iteration): Wilcoxon signed-rank is permutation-invariant over the paired samples
            for per_group in tenants.values() {
                if let (Some(&(fa, ta)), Some(&(fb, tb))) = (per_group.get(a), per_group.get(b)) {
                    let va = fa as f64 / ta as f64;
                    let vb = fb as f64 / tb as f64;
                    if va != vb {
                        xs.push(va);
                        ys.push(vb);
                    }
                }
            }
            if xs.len() < min_tenants {
                insufficient += 1;
                continue;
            }
            if let Some(w) = wilcoxon_signed_rank(&xs, &ys) {
                raw_cells.push(PairwiseCell {
                    a: a.clone(),
                    b: b.clone(),
                    n: w.n,
                    effect: w.effect_size,
                    p_raw: w.p_value,
                    significant: false,
                });
            } else {
                insufficient += 1;
            }
        }
    }

    // Holm-Bonferroni across the family of comparisons.
    let ps: Vec<f64> = raw_cells.iter().map(|c| c.p_raw).collect();
    for (cell, outcome) in raw_cells.iter_mut().zip(holm_bonferroni(&ps, 0.05)) {
        cell.significant = outcome.reject;
    }

    // Order groups by net wins (significant positive effects).
    let mut score: HashMap<&str, f64> = HashMap::new();
    for c in &raw_cells {
        if c.significant {
            *score.entry(c.a.as_str()).or_default() += c.effect;
            *score.entry(c.b.as_str()).or_default() -= c.effect;
        }
    }
    let mut ordered = group_list.clone();
    ordered.sort_by(|x, y| {
        let sx = score.get(x.as_str()).copied().unwrap_or(0.0);
        let sy = score.get(y.as_str()).copied().unwrap_or(0.0);
        sy.partial_cmp(&sx).expect("finite").then(x.cmp(y))
    });

    PairwiseMatrix {
        groups: ordered,
        cells: raw_cells,
        insufficient_pairs: insufficient,
    }
}

/// Number of multi-cloud tenants in a crawl (paper: 21,314 at 100k scale).
pub fn multicloud_tenant_count(
    fqdns: &[HostedFqdn],
    psl: &Psl,
    groups: &HashMap<String, String>,
) -> usize {
    let mut tenants: HashMap<Name, HashSet<&String>> = HashMap::new();
    for f in fqdns {
        let Some(tenant) = psl.etld_plus_one(&f.fqdn) else {
            continue;
        };
        for org in [&f.v4_org, &f.v6_org].into_iter().flatten() {
            if let Some(g) = groups.get(org) {
                tenants.entry(tenant.clone()).or_default().insert(g);
            }
        }
    }
    tenants.values().filter(|g| g.len() >= 2).count() // tidy:allow(nondeterministic-iteration): order-invariant count
}

/// One Table 2 row: measured service adoption.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceAdoption {
    /// Provider display name.
    pub provider: String,
    /// Service display name.
    pub service: String,
    /// Enablement policy.
    pub policy: Ipv6Policy,
    /// Measured IPv6-ready domains.
    pub ready: usize,
    /// Measured total domains on the service.
    pub total: usize,
    /// Paper's measured adoption (for comparison).
    pub paper_adoption: f64,
}

impl ServiceAdoption {
    /// Measured adoption rate.
    pub fn adoption(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.ready as f64 / self.total as f64
        }
    }
}

/// Identify services by CNAME chain and measure their adoption (Table 2).
pub fn service_adoption(fqdns: &[HostedFqdn], catalog: &ServiceCatalog) -> Vec<ServiceAdoption> {
    let mut per_service: HashMap<&str, (usize, usize)> = HashMap::new();
    for f in fqdns {
        if let Some(service) = catalog.identify(&f.chain) {
            let e = per_service.entry(service.key).or_insert((0, 0));
            e.1 += 1;
            if f.has_aaaa {
                e.0 += 1;
            }
        }
    }
    let mut out: Vec<ServiceAdoption> = catalog
        .services()
        .iter()
        .filter_map(|s| {
            let &(ready, total) = per_service.get(s.key)?;
            Some(ServiceAdoption {
                provider: s.provider_display.to_string(),
                service: s.display.to_string(),
                policy: s.policy,
                ready,
                total,
                paper_adoption: s.paper_adoption(),
            })
        })
        .collect();
    out.sort_by(|a, b| {
        a.provider
            .cmp(&b.provider)
            .then(b.adoption().partial_cmp(&a.adoption()).expect("finite"))
    });
    out
}

/// §5's headline correlation: Spearman rank correlation between policy
/// ease scores and measured adoption across services.
pub fn ease_adoption_correlation(services: &[ServiceAdoption]) -> Option<f64> {
    let ease: Vec<f64> = services.iter().map(|s| s.policy.ease()).collect();
    let adoption: Vec<f64> = services.iter().map(|s| s.adoption()).collect();
    spearman(&ease, &adoption)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawlsim::{crawl_epoch, CrawlConfig};
    use worldgen::{World, WorldConfig};

    fn setup() -> (World, Vec<HostedFqdn>) {
        let w = World::generate(&WorldConfig::small());
        let r = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
        let fqdns = hosted_fqdns(&r, &w.rib, &w.registry);
        (w, fqdns)
    }

    #[test]
    fn org_readiness_reproduces_table3_ordering() {
        let (_, fqdns) = setup();
        assert!(fqdns.len() > 2_000, "fqdn dataset size {}", fqdns.len());
        let orgs = org_readiness(&fqdns);
        let find = |name: &str| orgs.iter().find(|o| o.org == name).unwrap();
        let cf = find("Cloudflare, Inc.");
        let aka_us = find("Akamai Technologies, Inc.");
        assert!(
            cf.pct(cf.v6_full) > 70.0,
            "Cloudflare v6-full {:.1}%",
            cf.pct(cf.v6_full)
        );
        assert!(
            aka_us.pct(aka_us.v4_only) > 80.0,
            "Akamai US v4-only {:.1}%",
            aka_us.pct(aka_us.v4_only)
        );
        // Bunnyway: overwhelmingly v6-only.
        if let Some(bunny) = orgs.iter().find(|o| o.org.starts_with("BUNNYWAY")) {
            assert!(
                bunny.pct(bunny.v6_only) > 80.0,
                "Bunnyway v6-only {:.1}%",
                bunny.pct(bunny.v6_only)
            );
        }
        // Cloudflare and Amazon are the two biggest hosts (Table 3 rows 1–2;
        // their paper counts differ by only 2%, so either order can win a
        // small sampled world).
        let top2: Vec<&str> = orgs[..2].iter().map(|o| o.org.as_str()).collect();
        assert!(top2.contains(&"Cloudflare, Inc."), "top2 = {top2:?}");
        assert!(top2.contains(&"Amazon.com, Inc."), "top2 = {top2:?}");
    }

    #[test]
    fn counts_are_internally_consistent() {
        let (_, fqdns) = setup();
        for o in org_readiness(&fqdns) {
            assert_eq!(o.total, o.v4_only + o.v6_full + o.v6_only, "{}", o.org);
        }
    }

    #[test]
    fn pairwise_matrix_shows_cloudflare_leading() {
        let (w, fqdns) = setup();
        let groups = default_groups();
        let tenants = multicloud_tenant_count(&fqdns, &w.psl, &groups);
        assert!(tenants > 50, "multi-cloud tenants {tenants}");
        let m = pairwise_comparison(&fqdns, &w.psl, &groups, 2);
        assert!(!m.cells.is_empty());
        // Cloudflare must beat digitalocean/incapsula-style laggards where
        // comparable, and must never lose significantly to them.
        for c in &m.cells {
            let pair = (c.a.as_str(), c.b.as_str());
            if c.significant {
                match pair {
                    ("cloudflare", "digitalocean") => assert!(c.effect > 0.0, "{c:?}"),
                    ("digitalocean", "cloudflare") => assert!(c.effect < 0.0, "{c:?}"),
                    _ => {}
                }
            }
        }
        // The leader ordering puts cloudflare ahead of digitalocean.
        let pos = |g: &str| m.groups.iter().position(|x| x == g);
        if let (Some(cf), Some(digo)) = (pos("cloudflare"), pos("digitalocean")) {
            assert!(cf < digo, "cloudflare rank {cf} vs digitalocean {digo}");
        }
    }

    #[test]
    fn service_table_matches_policy_gradient() {
        let (_, fqdns) = setup();
        let catalog = ServiceCatalog::paper();
        let services = service_adoption(&fqdns, &catalog);
        assert!(
            services.len() >= 8,
            "identified {} services",
            services.len()
        );
        // Ease-adoption correlation positive (the paper's §5 finding).
        let rho = ease_adoption_correlation(&services).unwrap();
        assert!(rho > 0.3, "ease-adoption Spearman {rho}");
        // CloudFront present with meaningful volume and adoption far above S3.
        let find = |name: &str| services.iter().find(|s| s.service == name);
        if let (Some(cf), Some(s3)) = (find("Amazon CloudFront CDN"), find("Amazon S3")) {
            assert!(
                cf.adoption() > s3.adoption() + 0.3,
                "CloudFront {:.2} vs S3 {:.2}",
                cf.adoption(),
                s3.adoption()
            );
        }
    }
}
